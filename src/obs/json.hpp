// Minimal JSON emission helpers shared by the trace sinks, the metrics
// exporter, and the bench harness's machine-readable output. Emission only
// — parsing lives in the tests that validate the emitted documents.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace defender::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number. NaN/Inf are not representable in
/// JSON; they become null (consumers treat null as "not measured").
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace defender::obs
