#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace defender::obs {

namespace {

/// Empty or non-increasing bounds would silently misbucket every
/// observation; fall back to a single-bound histogram instead.
std::vector<double> sanitized_bounds(std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i)
    if (!(bounds[i - 1] < bounds[i])) bounds.clear();
  if (bounds.empty()) bounds = {1.0};
  return bounds;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(sanitized_bounds(std::move(bounds))),
      buckets_(bounds_.size() + 1) {}

const std::vector<double>& Histogram::default_latency_ms_bounds() {
  static const std::vector<double> kBounds = {
      0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
      100.0, 300.0, 1000.0, 3000.0, 10000.0};
  return kBounds;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS accumulation: portable where atomic<double>::fetch_add is not.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  std::uint64_t total = 0;
  const std::size_t last = std::min(i, bounds_.size());
  for (std::size_t b = 0; b <= last; ++b)
    total += buckets_[b].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = name;
    s.count = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = name;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = name;
    s.count = h->count();
    s.value = h->sum();
    s.bucket_bounds = h->bounds();
    s.bucket_counts.reserve(s.bucket_bounds.size() + 1);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i <= s.bucket_bounds.size(); ++i) {
      const std::uint64_t cum = h->cumulative_count(i);
      s.bucket_counts.push_back(cum - prev);
      prev = cum;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::to_json() const {
  const std::vector<MetricSnapshot> snap = snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& s : snap) {
    if (s.kind != MetricSnapshot::Kind::kCounter) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(s.name) << "\":" << s.count;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& s : snap) {
    if (s.kind != MetricSnapshot::Kind::kGauge) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(s.name) << "\":" << json_number(s.value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& s : snap) {
    if (s.kind != MetricSnapshot::Kind::kHistogram) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(s.name) << "\":{\"count\":" << s.count
        << ",\"sum\":" << json_number(s.value) << ",\"buckets\":[";
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
      if (i) out << ',';
      out << "{\"le\":";
      if (i < s.bucket_bounds.size())
        out << json_number(s.bucket_bounds[i]);
      else
        out << "\"+Inf\"";
      out << ",\"count\":" << s.bucket_counts[i] << '}';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace defender::obs
