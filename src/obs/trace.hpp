// Structured tracing: RAII spans and typed events over pluggable sinks.
//
// The tracer is the narrative side of the observability layer: solvers
// open a span per solve (and, when useful, per outer iteration), attach
// typed arguments (value brackets, support sizes, node counts), and emit
// instant events at decision points. Two sinks ship with the library:
//
//   * JsonlSink — one self-contained JSON object per line; trivially
//     greppable, diffable, and parseable by the tests and CI tooling;
//   * ChromeTraceSink — the Chrome `trace_event` array format; open the
//     file at chrome://tracing or https://ui.perfetto.dev to see the solve
//     as a flame graph.
//
// All timestamps come from obs::Clock, the same clock handle BudgetMeter
// reads, so span durations and Status::elapsed_seconds can never disagree.
// Event sequence numbers give a deterministic total order even when
// multiple threads trace concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace defender::obs {

/// One typed key/value attached to an event.
struct TraceArg {
  enum class Kind { kDouble, kUint, kString };
  std::string key;
  Kind kind = Kind::kDouble;
  double number = 0;
  std::uint64_t uint = 0;
  std::string text;

  static TraceArg of(std::string key, double value) {
    TraceArg a;
    a.key = std::move(key);
    a.kind = Kind::kDouble;
    a.number = value;
    return a;
  }
  static TraceArg of(std::string key, std::uint64_t value) {
    TraceArg a;
    a.key = std::move(key);
    a.kind = Kind::kUint;
    a.uint = value;
    return a;
  }
  static TraceArg of(std::string key, std::string value) {
    TraceArg a;
    a.key = std::move(key);
    a.kind = Kind::kString;
    a.text = std::move(value);
    return a;
  }
};

/// One emitted trace record.
struct TraceEvent {
  enum class Phase { kSpanBegin, kSpanEnd, kInstant };
  Phase phase = Phase::kInstant;
  std::string name;
  Clock::Micros ts_us = 0;     // obs::Clock tick at emission
  std::uint64_t seq = 0;       // tracer-wide total order
  std::uint64_t span_id = 0;   // nonzero for span begin/end pairs
  std::uint32_t thread = 0;    // small per-tracer thread ordinal
  std::uint32_t depth = 0;     // span nesting depth on this thread
  std::vector<TraceArg> args;
};

/// Where trace events go. Implementations must tolerate concurrent write()
/// calls (the tracer serializes them, but sinks shared across tracers must
/// lock internally — both shipped sinks do).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// One JSON object per line:
///   {"ph":"B|E|i","name":...,"ts_us":...,"seq":...,"span":...,
///    "thread":...,"depth":...,"args":{...}}
class JsonlSink : public TraceSink {
 public:
  /// Writes to an externally owned stream (kept open by the caller).
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  /// Opens `path` for writing; ok() reports whether the open succeeded.
  explicit JsonlSink(const std::string& path);

  bool ok() const { return out_ != nullptr && out_->good(); }
  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  std::mutex mu_;
};

/// Chrome trace_event JSON: an array of {"ph":"B"/"E"/"i"} records with
/// microsecond timestamps. The array is finalized on flush()/destruction.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out) : out_(&out) { begin(); }
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  bool ok() const { return out_ != nullptr && out_->good(); }
  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  void begin();
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  bool any_ = false;
  bool closed_ = false;
  std::mutex mu_;
};

class Tracer;

/// RAII span: emits kSpanBegin on construction and kSpanEnd on destruction
/// (with any args attached in between). Move-only.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attaches a typed argument to the span's end event.
  void arg(std::string key, double value) {
    args_.push_back(TraceArg::of(std::move(key), value));
  }
  void arg(std::string key, std::uint64_t value) {
    args_.push_back(TraceArg::of(std::move(key), value));
  }
  void arg(std::string key, std::string value) {
    args_.push_back(TraceArg::of(std::move(key), std::move(value)));
  }

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, std::uint64_t span_id)
      : tracer_(tracer), name_(std::move(name)), span_id_(span_id) {}

  Tracer* tracer_ = nullptr;  // null = inert (moved-from or default)
  std::string name_;
  std::uint64_t span_id_ = 0;
  std::vector<TraceArg> args_;
};

/// Emits events to one or more sinks with shared-clock timestamps, global
/// sequence numbers, and per-thread nesting depths.
class Tracer {
 public:
  explicit Tracer(TraceSink* sink) { add_sink(sink); }
  Tracer() = default;

  /// Registers an additional sink (not owned). Null is ignored.
  void add_sink(TraceSink* sink);

  /// Opens a span; emits its begin event immediately.
  [[nodiscard]] Span span(std::string name,
                          std::vector<TraceArg> args = {});

  /// Emits a single instant event.
  void instant(std::string name, std::vector<TraceArg> args = {});

  void flush();

  /// Events emitted so far (spans count twice: begin + end).
  std::uint64_t events_emitted() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  friend class Span;
  void emit(TraceEvent event);
  void end_span(const std::string& name, std::uint64_t span_id,
                std::vector<TraceArg> args);
  std::uint32_t thread_ordinal();

  std::vector<TraceSink*> sinks_;
  std::mutex mu_;  // guards sinks_ during emission
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<std::uint32_t> next_thread_{1};
};

}  // namespace defender::obs
