// Per-iteration convergence diagnostics for the iterative solvers.
//
// Equilibrium-computation papers compare algorithms by how their certified
// value brackets, duality gaps, and support sizes evolve per iteration —
// not by the final number alone. The recorder captures exactly that: each
// outer iteration of the double oracle (or checkpoint of fictitious play /
// Hedge) appends one IterationSample. Samples carry the RUNNING bounds, so
// on any correct solver the recorded bracket is monotonically narrowing —
// an invariant the obs tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace defender::obs {

/// One outer iteration (or learning checkpoint) of a solve.
struct IterationSample {
  std::size_t iteration = 0;
  /// Running certified bracket on the game value.
  double lower = 0;
  double upper = 0;
  /// Instantaneous duality gap of this iteration (restricted-game based;
  /// can exceed upper-lower early on).
  double gap = 0;
  /// Working-set / support sizes at this iteration.
  std::size_t defender_support = 0;
  std::size_t attacker_support = 0;
  /// Branch-and-bound nodes the oracle expanded in this iteration.
  std::uint64_t oracle_nodes = 0;
  /// Seconds since the solve started (same clock as Status::elapsed_seconds).
  double elapsed_seconds = 0;
};

/// Append-only sample log. record() is safe to call from concurrent solves
/// sharing one recorder (a mutex guards the append — the engine gives each
/// job its own recorder, but shared use must not tear). The read side
/// (samples(), monotonically_narrowing(), ...) is NOT synchronized against
/// concurrent writers: read only after the writing solves finished, or take
/// snapshot() for a consistent copy mid-run.
class ConvergenceRecorder {
 public:
  ConvergenceRecorder() = default;
  ConvergenceRecorder(const ConvergenceRecorder&) = delete;
  ConvergenceRecorder& operator=(const ConvergenceRecorder&) = delete;

  void record(const IterationSample& sample) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(sample);
  }

  const std::vector<IterationSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

  /// Consistent copy of the samples, safe against concurrent record()s.
  std::vector<IterationSample> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

  /// True when the recorded bracket never widens: lower bounds
  /// non-decreasing and upper bounds non-increasing (within `slack`).
  bool monotonically_narrowing(double slack = 1e-12) const {
    for (std::size_t i = 1; i < samples_.size(); ++i) {
      if (samples_[i].lower < samples_[i - 1].lower - slack) return false;
      if (samples_[i].upper > samples_[i - 1].upper + slack) return false;
    }
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::vector<IterationSample> samples_;
};

}  // namespace defender::obs
