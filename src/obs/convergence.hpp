// Per-iteration convergence diagnostics for the iterative solvers.
//
// Equilibrium-computation papers compare algorithms by how their certified
// value brackets, duality gaps, and support sizes evolve per iteration —
// not by the final number alone. The recorder captures exactly that: each
// outer iteration of the double oracle (or checkpoint of fictitious play /
// Hedge) appends one IterationSample. Samples carry the RUNNING bounds, so
// on any correct solver the recorded bracket is monotonically narrowing —
// an invariant the obs tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace defender::obs {

/// One outer iteration (or learning checkpoint) of a solve.
struct IterationSample {
  std::size_t iteration = 0;
  /// Running certified bracket on the game value.
  double lower = 0;
  double upper = 0;
  /// Instantaneous duality gap of this iteration (restricted-game based;
  /// can exceed upper-lower early on).
  double gap = 0;
  /// Working-set / support sizes at this iteration.
  std::size_t defender_support = 0;
  std::size_t attacker_support = 0;
  /// Branch-and-bound nodes the oracle expanded in this iteration.
  std::uint64_t oracle_nodes = 0;
  /// Seconds since the solve started (same clock as Status::elapsed_seconds).
  double elapsed_seconds = 0;
};

/// Append-only sample log for one solve. Not thread-safe: one recorder per
/// solve, owned by the caller that installed the ObsContext.
class ConvergenceRecorder {
 public:
  void record(const IterationSample& sample) { samples_.push_back(sample); }

  const std::vector<IterationSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  void clear() { samples_.clear(); }

  /// True when the recorded bracket never widens: lower bounds
  /// non-decreasing and upper bounds non-increasing (within `slack`).
  bool monotonically_narrowing(double slack = 1e-12) const {
    for (std::size_t i = 1; i < samples_.size(); ++i) {
      if (samples_[i].lower < samples_[i - 1].lower - slack) return false;
      if (samples_[i].upper > samples_[i - 1].upper + slack) return false;
    }
    return true;
  }

 private:
  std::vector<IterationSample> samples_;
};

}  // namespace defender::obs
