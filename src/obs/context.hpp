// The nullable handle that turns solver observability on.
//
// Every instrumented solver takes a trailing `obs::ObsContext* obs =
// nullptr`. The contract is strict so instrumentation can never change
// results or performance:
//
//   * obs == nullptr  (the default) — every hook compiles down to one
//     predictable branch on a pointer; no allocation, no clock read, no
//     atomic. Solver outputs are bit-for-bit identical to the
//     uninstrumented code (asserted by tests/obs/obs_solver_test.cpp) and
//     the overhead is unmeasurable (<1%; see bench_micro's
//     BM_DoubleOracle_NullObs vs BM_DoubleOracle_FullObs pair).
//
//   * obs != nullptr — whichever members are non-null are fed: `tracer`
//     receives spans and typed events, `metrics` cheap atomic counter /
//     histogram updates, `convergence` one IterationSample per outer
//     iteration. Members are independently optional.
//
// The context is plain aggregate state owned by the CALLER (CLI, bench,
// test); solvers only read the pointers and never take ownership.
#pragma once

#include "obs/convergence.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace defender::obs {

/// Observability wiring for one solve (or a batch of solves). All members
/// optional; a default-constructed context is valid but records nothing.
struct ObsContext {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  ConvergenceRecorder* convergence = nullptr;
};

}  // namespace defender::obs
