// The one monotonic time source of the observability layer.
//
// Before this header existed every timing consumer owned its own
// steady-clock epoch: BudgetMeter carried a util::Stopwatch, the simplex
// pivot loop another, and any ad-hoc span timing would have added a third.
// Epochs that differ by construction order make cross-referencing
// impossible — a `Status::elapsed_seconds` of 0.8s and a trace span of
// 0.8s could still describe different intervals. obs::Clock fixes a single
// process-wide epoch (first use) and hands out microsecond ticks against
// it, so budget meters, tracer spans, and metric timestamps are all points
// on the same axis and can be compared or subtracted directly.
#pragma once

#include <chrono>
#include <cstdint>

namespace defender::obs {

/// Process-wide steady clock with a shared epoch. All observability
/// timestamps (trace events, span durations, budget-meter elapsed times)
/// are microsecond counts from this one epoch.
class Clock {
 public:
  /// Microseconds since the process-wide epoch.
  using Micros = std::uint64_t;

  /// Current tick. Monotonic; never decreases.
  static Micros now_micros() {
    return static_cast<Micros>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
  }

  /// Seconds elapsed since `start` (a tick previously read from this clock).
  static double seconds_since(Micros start) {
    return static_cast<double>(now_micros() - start) * 1e-6;
  }

  /// Seconds between two ticks of this clock.
  static double seconds_between(Micros start, Micros end) {
    return static_cast<double>(end - start) * 1e-6;
  }

 private:
  static std::chrono::steady_clock::time_point epoch() {
    static const std::chrono::steady_clock::time_point e =
        std::chrono::steady_clock::now();
    return e;
  }
};

}  // namespace defender::obs
