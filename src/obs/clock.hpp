// The one monotonic time source of the observability layer.
//
// Before this header existed every timing consumer owned its own
// steady-clock epoch: BudgetMeter carried a util::Stopwatch, the simplex
// pivot loop another, and any ad-hoc span timing would have added a third.
// Epochs that differ by construction order make cross-referencing
// impossible — a `Status::elapsed_seconds` of 0.8s and a trace span of
// 0.8s could still describe different intervals. obs::Clock fixes a single
// process-wide epoch (first use) and hands out microsecond ticks against
// it, so budget meters, tracer spans, and metric timestamps are all points
// on the same axis and can be compared or subtracted directly.
//
// Monotonicity is enforced, not assumed: now_micros() never hands out a
// tick below one it already handed out, and the duration helpers clamp
// negative deltas to zero — so span durations and Status::elapsed_seconds
// can never go negative even under clock skew. Skew can be *injected*
// (inject_skew_micros) by the fault layer to prove exactly that: backward
// skew is absorbed by the clamp (counted in skew_clamps()), forward skew
// starves wall-clock deadlines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace defender::obs {

/// Process-wide steady clock with a shared epoch. All observability
/// timestamps (trace events, span durations, budget-meter elapsed times)
/// are microsecond counts from this one epoch.
class Clock {
 public:
  /// Microseconds since the process-wide epoch.
  using Micros = std::uint64_t;

  /// Current tick. Monotonic by construction: a reading that would fall
  /// below an earlier one (skewed underlying clock, injected skew) is
  /// clamped to the latest tick handed out, and the clamp is counted.
  static Micros now_micros() {
    const std::int64_t skewed =
        raw_micros() + skew_us_.load(std::memory_order_relaxed);
    const Micros candidate =
        skewed > 0 ? static_cast<Micros>(skewed) : Micros{0};
    Micros prev = last_.load(std::memory_order_relaxed);
    while (candidate > prev) {
      if (last_.compare_exchange_weak(prev, candidate,
                                      std::memory_order_relaxed))
        return candidate;
    }
    // Ties are the normal sub-microsecond case; only a strictly backward
    // reading counts as an absorbed skew event.
    if (candidate < prev)
      skew_clamps_.fetch_add(1, std::memory_order_relaxed);
    return prev;
  }

  /// Seconds elapsed since `start` (a tick previously read from this
  /// clock). Never negative.
  static double seconds_since(Micros start) {
    const Micros now = now_micros();
    return now <= start ? 0.0 : static_cast<double>(now - start) * 1e-6;
  }

  /// Seconds between two ticks of this clock. Never negative.
  static double seconds_between(Micros start, Micros end) {
    return end <= start ? 0.0 : static_cast<double>(end - start) * 1e-6;
  }

  /// Shifts every subsequent raw reading by `delta_us` (negative = the
  /// clock appears to run backwards). Fault-injection hook: the monotonic
  /// clamp above is what keeps the rest of the system sound under it.
  static void inject_skew_micros(std::int64_t delta_us) {
    skew_us_.fetch_add(delta_us, std::memory_order_relaxed);
  }

  /// How many strictly-backward readings the monotonic clamp absorbed —
  /// the metric the non-monotonicity guard promises.
  static std::uint64_t skew_clamps() {
    return skew_clamps_.load(std::memory_order_relaxed);
  }

 private:
  static std::int64_t raw_micros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch())
        .count();
  }

  static std::chrono::steady_clock::time_point epoch() {
    static const std::chrono::steady_clock::time_point e =
        std::chrono::steady_clock::now();
    return e;
  }

  inline static std::atomic<Micros> last_{0};
  inline static std::atomic<std::int64_t> skew_us_{0};
  inline static std::atomic<std::uint64_t> skew_clamps_{0};
};

}  // namespace defender::obs
