#include "obs/trace.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace defender::obs {

namespace {

const char* phase_letter(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kSpanBegin: return "B";
    case TraceEvent::Phase::kSpanEnd: return "E";
    case TraceEvent::Phase::kInstant: return "i";
  }
  return "i";
}

void append_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out << ',';
    const TraceArg& a = args[i];
    out << '"' << json_escape(a.key) << "\":";
    switch (a.kind) {
      case TraceArg::Kind::kDouble: out << json_number(a.number); break;
      case TraceArg::Kind::kUint: out << a.uint; break;
      case TraceArg::Kind::kString:
        out << '"' << json_escape(a.text) << '"';
        break;
    }
  }
  out << '}';
}

/// Per-thread span nesting depth. Keyed per thread, not per tracer: a
/// thread driving two tracers at once would interleave their depths, but no
/// solver does that and the depth is diagnostic, not semantic.
thread_local std::uint32_t t_depth = 0;
thread_local std::uint32_t t_ordinal = 0;

}  // namespace

JsonlSink::JsonlSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc) {
  if (owned_.is_open()) out_ = &owned_;
}

void JsonlSink::write(const TraceEvent& event) {
  if (out_ == nullptr) return;
  std::ostringstream line;
  line << "{\"ph\":\"" << phase_letter(event.phase) << "\",\"name\":\""
       << json_escape(event.name) << "\",\"ts_us\":" << event.ts_us
       << ",\"seq\":" << event.seq << ",\"span\":" << event.span_id
       << ",\"thread\":" << event.thread << ",\"depth\":" << event.depth
       << ",\"args\":";
  append_args(line, event.args);
  line << "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line.str();
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) out_->flush();
}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc) {
  if (owned_.is_open()) out_ = &owned_;
  begin();
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::begin() {
  if (out_ != nullptr) *out_ << "[\n";
}

void ChromeTraceSink::write(const TraceEvent& event) {
  if (out_ == nullptr) return;
  std::ostringstream record;
  record << "{\"name\":\"" << json_escape(event.name) << "\",\"ph\":\""
         << phase_letter(event.phase) << "\",\"ts\":" << event.ts_us
         << ",\"pid\":1,\"tid\":" << event.thread;
  if (event.phase == TraceEvent::Phase::kInstant) record << ",\"s\":\"t\"";
  record << ",\"args\":";
  append_args(record, event.args);
  record << '}';
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  if (any_) *out_ << ",\n";
  any_ = true;
  *out_ << record.str();
}

void ChromeTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr || closed_) return;
  *out_ << "\n]\n";
  out_->flush();
  closed_ = true;  // the array is finalized; later writes are dropped
}

void Tracer::add_sink(TraceSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

std::uint32_t Tracer::thread_ordinal() {
  if (t_ordinal == 0)
    t_ordinal = next_thread_.fetch_add(1, std::memory_order_relaxed);
  return t_ordinal;
}

void Tracer::emit(TraceEvent event) {
  event.ts_us = Clock::now_micros();
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.thread = thread_ordinal();
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceSink* sink : sinks_) sink->write(event);
}

Span Tracer::span(std::string name, std::vector<TraceArg> args) {
  const std::uint64_t id = next_span_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpanBegin;
  event.name = name;
  event.span_id = id;
  event.depth = t_depth++;
  event.args = std::move(args);
  emit(std::move(event));
  return Span(this, std::move(name), id);
}

void Tracer::end_span(const std::string& name, std::uint64_t span_id,
                      std::vector<TraceArg> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpanEnd;
  event.name = name;
  event.span_id = span_id;
  event.depth = t_depth > 0 ? --t_depth : 0;
  event.args = std::move(args);
  emit(std::move(event));
}

void Tracer::instant(std::string name, std::vector<TraceArg> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.depth = t_depth;
  event.args = std::move(args);
  emit(std::move(event));
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceSink* sink : sinks_) sink->flush();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    span_id_ = other.span_id_;
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->end_span(name_, span_id_, std::move(args_));
}

}  // namespace defender::obs
