#include "cache/canonical.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace defender::cache {

namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

/// One WL refinement pass to a stable partition. Colours are dense ids in
/// [0, cells); ids are assigned by sorted (old colour, sorted neighbour
/// colours) signature, so the refined colouring is label-invariant
/// whenever the input colouring is. Refinement only ever splits cells, so
/// a pass that does not increase the cell count has stabilized.
struct Refiner {
  const Graph& g;
  // Scratch reused across the whole search: one signature per vertex.
  std::vector<std::pair<std::vector<std::uint32_t>, Vertex>> signatures;

  explicit Refiner(const Graph& graph) : g(graph) {
    signatures.resize(g.num_vertices());
  }

  /// Refines `colors` in place; returns the number of cells.
  std::size_t refine(std::vector<std::uint32_t>* colors) {
    const std::size_t n = g.num_vertices();
    std::size_t cells = count_cells(*colors);
    while (true) {
      for (Vertex v = 0; v < n; ++v) {
        std::vector<std::uint32_t>& sig = signatures[v].first;
        sig.clear();
        sig.push_back((*colors)[v]);
        for (const graph::Incidence& inc : g.neighbors(v))
          sig.push_back((*colors)[inc.to]);
        std::sort(sig.begin() + 1, sig.end());
        signatures[v].second = v;
      }
      std::sort(signatures.begin(), signatures.end());
      std::size_t next = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && signatures[i].first != signatures[i - 1].first) ++next;
        (*colors)[signatures[i].second] = static_cast<std::uint32_t>(next);
      }
      const std::size_t new_cells = next + 1;
      if (new_cells == cells) return cells;
      cells = new_cells;
    }
  }

  static std::size_t count_cells(const std::vector<std::uint32_t>& colors) {
    std::uint32_t max_color = 0;
    for (std::uint32_t c : colors) max_color = std::max(max_color, c);
    return colors.empty() ? 0 : static_cast<std::size_t>(max_color) + 1;
  }
};

/// Union-find over vertices, rebuilt per tree node from the automorphism
/// generators that pointwise fix the current individualization path. Two
/// vertices in one component are in one orbit of (a subgroup of) the
/// stabilizer, so individualizing the second explores an isomorphic
/// subtree — skip it.
struct OrbitPartition {
  std::vector<Vertex> parent;

  explicit OrbitPartition(std::size_t n) : parent(n) {
    for (std::size_t v = 0; v < n; ++v) parent[v] = static_cast<Vertex>(v);
  }

  Vertex find(Vertex v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }

  void unite(Vertex a, Vertex b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

struct Search {
  const Graph& g;
  Refiner refiner;
  std::uint64_t budget;
  std::uint64_t nodes = 0;
  bool exceeded = false;

  // Incumbent: lexicographically smallest relabeled edge list seen so far.
  bool have_best = false;
  std::vector<Edge> best_cert;
  std::vector<Vertex> best_to_canonical;
  // Automorphism generators discovered from equal-certificate leaves, as
  // original-vertex permutations.
  std::vector<std::vector<Vertex>> generators;
  // Vertices individualized on the path to the current node.
  std::vector<Vertex> path;

  Search(const Graph& graph, std::uint64_t node_budget)
      : g(graph), refiner(graph), budget(node_budget) {}

  /// Relabels g's edges by `to_canonical`, normalized and sorted.
  std::vector<Edge> certificate(const std::vector<std::uint32_t>& colors) {
    std::vector<Edge> cert;
    cert.reserve(g.num_edges());
    for (const Edge& e : g.edges()) {
      Vertex u = static_cast<Vertex>(colors[e.u]);
      Vertex v = static_cast<Vertex>(colors[e.v]);
      if (u > v) std::swap(u, v);
      cert.push_back(Edge{u, v});
    }
    std::sort(cert.begin(), cert.end());
    return cert;
  }

  void leaf(const std::vector<std::uint32_t>& colors) {
    std::vector<Edge> cert = certificate(colors);
    if (!have_best || cert < best_cert) {
      have_best = true;
      best_cert = std::move(cert);
      best_to_canonical.assign(colors.begin(), colors.end());
      // Labels from a discrete refined partition are already a bijection
      // onto [0, n) (dense ids, one per singleton cell).
      return;
    }
    if (cert == best_cert) {
      // Two labelings with one certificate compose to an automorphism:
      // a(v) = best⁻¹(current(v)).
      const std::size_t n = g.num_vertices();
      std::vector<Vertex> best_from(n);
      for (std::size_t v = 0; v < n; ++v)
        best_from[best_to_canonical[v]] = static_cast<Vertex>(v);
      std::vector<Vertex> aut(n);
      bool identity = true;
      for (std::size_t v = 0; v < n; ++v) {
        aut[v] = best_from[colors[v]];
        if (aut[v] != v) identity = false;
      }
      if (!identity) generators.push_back(std::move(aut));
    }
  }

  void run(std::vector<std::uint32_t> colors) {
    if (exceeded) return;
    if (++nodes > budget) {
      exceeded = true;
      return;
    }
    refiner.refine(&colors);

    // Find the first non-singleton cell (cells are invariant, so "first by
    // colour id" is a deterministic, isomorphism-respecting target choice).
    const std::size_t n = g.num_vertices();
    std::vector<std::size_t> cell_size(n, 0);
    for (std::uint32_t c : colors) ++cell_size[c];
    std::uint32_t target = 0;
    bool discrete = true;
    for (std::uint32_t c = 0; c < n; ++c) {
      if (cell_size[c] >= 2) {
        target = c;
        discrete = false;
        break;
      }
    }
    if (discrete) {
      leaf(colors);
      return;
    }

    std::vector<Vertex> cell;
    for (Vertex v = 0; v < n; ++v)
      if (colors[v] == target) cell.push_back(v);

    std::vector<Vertex> explored;
    for (Vertex v : cell) {
      if (exceeded) return;
      if (!explored.empty()) {
        // Orbit pruning: under the generators fixing every vertex on the
        // current path, v in an explored sibling's orbit yields a subtree
        // isomorphic to one already searched.
        OrbitPartition orbits(n);
        for (const std::vector<Vertex>& aut : generators) {
          bool fixes_path = true;
          for (Vertex p : path)
            if (aut[p] != p) {
              fixes_path = false;
              break;
            }
          if (!fixes_path) continue;
          for (std::size_t x = 0; x < n; ++x)
            orbits.unite(static_cast<Vertex>(x), aut[x]);
        }
        bool pruned = false;
        for (Vertex u : explored)
          if (orbits.find(u) == orbits.find(v)) {
            pruned = true;
            break;
          }
        if (pruned) continue;
      }
      std::vector<std::uint32_t> child = colors;
      // A fresh colour strictly above every existing id individualizes v
      // identically in every branch (refine() re-normalizes the ids).
      child[v] = static_cast<std::uint32_t>(n);
      path.push_back(v);
      run(std::move(child));
      path.pop_back();
      explored.push_back(v);
    }
  }
};

}  // namespace

CanonicalForm canonical_form(const graph::Graph& g,
                             std::span<const std::uint32_t> initial_colors,
                             std::uint64_t node_budget) {
  const std::size_t n = g.num_vertices();
  CanonicalForm form;
  form.n = n;
  if (n == 0) return form;
  DEF_REQUIRE(initial_colors.empty() || initial_colors.size() == n,
              "initial_colors must be empty or one per vertex");

  std::vector<std::uint32_t> colors(n, 0);
  if (!initial_colors.empty())
    colors.assign(initial_colors.begin(), initial_colors.end());

  Search search(g, node_budget == 0 ? kDefaultCanonicalNodeBudget
                                    : node_budget);
  search.run(std::move(colors));
  form.search_nodes = search.nodes;

  if (search.exceeded || !search.have_best) {
    // Budget safety net: degrade to the identity labeling. Still a valid
    // cache key (exact boards match themselves); just never unifies
    // isomorphs.
    form.exact = false;
    form.to_canonical.resize(n);
    form.from_canonical.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      form.to_canonical[v] = static_cast<Vertex>(v);
      form.from_canonical[v] = static_cast<Vertex>(v);
    }
    form.edges.assign(g.edges().begin(), g.edges().end());
    return form;
  }

  form.exact = true;
  form.to_canonical = std::move(search.best_to_canonical);
  form.from_canonical.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    form.from_canonical[form.to_canonical[v]] = static_cast<Vertex>(v);
  form.edges = std::move(search.best_cert);
  return form;
}

graph::Graph build_canonical_graph(const CanonicalForm& form) {
  graph::GraphBuilder b(form.n);
  for (const Edge& e : form.edges) b.add_edge(e.u, e.v);
  return b.build();
}

std::vector<double> to_canonical_weights(const CanonicalForm& form,
                                         std::span<const double> weights) {
  DEF_REQUIRE(weights.size() == form.n,
              "weights must have one entry per vertex");
  std::vector<double> out(form.n);
  for (std::size_t c = 0; c < form.n; ++c)
    out[c] = weights[form.from_canonical[c]];
  return out;
}

std::vector<std::uint32_t> weight_color_classes(
    std::span<const double> weights) {
  std::vector<double> distinct(weights.begin(), weights.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<std::uint32_t> colors(weights.size());
  for (std::size_t v = 0; v < weights.size(); ++v)
    colors[v] = static_cast<std::uint32_t>(
        std::lower_bound(distinct.begin(), distinct.end(), weights[v]) -
        distinct.begin());
  return colors;
}

}  // namespace defender::cache
