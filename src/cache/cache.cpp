#include "cache/cache.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

namespace defender::cache {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 14695981039346656037ull) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The shared key-text builder: make_key and key_from_entry MUST agree
/// byte for byte, so both funnel through this.
CacheKey build_key(std::size_t n, std::size_t m, std::size_t k,
                   std::size_t num_attackers, bool exact,
                   std::string_view solver_name,
                   std::span<const graph::Edge> edges,
                   std::span<const double> weights, double tolerance,
                   std::size_t max_iterations, double wall_clock_seconds,
                   std::uint64_t oracle_node_budget) {
  CacheKey key;
  std::ostringstream st;
  st << "board " << n << ' ' << m << ' ' << k << ' ' << num_attackers << ' '
     << (exact ? 1 : 0) << ' ' << solver_name << '\n';
  st << "edges";
  for (const graph::Edge& e : edges) st << ' ' << e.u << ' ' << e.v;
  st << '\n';
  st << "weights " << weights.size();
  for (double w : weights) st << ' ' << format_double(w);
  st << '\n';
  key.structural = st.str();

  std::ostringstream ps;
  ps << "params " << format_double(tolerance) << ' ' << max_iterations << ' '
     << format_double(wall_clock_seconds) << ' ' << oracle_node_budget
     << '\n';
  key.params = ps.str();

  key.hash = fnv1a(key.params, fnv1a(key.structural));
  return key;
}

bool finite_payload(const CachedSolve& e) {
  const double scalars[] = {e.tolerance,     e.wall_clock_seconds,
                            e.residual,      e.value,
                            e.lower,         e.upper,
                            e.attempt_value, e.attempt_lower,
                            e.attempt_upper};
  for (double v : scalars)
    if (!std::isfinite(v)) return false;
  for (double w : e.weights)
    if (!std::isfinite(w)) return false;
  for (double p : e.defender_probs)
    if (!std::isfinite(p)) return false;
  for (double p : e.attacker_probs)
    if (!std::isfinite(p)) return false;
  return true;
}

Status parse_error(std::size_t line, const std::string& what) {
  return Status::make(StatusCode::kInvalidInput,
                      "cache line " + std::to_string(line) + ": " + what);
}

/// Range-checked non-negative count (checkpoint.cpp discipline).
bool parse_count(const std::string& token, std::size_t cap,
                 std::size_t* out) {
  if (token.empty() || token[0] == '-') return false;
  errno = 0;
  char* rest = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &rest, 10);
  if (errno != 0 || rest == token.c_str() || *rest != '\0') return false;
  if (v > cap) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_u64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  errno = 0;
  char* rest = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &rest, 10);
  if (errno != 0 || rest == token.c_str() || *rest != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_finite(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* rest = nullptr;
  const double v = std::strtod(token.c_str(), &rest);
  if (errno != 0 || rest == token.c_str() || *rest != '\0' ||
      !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

}  // namespace

CacheKey key_from_entry(const CachedSolve& e) {
  return build_key(e.n, e.edges.size(), e.k, e.num_attackers, e.exact_form,
                   e.solver, e.edges, e.weights, e.tolerance,
                   e.max_iterations, e.wall_clock_seconds,
                   e.oracle_node_budget);
}

SolveCache::SolveCache(CacheConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
}

CacheKey SolveCache::make_key(const CanonicalForm& form,
                              std::span<const double> canonical_weights,
                              std::size_t k, std::size_t num_attackers,
                              std::string_view solver_name, double tolerance,
                              const SolveBudget& budget) {
  return build_key(form.n, form.edges.size(), k, num_attackers, form.exact,
                   solver_name, form.edges, canonical_weights, tolerance,
                   budget.max_iterations, budget.wall_clock_seconds,
                   budget.oracle_node_budget);
}

void SolveCache::count(const char* name, std::uint64_t* slot) {
  ++*slot;
  if (config_.metrics != nullptr) config_.metrics->counter(name).add(1);
}

std::optional<CachedSolve> SolveCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t h = key.hash & config_.hash_mask;
  auto bucket = buckets_.find(h);
  bool collided = false;
  if (bucket != buckets_.end()) {
    for (EntryList::iterator it : bucket->second) {
      if (it->structural == key.structural && it->params == key.params) {
        lru_.splice(lru_.begin(), lru_, it);
        if (collided) count("cache.collisions", &stats_.collisions);
        count("cache.hits", &stats_.hits);
        return it->solve;
      }
      collided = true;
    }
  }
  if (collided) count("cache.collisions", &stats_.collisions);
  count("cache.misses", &stats_.misses);
  return std::nullopt;
}

std::optional<std::string> SolveCache::warm_checkpoint(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = warm_.find(key.structural);
  if (it == warm_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  count("cache.warm_hits", &stats_.warm_hits);
  return it->second->solve.checkpoint_text;
}

void SolveCache::store(const CacheKey& key, CachedSolve entry) {
  if (!finite_payload(entry)) return;
  std::lock_guard<std::mutex> lock(mu_);
  store_locked(key, std::move(entry));
}

void SolveCache::store_locked(const CacheKey& key, CachedSolve entry) {
  const std::uint64_t h = key.hash & config_.hash_mask;
  std::vector<EntryList::iterator>& bucket = buckets_[h];
  for (EntryList::iterator it : bucket) {
    if (it->structural == key.structural && it->params == key.params) {
      // Refresh in place (same key re-stored after, e.g., a reload).
      it->solve = std::move(entry);
      lru_.splice(lru_.begin(), lru_, it);
      if (!it->solve.checkpoint_text.empty()) warm_[key.structural] = it;
      count("cache.stores", &stats_.stores);
      return;
    }
  }
  lru_.push_front(Entry{key.structural, key.params, h, std::move(entry)});
  const EntryList::iterator it = lru_.begin();
  bucket.push_back(it);
  if (!it->solve.checkpoint_text.empty()) warm_[key.structural] = it;
  count("cache.stores", &stats_.stores);
  evict_to_capacity_locked();
}

void SolveCache::evict_to_capacity_locked() {
  while (lru_.size() > config_.capacity) {
    const EntryList::iterator victim = std::prev(lru_.end());
    auto bucket = buckets_.find(victim->masked_hash);
    if (bucket != buckets_.end()) {
      std::vector<EntryList::iterator>& vec = bucket->second;
      vec.erase(std::remove(vec.begin(), vec.end(), victim), vec.end());
      if (vec.empty()) buckets_.erase(bucket);
    }
    auto warm = warm_.find(victim->structural);
    if (warm != warm_.end() && warm->second == victim) warm_.erase(warm);
    lru_.erase(victim);
    count("cache.evictions", &stats_.evictions);
  }
}

Solved<TransportedProfiles> SolveCache::transport(
    const CachedSolve& entry, const CanonicalForm& probe_form,
    const graph::Graph& original) {
  Solved<TransportedProfiles> out;
  const auto fail = [&](const std::string& what) {
    out.status = Status::make(StatusCode::kInvalidInput,
                              "cache transport: " + what);
    return out;
  };
  if (!entry.has_profiles) return fail("entry carries no strategy profiles");
  if (probe_form.n != entry.n || probe_form.edges.size() != entry.edges.size())
    return fail("probe form does not match the entry's canonical form");

  // Canonical edge id -> original edge id, through the probe's inverse
  // labeling. Every canonical edge must exist on `original` (guaranteed
  // when the key matched; checked anyway so a tampered store degrades).
  std::vector<graph::EdgeId> edge_map(entry.edges.size());
  for (std::size_t e = 0; e < entry.edges.size(); ++e) {
    const graph::Edge ce = entry.edges[e];
    if (ce.u >= probe_form.n || ce.v >= probe_form.n)
      return fail("canonical edge endpoint out of range");
    const std::optional<graph::EdgeId> id = original.edge_id(
        probe_form.from_canonical[ce.u], probe_form.from_canonical[ce.v]);
    if (!id.has_value())
      return fail("canonical edge missing on the original board");
    edge_map[e] = *id;
  }

  try {
    std::vector<core::Tuple> tuples;
    tuples.reserve(entry.defender_support.size());
    for (const core::Tuple& t : entry.defender_support) {
      core::Tuple mapped;
      mapped.reserve(t.size());
      for (graph::EdgeId e : t) {
        if (e >= edge_map.size())
          return fail("defender tuple references an out-of-range edge");
        mapped.push_back(edge_map[e]);
      }
      std::sort(mapped.begin(), mapped.end());
      tuples.push_back(std::move(mapped));
    }

    std::vector<std::pair<graph::Vertex, double>> att;
    att.reserve(entry.attacker_support.size());
    for (std::size_t i = 0; i < entry.attacker_support.size(); ++i) {
      const graph::Vertex c = entry.attacker_support[i];
      if (c >= probe_form.n)
        return fail("attacker support vertex out of range");
      att.emplace_back(probe_form.from_canonical[c],
                       entry.attacker_probs[i]);
    }
    std::sort(att.begin(), att.end());
    std::vector<graph::Vertex> support;
    std::vector<double> probs;
    support.reserve(att.size());
    probs.reserve(att.size());
    for (const auto& [v, p] : att) {
      support.push_back(v);
      probs.push_back(p);
    }

    // Distribution constructors validate (distinct support, probabilities
    // summing to 1); a corrupted payload throws and lands in catch below.
    out.result.defender =
        core::TupleDistribution(std::move(tuples), entry.defender_probs);
    out.result.attacker =
        core::VertexDistribution(std::move(support), std::move(probs));
  } catch (const std::exception& e) {
    return fail(std::string("invalid cached profile: ") + e.what());
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    count("cache.transports", &stats_.transports);
  }
  out.status = Status::make_ok();
  return out;
}

WarmSnapshot SolveCache::warm_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  WarmSnapshot snap;
  snap.reserve(warm_.size());
  for (const auto& [structural, it] : warm_)
    snap.emplace(structural, it->solve.checkpoint_text);
  return snap;
}

std::size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

CacheStats SolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

namespace {

/// The per-entry block shared by to_text (one multi-entry document) and
/// to_record_texts (one single-entry document per record) — the two MUST
/// serialize an entry byte-identically or the durable store would not
/// round-trip against merge_text.
void append_entry_block(std::ostringstream& os, const CachedSolve& e) {
  os << "entry\n";
  os << "board " << e.n << ' ' << e.edges.size() << ' ' << e.k << ' '
     << e.num_attackers << ' ' << (e.exact_form ? 1 : 0) << '\n';
  os << "solver " << e.solver << '\n';
  os << "params " << format_double(e.tolerance) << ' ' << e.max_iterations
     << ' ' << format_double(e.wall_clock_seconds) << ' '
     << e.oracle_node_budget << '\n';
  os << "edges";
  for (const graph::Edge& edge : e.edges)
    os << ' ' << edge.u << ' ' << edge.v;
  os << '\n';
  os << "weights " << e.weights.size();
  for (double w : e.weights) os << ' ' << format_double(w);
  os << '\n';
  os << "status " << e.iterations << ' ' << format_double(e.residual)
     << '\n';
  os << "message " << e.message << '\n';
  os << "value " << format_double(e.value) << ' ' << format_double(e.lower)
     << ' ' << format_double(e.upper) << '\n';
  os << "attempt " << format_double(e.attempt_value) << ' '
     << format_double(e.attempt_lower) << ' '
     << format_double(e.attempt_upper) << '\n';
  os << "profiles " << (e.has_profiles ? 1 : 0) << '\n';
  if (e.has_profiles) {
    os << "defender " << e.defender_support.size();
    for (double p : e.defender_probs) os << ' ' << format_double(p);
    os << '\n';
    for (const core::Tuple& t : e.defender_support) {
      os << "tuple " << t.size();
      for (graph::EdgeId edge : t) os << ' ' << edge;
      os << '\n';
    }
    os << "attacker " << e.attacker_support.size();
    for (std::size_t i = 0; i < e.attacker_support.size(); ++i)
      os << ' ' << e.attacker_support[i] << ' '
         << format_double(e.attacker_probs[i]);
    os << '\n';
  }
  std::size_t checkpoint_lines = 0;
  for (char c : e.checkpoint_text)
    if (c == '\n') ++checkpoint_lines;
  os << "checkpoint " << checkpoint_lines << '\n';
  os << e.checkpoint_text;
  os << "end\n";
}

}  // namespace

std::string SolveCache::to_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "defender-cache v" << kCacheFormatVersion << '\n';
  os << "entries " << lru_.size() << '\n';
  // Least recently used first: merge_text stores in file order, so the
  // last (most recent) entry ends up at the LRU front again.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
    append_entry_block(os, it->solve);
  return os.str();
}

std::vector<std::string> SolveCache::to_record_texts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> records;
  records.reserve(lru_.size());
  // Same LRU-first order as to_text: replaying the records through
  // merge_text reconstructs the same recency order, and a torn tail
  // costs the most recently used entries last-written, never the whole
  // store.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    std::ostringstream os;
    os << "defender-cache v" << kCacheFormatVersion << '\n';
    os << "entries 1\n";
    append_entry_block(os, it->solve);
    records.push_back(os.str());
  }
  return records;
}

Status SolveCache::merge_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      bool blank = true;
      for (char ch : line)
        if (!std::isspace(static_cast<unsigned char>(ch))) blank = false;
      if (!blank) return true;
    }
    return false;
  };
  // Raw read for verbatim checkpoint lines (no blank skipping: blank
  // lines inside a checkpoint block would change its byte content).
  const auto next_raw_line = [&]() -> bool {
    if (!std::getline(is, line)) return false;
    ++line_no;
    return true;
  };

  if (!next_line()) return parse_error(1, "empty input");
  if (line.rfind("defender-cache v", 0) != 0)
    return parse_error(line_no, "missing 'defender-cache v1' header");
  {
    const std::string version_token =
        line.substr(std::string("defender-cache v").size());
    std::size_t version = 0;
    if (!parse_count(version_token, 1'000'000, &version))
      return parse_error(line_no, "malformed version: " + version_token);
    if (version != kCacheFormatVersion)
      return parse_error(line_no,
                         "unsupported cache version " +
                             std::to_string(version) + " (this build reads v" +
                             std::to_string(kCacheFormatVersion) + ")");
  }

  if (!next_line()) return parse_error(line_no + 1, "missing 'entries' line");
  std::size_t declared = 0;
  {
    std::istringstream ls(line);
    std::string key, count_token;
    if (!(ls >> key >> count_token) || key != "entries" ||
        !parse_count(count_token, kMaxCacheParseEntries, &declared))
      return parse_error(line_no, "expected 'entries <count>'");
  }

  for (std::size_t entry_index = 0; entry_index < declared; ++entry_index) {
    if (!next_line() || line != "entry")
      return parse_error(line_no + 1, "missing 'entry' marker");
    CachedSolve e;

    // board <n> <m> <k> <nu> <exact>
    std::size_t m = 0;
    if (!next_line()) return parse_error(line_no + 1, "missing 'board' line");
    {
      std::istringstream ls(line);
      std::string key, sn, sm, sk, snu, sex;
      std::size_t exact = 0;
      if (!(ls >> key >> sn >> sm >> sk >> snu >> sex) || key != "board" ||
          !parse_count(sn, kMaxCacheParseEntries, &e.n) ||
          !parse_count(sm, kMaxCacheParseEntries, &m) ||
          !parse_count(sk, kMaxCacheParseEntries, &e.k) ||
          !parse_count(snu, kMaxCacheParseEntries, &e.num_attackers) ||
          !parse_count(sex, 1, &exact))
        return parse_error(line_no,
                           "expected 'board <n> <m> <k> <nu> <exact>'");
      e.exact_form = exact != 0;
    }

    if (!next_line()) return parse_error(line_no + 1, "missing 'solver' line");
    {
      std::istringstream ls(line);
      std::string key;
      if (!(ls >> key >> e.solver) || key != "solver" || e.solver.empty())
        return parse_error(line_no, "expected 'solver <name>'");
    }

    if (!next_line()) return parse_error(line_no + 1, "missing 'params' line");
    {
      std::istringstream ls(line);
      std::string key, stol, sit, swall, snodes;
      if (!(ls >> key >> stol >> sit >> swall >> snodes) || key != "params" ||
          !parse_finite(stol, &e.tolerance) ||
          !parse_count(sit, std::numeric_limits<std::size_t>::max() / 4,
                       &e.max_iterations) ||
          !parse_finite(swall, &e.wall_clock_seconds) ||
          !parse_u64(snodes, &e.oracle_node_budget))
        return parse_error(line_no,
                           "expected 'params <tol> <iters> <wall> <nodes>'");
    }

    if (!next_line()) return parse_error(line_no + 1, "missing 'edges' line");
    {
      std::istringstream ls(line);
      std::string key;
      if (!(ls >> key) || key != "edges")
        return parse_error(line_no, "expected 'edges <u> <v> ...'");
      e.edges.reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        std::string su, sv;
        std::size_t u = 0, v = 0;
        if (!(ls >> su >> sv) || !parse_count(su, kMaxCacheParseEntries, &u) ||
            !parse_count(sv, kMaxCacheParseEntries, &v) || u >= v ||
            v >= e.n)
          return parse_error(line_no, "malformed canonical edge list");
        e.edges.push_back(
            graph::Edge{static_cast<graph::Vertex>(u),
                        static_cast<graph::Vertex>(v)});
      }
    }

    if (!next_line())
      return parse_error(line_no + 1, "missing 'weights' line");
    {
      std::istringstream ls(line);
      std::string key, count_token;
      std::size_t count = 0;
      if (!(ls >> key >> count_token) || key != "weights" ||
          !parse_count(count_token, kMaxCacheParseEntries, &count))
        return parse_error(line_no, "expected 'weights <count> <w...>'");
      if (count != 0 && count != e.n)
        return parse_error(line_no,
                           "weights must be empty or one per vertex");
      e.weights.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        std::string w_token;
        double w = 0;
        if (!(ls >> w_token) || !parse_finite(w_token, &w))
          return parse_error(line_no, "malformed weight list");
        e.weights.push_back(w);
      }
    }

    if (!next_line()) return parse_error(line_no + 1, "missing 'status' line");
    {
      std::istringstream ls(line);
      std::string key, sit, sres;
      if (!(ls >> key >> sit >> sres) || key != "status" ||
          !parse_count(sit, std::numeric_limits<std::size_t>::max() / 4,
                       &e.iterations) ||
          !parse_finite(sres, &e.residual))
        return parse_error(line_no,
                           "expected 'status <iterations> <residual>'");
    }

    if (!next_line())
      return parse_error(line_no + 1, "missing 'message' line");
    if (line.rfind("message", 0) != 0)
      return parse_error(line_no, "expected 'message <text>'");
    e.message = line.size() > 8 ? line.substr(8) : std::string();

    const auto read_triplet = [&](const char* name, double* a, double* b,
                                  double* c) -> bool {
      if (!next_line()) return false;
      std::istringstream ls(line);
      std::string key, sa, sb, sc;
      return (ls >> key >> sa >> sb >> sc) && key == name &&
             parse_finite(sa, a) && parse_finite(sb, b) &&
             parse_finite(sc, c);
    };
    if (!read_triplet("value", &e.value, &e.lower, &e.upper))
      return parse_error(line_no, "expected 'value <v> <lower> <upper>'");
    if (!read_triplet("attempt", &e.attempt_value, &e.attempt_lower,
                      &e.attempt_upper))
      return parse_error(line_no, "expected 'attempt <v> <lower> <upper>'");

    if (!next_line())
      return parse_error(line_no + 1, "missing 'profiles' line");
    {
      std::istringstream ls(line);
      std::string key, flag_token;
      std::size_t flag = 0;
      if (!(ls >> key >> flag_token) || key != "profiles" ||
          !parse_count(flag_token, 1, &flag))
        return parse_error(line_no, "expected 'profiles <0|1>'");
      e.has_profiles = flag != 0;
    }

    if (e.has_profiles) {
      std::size_t defender_count = 0;
      if (!next_line())
        return parse_error(line_no + 1, "missing 'defender' line");
      {
        std::istringstream ls(line);
        std::string key, count_token;
        if (!(ls >> key >> count_token) || key != "defender" ||
            !parse_count(count_token, kMaxCacheParseEntries, &defender_count))
          return parse_error(line_no, "expected 'defender <count> <p...>'");
        e.defender_probs.reserve(defender_count);
        for (std::size_t i = 0; i < defender_count; ++i) {
          std::string p_token;
          double p = 0;
          if (!(ls >> p_token) || !parse_finite(p_token, &p))
            return parse_error(line_no, "malformed defender probabilities");
          e.defender_probs.push_back(p);
        }
      }
      e.defender_support.reserve(defender_count);
      for (std::size_t i = 0; i < defender_count; ++i) {
        if (!next_line())
          return parse_error(line_no + 1, "truncated defender support");
        std::istringstream ts(line);
        std::string key, size_token;
        std::size_t size = 0;
        if (!(ts >> key >> size_token) || key != "tuple" ||
            !parse_count(size_token, kMaxCacheParseEntries, &size))
          return parse_error(line_no, "expected 'tuple <size> <edges...>'");
        core::Tuple t;
        t.reserve(size);
        for (std::size_t j = 0; j < size; ++j) {
          std::string edge_token;
          std::size_t edge = 0;
          if (!(ts >> edge_token) ||
              !parse_count(edge_token, kMaxCacheParseEntries, &edge))
            return parse_error(line_no, "malformed tuple edge list");
          t.push_back(static_cast<graph::EdgeId>(edge));
        }
        e.defender_support.push_back(std::move(t));
      }

      if (!next_line())
        return parse_error(line_no + 1, "missing 'attacker' line");
      {
        std::istringstream ls(line);
        std::string key, count_token;
        std::size_t count = 0;
        if (!(ls >> key >> count_token) || key != "attacker" ||
            !parse_count(count_token, kMaxCacheParseEntries, &count))
          return parse_error(line_no,
                             "expected 'attacker <count> <v> <p> ...'");
        e.attacker_support.reserve(count);
        e.attacker_probs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          std::string v_token, p_token;
          std::size_t v = 0;
          double p = 0;
          if (!(ls >> v_token >> p_token) ||
              !parse_count(v_token, kMaxCacheParseEntries, &v) ||
              !parse_finite(p_token, &p))
            return parse_error(line_no, "malformed attacker support");
          e.attacker_support.push_back(static_cast<graph::Vertex>(v));
          e.attacker_probs.push_back(p);
        }
      }
    }

    if (!next_line())
      return parse_error(line_no + 1, "missing 'checkpoint' line");
    {
      std::istringstream ls(line);
      std::string key, count_token;
      std::size_t checkpoint_lines = 0;
      if (!(ls >> key >> count_token) || key != "checkpoint" ||
          !parse_count(count_token, kMaxCacheParseEntries,
                       &checkpoint_lines))
        return parse_error(line_no, "expected 'checkpoint <line-count>'");
      for (std::size_t i = 0; i < checkpoint_lines; ++i) {
        if (!next_raw_line())
          return parse_error(line_no + 1, "truncated checkpoint block");
        e.checkpoint_text += line;
        e.checkpoint_text += '\n';
      }
    }

    if (!next_line() || line != "end")
      return parse_error(line_no + 1, "missing 'end' trailer");

    if (!finite_payload(e))
      return parse_error(line_no, "non-finite entry payload");
    const CacheKey key = key_from_entry(e);
    std::lock_guard<std::mutex> lock(mu_);
    store_locked(key, std::move(e));
  }

  return Status::make_ok();
}

Status save_cache_file(const std::string& path, const SolveCache& cache,
                       const io::AtomicWriteOptions& opts) {
  return io::save_record_artifact(path, kCacheArtifactFormat,
                                  cache.to_record_texts(), opts);
}

Status load_cache_file(const std::string& path, SolveCache* cache,
                       io::LoadReport* report) {
  io::LoadOptions load;
  // Probe each record with the real parser (into a scratch cache) before
  // accepting it: a record whose checksum verifies but whose content the
  // store parser rejects truncates the candidate there, the same as a
  // torn tail.
  load.validate = [](const std::string& record) {
    SolveCache probe(CacheConfig{.capacity = kMaxCacheParseEntries});
    return probe.merge_text(record);
  };
  Solved<std::vector<std::string>> records =
      io::load_record_artifact(path, kCacheArtifactFormat, load, report);
  if (!records.ok()) return records.status;
  for (const std::string& record : records.result) {
    const Status merged = cache->merge_text(record);
    if (!merged.ok()) return merged;
  }
  return Status::make_ok();
}

}  // namespace defender::cache
