// Canonical-form solve cache with warm starts.
//
// SolveCache memoizes equilibrium solves keyed by CANONICAL form
// (canonical.hpp): the canonically relabeled edge list plus every
// parameter the result depends on — k, ν, vertex weights (in canonical
// order), solver kind, tolerance, and the per-attempt budget. Two boards
// that are isomorphic (respecting weights) under the same parameters
// share a key, so a batch that sweeps a graph family pays for each
// isomorphism class once.
//
// Correctness before speed:
//
//   Collision guard   lookups bucket by 64-bit FNV-1a hash but ALWAYS
//                     re-compare the full key text; a hash collision is
//                     counted (cache.collisions) and treated as a miss,
//                     never served. CacheConfig::hash_mask can fold the
//                     hash space down to force collisions in tests (and
//                     doubles as the sharding hook in ROADMAP.md).
//   Transport         cached strategy profiles live in canonical labels;
//                     transport() maps them back through the probe's
//                     permutation and rebuilds validated distributions —
//                     a tampered persistent store degrades to
//                     kInvalidInput, never a crash or a wrong profile.
//   Store gating      callers only store clean results (the engine gates
//                     on single-attempt kOk with no faults injected —
//                     docs/CACHE.md); the cache additionally rejects
//                     entries with non-finite payloads.
//
// Warm starts: a lookup that misses on (tolerance, budget) but matches
// the structural key (board + weights + k + ν + solver) can fetch the
// stored solver checkpoint via warm_checkpoint() and resume through the
// *_resumable entry points instead of starting cold.
//
// The persistent text store ("defender-cache v1") follows the
// checkpoint_v1 discipline: line-oriented, %.17g doubles for bit-exact
// round-trips, hardened parsing (range-checked counts, allocation caps,
// kInvalidInput with a 1-based line number, versions != 1 rejected).
//
// Thread safety: all members are safe to call concurrently; the engine's
// workers share one SolveCache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/canonical.hpp"
#include "core/budget.hpp"
#include "core/configuration.hpp"
#include "core/status.hpp"
#include "graph/graph.hpp"
#include "io/durable.hpp"
#include "obs/metrics.hpp"

namespace defender::cache {

/// Current persistent-store format version; merge_text rejects others.
inline constexpr std::uint32_t kCacheFormatVersion = 1;

/// Cap on any declared count in a persistent store, bounding what a
/// hostile header can make the parser pre-allocate.
inline constexpr std::size_t kMaxCacheParseEntries = 1'000'000;

/// Default LRU capacity (entries).
inline constexpr std::size_t kDefaultCacheCapacity = 4096;

/// A fully derived cache key. `structural` identifies the game up to
/// solver choice (canonical board, weights, k, ν, solver name); `params`
/// appends the solve parameters (tolerance, budget). Exact hits compare
/// structural + params; warm starts compare structural only.
struct CacheKey {
  std::string structural;
  std::string params;
  /// FNV-1a over structural + params, UNMASKED; the cache applies its
  /// configured hash_mask when bucketing.
  std::uint64_t hash = 0;

  std::string text() const { return structural + params; }
};

/// One cached solve, stored entirely in canonical labels.
struct CachedSolve {
  // -- Key components (the persistent store rebuilds keys from these). --
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t num_attackers = 0;
  bool exact_form = true;
  std::string solver;
  double tolerance = 0;
  std::size_t max_iterations = 0;
  double wall_clock_seconds = 0;
  std::uint64_t oracle_node_budget = 0;
  std::vector<graph::Edge> edges;    // canonical, sorted
  std::vector<double> weights;       // canonical order; empty if unweighted

  // -- Result payload (label-invariant scalars, verbatim). --
  std::string message;
  std::size_t iterations = 0;
  double residual = 0;
  /// Final JobResult fields (post envelope clamp).
  double value = 0;
  double lower = 0;
  double upper = 0;
  /// The single attempt's raw certified fields (pre clamp), so a hit
  /// reconstructs the attempt record bit-identically.
  double attempt_value = 0;
  double attempt_lower = 0;
  double attempt_upper = 0;

  // -- Strategy profiles in canonical labels (exact solvers only). --
  bool has_profiles = false;
  std::vector<core::Tuple> defender_support;  // canonical edge ids
  std::vector<double> defender_probs;
  std::vector<graph::Vertex> attacker_support;  // canonical vertices
  std::vector<double> attacker_probs;

  /// Solver checkpoint text (canonical labels) for warm starts; empty
  /// when the solver has none (kZeroSumLp).
  std::string checkpoint_text;
};

/// Cached profiles mapped back onto a probe's original labeling.
struct TransportedProfiles {
  core::TupleDistribution defender;
  core::VertexDistribution attacker;
};

/// Monotonic counters; also mirrored into obs metrics when configured.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  /// Lookups that met a bucket entry whose full key text differed —
  /// a hash collision (or folded-hash neighbour) that was refused.
  std::uint64_t collisions = 0;
  std::uint64_t transports = 0;
  std::uint64_t warm_hits = 0;
};

struct CacheConfig {
  std::size_t capacity = kDefaultCacheCapacity;
  /// Bucketing hash is (key.hash & hash_mask). All-ones (default) keeps
  /// the full 64-bit space; tests fold it (e.g. mask 0) to force every
  /// key into one bucket and exercise the collision guard.
  std::uint64_t hash_mask = ~std::uint64_t{0};
  /// Optional metrics sink: cache.hits / cache.misses / cache.stores /
  /// cache.evictions / cache.collisions / cache.transports counters.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Structural-key → checkpoint-text index snapshot, taken once at batch
/// start so warm starts never depend on mid-batch store order.
using WarmSnapshot = std::unordered_map<std::string, std::string>;

class SolveCache {
 public:
  explicit SolveCache(CacheConfig config = {});

  /// Builds the key for a solve of the canonically relabeled game.
  /// `canonical_weights` must already be in canonical vertex order
  /// (to_canonical_weights), or empty for unweighted solvers.
  static CacheKey make_key(const CanonicalForm& form,
                           std::span<const double> canonical_weights,
                           std::size_t k, std::size_t num_attackers,
                           std::string_view solver_name, double tolerance,
                           const SolveBudget& budget);

  /// Exact lookup: full key-text equality, LRU touch on hit.
  std::optional<CachedSolve> lookup(const CacheKey& key);

  /// Near-miss lookup: the most recently stored checkpoint text under the
  /// key's STRUCTURAL part, whatever its params. Empty optional when no
  /// structural twin (with a checkpoint) is cached.
  std::optional<std::string> warm_checkpoint(const CacheKey& key);

  /// Inserts or refreshes an entry. Entries with non-finite numeric
  /// payloads are rejected (defensively — the engine gates stores anyway).
  void store(const CacheKey& key, CachedSolve entry);

  /// Maps a cached entry's profiles back onto `original`'s labeling via
  /// the probe's canonical form. kInvalidInput when the entry carries no
  /// profiles or its payload does not form valid distributions on
  /// `original` (possible only with a tampered persistent store).
  Solved<TransportedProfiles> transport(const CachedSolve& entry,
                                        const CanonicalForm& probe_form,
                                        const graph::Graph& original);

  /// Snapshot of the warm-start index (engine batches take one at start
  /// so resume trajectories are worker-count invariant).
  WarmSnapshot warm_snapshot() const;

  /// Serializes every entry, least recently used first (so a reload
  /// reconstructs the same recency order).
  std::string to_text() const;

  /// Per-entry serialization for the record-framed durable store: one
  /// complete single-entry "defender-cache v1" document per entry, in the
  /// same LRU-first order as to_text(). Each record stands alone, so a
  /// torn store salvages its intact prefix entry by entry
  /// (docs/DURABILITY.md).
  std::vector<std::string> to_record_texts() const;

  /// Parses a persistent store and inserts every entry. Hardened:
  /// malformed input returns kInvalidInput with the offending 1-based
  /// line number and leaves already-merged entries in place.
  Status merge_text(const std::string& text);

  std::size_t size() const;
  std::size_t capacity() const { return config_.capacity; }
  CacheStats stats() const;

 private:
  struct Entry {
    std::string structural;
    std::string params;
    std::uint64_t masked_hash = 0;
    CachedSolve solve;
  };
  using EntryList = std::list<Entry>;

  void store_locked(const CacheKey& key, CachedSolve entry);
  void evict_to_capacity_locked();
  void count(const char* name, std::uint64_t* slot);

  CacheConfig config_;
  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>>
      buckets_;
  /// structural key -> owning entry with a non-empty checkpoint (most
  /// recently stored wins; erased when that entry is evicted).
  std::unordered_map<std::string, EntryList::iterator> warm_;
  CacheStats stats_;
};

/// Rebuilds a CacheKey from a stored entry's key components — the exact
/// same text make_key derives at probe time (%.17g round-trips make this
/// bit-stable across save/load).
CacheKey key_from_entry(const CachedSolve& entry);

/// Envelope format tag for cache-store artifacts on disk.
inline constexpr std::string_view kCacheArtifactFormat = "defender-cache";

/// Durably persists the cache as a record-framed artifact (one record per
/// entry, CRC32C per record) published with the atomic dual-generation
/// protocol. kIoError names the path; the previous on-disk generation is
/// never damaged by a failed save.
Status save_cache_file(const std::string& path, const SolveCache& cache,
                       const io::AtomicWriteOptions& opts = {});

/// Loads a persistent store into `cache` with recovery: a torn or
/// bit-rotted current generation falls back to a complete `<path>.tmp` or
/// `<path>.prev` (quarantining the corrupt file), and when no complete
/// generation survives, the intact record prefix is salvaged. Legacy
/// unwrapped "defender-cache v1" files read through transparently.
/// Already-merged entries stay merged on a non-kOk return, matching
/// merge_text.
Status load_cache_file(const std::string& path, SolveCache* cache,
                       io::LoadReport* report = nullptr);

}  // namespace defender::cache
