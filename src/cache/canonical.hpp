// Canonical graph labeling for the solve cache.
//
// Two boards that differ only by a vertex relabeling induce the same game
// up to the relabeling — equal value, equal bracket, and strategy profiles
// that map onto each other through the permutation. The cache therefore
// keys solves by a CANONICAL form: a deterministic relabeling L of the
// board such that L(G) = L(π(G)) for every permutation π, so every member
// of an isomorphism class shares one key.
//
// The labeling is the classic two-stage construction:
//
//   1. Iterated WL (Weisfeiler–Leman) colour refinement. Vertices start
//      from caller-supplied invariant colours (weight classes for the
//      weighted solvers; uniform otherwise) and are repeatedly split by
//      the multiset of neighbour colours until the partition stabilizes.
//      Colour ids are assigned by sorted signature, so they are themselves
//      label-invariant.
//   2. Individualization-refinement on the stable partition. While a cell
//      has >= 2 vertices, each member of the FIRST such cell is
//      individualized in turn and refinement re-run; every branch that
//      reaches a discrete partition yields a candidate labeling, and the
//      lexicographically smallest relabeled edge list wins (deterministic
//      tie-breaking). Branches whose leaf certificate equals the incumbent
//      reveal automorphisms; a union-find over the generators that fix the
//      current individualization path prunes same-orbit siblings, which
//      collapses the factorial blowup on symmetric boards (K_n, K_{a,b},
//      cycles) to near-linear work.
//
// The search carries a node budget as a safety net. If a pathological
// board exhausts it, canonical_form degrades to the identity labeling
// with exact = false — such forms never produce cross-isomorph cache
// hits, but correctness is unaffected: the cache re-checks full canonical
// form equality on every hit anyway (cache.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace defender::cache {

/// Default individualization-refinement node budget. Boards in this
/// codebase are tiny (tens of vertices); well-behaved searches finish in
/// far fewer nodes, so hitting this signals pathology, not scale.
inline constexpr std::uint64_t kDefaultCanonicalNodeBudget = 200'000;

/// A canonical labeling of one board.
struct CanonicalForm {
  /// Vertex count (labels are a bijection on [0, n)).
  std::size_t n = 0;
  /// The canonically relabeled edge list, normalized (u < v) and sorted —
  /// equal across every member of the isomorphism class when `exact`.
  std::vector<graph::Edge> edges;
  /// to_canonical[v] = canonical label of original vertex v.
  std::vector<graph::Vertex> to_canonical;
  /// from_canonical[c] = original vertex with canonical label c (the
  /// inverse bijection; transport on a cache hit walks this direction).
  std::vector<graph::Vertex> from_canonical;
  /// False when the search budget ran out and the identity labeling was
  /// used instead. Non-exact forms still key a cache correctly (equality
  /// is re-checked on hit) but only ever match bit-identical boards.
  bool exact = true;
  /// Search nodes the individualization-refinement tree expanded.
  std::uint64_t search_nodes = 0;
};

/// Computes the canonical form of `g`.
///
/// `initial_colors`, when non-empty, must hold one label-INVARIANT colour
/// per vertex (e.g. the rank of the vertex's weight among the distinct
/// weight values); vertices with different initial colours are never
/// mapped onto each other, so weighted games only unify with relabelings
/// that preserve the weight function. Empty means uniform colours.
CanonicalForm canonical_form(
    const graph::Graph& g, std::span<const std::uint32_t> initial_colors = {},
    std::uint64_t node_budget = kDefaultCanonicalNodeBudget);

/// Rebuilds the canonically labeled board from a form's edge list. The
/// result is isomorphic to the original graph; solving IT instead of the
/// original makes every isomorph's solve bit-identical (docs/CACHE.md).
graph::Graph build_canonical_graph(const CanonicalForm& form);

/// Maps `weights` (indexed by original vertex) into canonical vertex
/// order: result[c] = weights[form.from_canonical[c]]. Per-vertex data
/// only ever travels INTO canonical space (the solve happens there);
/// strategy profiles travel back via cache::transport (cache.hpp).
std::vector<double> to_canonical_weights(const CanonicalForm& form,
                                         std::span<const double> weights);

/// Ranks `weights` into dense invariant colours for canonical_form: equal
/// weights share a colour, colours ascend with the weight value.
std::vector<std::uint32_t> weight_color_classes(std::span<const double> weights);

}  // namespace defender::cache
