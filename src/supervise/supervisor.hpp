// Supervised subprocess worker pool: process-level job isolation.
//
// PR-4 isolation is thread-level — exceptions are caught per worker, but
// a segfault, std::terminate, or OOM kill inside any solver takes down
// the whole SolveEngine batch. WorkerPool closes that hole: a supervisor
// thread forks N long-lived worker processes (re-exec'ing the host
// binary through worker_trampoline, worker.hpp) and drives the batch
// over pipes framed with the PR-8 checksummed envelope (wire.hpp), so a
// torn or garbled frame is detected, never trusted.
//
// The supervisor distinguishes three worker fates (docs/SUPERVISION.md):
//   crash     EOF on the result pipe + waitpid status — the in-flight
//             job is attributed one kill and re-dispatched (resuming
//             from the worker's last streamed checkpoint when one
//             arrived), and the worker restarts under capped
//             exponential backoff;
//   hang      heartbeat deadline missed — SIGTERM, then SIGKILL after a
//             grace period; treated as a crash once dead;
//   clean     a checksummed "supervise-result" frame.
//
// A job whose worker dies `max_job_crashes` times is quarantined with a
// truthful terminal StatusCode::kWorkerCrashed result (a-priori bracket,
// empty attempt history) instead of crash-looping the pool.
//
// Determinism contract: for jobs whose workers are never killed, run()
// results are bit-identical to SolveEngine::run / run_serial at any
// worker count — workers reconstruct each job from its frame with %.17g
// fidelity and solve with the same ladder, and recovery resumes lean on
// the PR-6 "resumed result == uninterrupted result" contract. Crash/kill
// counters live in SupervisedReport, never inside a JobResult.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/engine.hpp"
#include "obs/metrics.hpp"

namespace defender::supervise {

/// Pool configuration; plain data.
struct PoolConfig {
  /// Worker processes to keep alive (>= 1).
  std::size_t workers = 1;
  /// Engine configuration forwarded to the workers: retry ladder,
  /// collect_convergence, and canonicalize shape results and travel in
  /// every job frame. The cache, tracer, and metrics fields are NOT
  /// forwarded — workers are observability-null and cache-less; shared
  /// sinks live in this process only.
  engine::EngineConfig engine;
  /// Interval between worker heartbeats.
  double heartbeat_interval_seconds = 0.05;
  /// Silence longer than this marks the worker hung and starts the
  /// SIGTERM escalation. Generous by default: sanitizer builds and
  /// loaded single-core CI machines schedule aux threads late.
  double heartbeat_timeout_seconds = 5.0;
  /// Grace between SIGTERM and SIGKILL for a hung worker.
  double term_grace_seconds = 1.0;
  /// Seconds between checkpoint-stream ticks inside a worker; a killed
  /// worker's job resumes from its last streamed checkpoint. 0 disables
  /// streaming (every re-dispatch restarts from scratch).
  double stream_interval_seconds = 0.25;
  /// Worker deaths attributed to one job before it is quarantined with
  /// kWorkerCrashed ("a job that kills its worker twice is poison").
  std::size_t max_job_crashes = 2;
  /// Capped exponential backoff before restarting a dead worker.
  double restart_backoff_ms = 10;
  double restart_backoff_cap_ms = 2000;
  /// Optional metrics sink: gauge supervise.workers_alive, counters
  /// supervise.restarts / supervise.quarantined_jobs /
  /// supervise.heartbeat_misses.
  obs::MetricsRegistry* metrics = nullptr;
};

/// run() outcome: the engine-shaped batch report plus supervision
/// counters. Counters live HERE and not in JobResult so process-mode
/// results stay bit-comparable with in-process ones.
struct SupervisedReport {
  engine::BatchReport batch;
  /// Worker processes restarted after a death (crash or hang kill).
  std::size_t worker_restarts = 0;
  /// Jobs terminated with kWorkerCrashed.
  std::size_t quarantined_jobs = 0;
  /// Heartbeat deadlines missed (SIGTERM escalations started).
  std::size_t heartbeat_misses = 0;
  /// Mid-solve checkpoints streamed by workers.
  std::size_t checkpoints_streamed = 0;
  /// Re-dispatches that resumed from a streamed checkpoint.
  std::size_t resumed_dispatches = 0;
};

/// The pool. Construction spawns the workers and the supervisor thread;
/// destruction drains them (EOF on the job pipes, SIGKILL stragglers).
/// run() must not be called concurrently with itself; run_one() is
/// thread-safe and may be called from any number of threads (the serve
/// layer's per-request entry point).
class WorkerPool {
 public:
  explicit WorkerPool(PoolConfig config);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs the batch to completion. Never throws on job failure, worker
  /// death, or quarantine — every job gets a truthful JobResult.
  SupervisedReport run(const std::vector<engine::SolveJob>& jobs);

  /// Runs one job through the pool with external cancel/resume/capture
  /// hooks — the process-mode twin of SolveEngine::run_one. hooks.cancel
  /// is polled by the supervisor and forwarded as a cancel frame;
  /// hooks.resume rides in the job frame; a checkpoint captured on a
  /// clean cancelled exit lands in hooks.capture/captured.
  engine::JobResult run_one(const engine::SolveJob& job,
                            std::size_t job_index,
                            const engine::JobRunHooks& hooks);

  /// PIDs of the currently-alive workers — the chaos harness's SIGKILL
  /// targets.
  std::vector<pid_t> worker_pids() const;

  /// Lifetime counters (same meanings as SupervisedReport).
  std::size_t worker_restarts() const;
  std::size_t quarantined_jobs() const;
  std::size_t heartbeat_misses() const;
  std::size_t checkpoints_streamed() const;

  const PoolConfig& config() const { return config_; }

 private:
  struct Impl;
  PoolConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace defender::supervise
