// Worker side of the supervised subprocess pool.
//
// The supervisor (supervisor.hpp) spawns workers by re-exec'ing the host
// binary (/proc/self/exe) with a sentinel argv. Any binary that
// constructs a WorkerPool must therefore call worker_trampoline() first
// thing in main(): when the sentinel is present the call becomes the
// worker's entire life — it runs the job loop on the inherited pipe fds
// and _exits without ever returning — and when it is absent the call is
// a no-op.
//
// Worker structure (docs/SUPERVISION.md):
//   main thread   reads "supervise-job" frames off the job pipe, runs
//                 each through a private SolveEngine (observability-null,
//                 cache-less — the parent owns all shared state), and
//                 writes the "supervise-result" frame. EOF on the job
//                 pipe is the shutdown signal.
//   aux thread    owns liveness: emits "supervise-heartbeat" frames at
//                 the configured interval, reads cancel frames off the
//                 control pipe (firing the active segment's CancelToken),
//                 and fires checkpoint-stream ticks so long solves leave
//                 resumable "supervise-checkpoint" frames behind them.
//
// The worker-crash / worker-hang fault sites are evaluated here, from
// the job's plan and its dispatch counter alone
// (fault::FaultContext::scheduled), before the solve starts — the job's
// own FaultContext is never touched, so faults_injected and every other
// JobResult field stay bit-identical to an in-process run.
#pragma once

namespace defender::supervise {

/// Sentinel argv[1] that turns any pool-hosting binary into a worker.
inline constexpr char kWorkerSentinel[] = "--defender-supervise-worker";

/// Call first in main(). No-op unless argv matches
///   <exe> --defender-supervise-worker <job_fd> <result_fd> <control_fd>
///         <heartbeat_ms>
/// in which case this runs the worker loop and never returns.
void worker_trampoline(int argc, char** argv);

/// The worker loop itself: reads job frames from `job_fd`, writes
/// results/heartbeats/checkpoints to `result_fd`, reads cancels from
/// `control_fd`. Never returns (exits the process via _Exit).
[[noreturn]] void worker_main(int job_fd, int result_fd, int control_fd,
                              double heartbeat_interval_seconds);

}  // namespace defender::supervise
