// Wire formats for the supervised subprocess worker pool.
//
// Jobs, results, heartbeats, streamed checkpoints, and cancel requests
// travel between the supervisor and its worker processes over pipes. Each
// message is a line-oriented text payload (same hardened-parse idiom as
// "defender-drain v1") sealed in a PR-8 "defender-artifact v1" envelope,
// so a torn or garbled frame — a worker killed mid-write, a stray byte on
// the pipe — is *detected* by byte-exact framing plus CRC32C, never
// trusted (docs/SUPERVISION.md). Pipes carry no legacy data, so unlike
// the on-disk loaders the FrameReader here rejects anything that does not
// begin with an envelope header.
//
// Determinism: JobFrame serializes every field of a SolveJob that affects
// its JobResult (solver, tolerance, budget, weights, board, fault plan,
// retry spec, convergence/canonicalize flags) with %.17g doubles, so the
// worker reconstructs a bit-identical job and the process-mode result for
// a non-faulted job equals the in-process one bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "engine/retry.hpp"

namespace defender::supervise {

// Envelope `format` tags, one per message kind.
inline constexpr char kJobFormat[] = "supervise-job";
inline constexpr char kResultFormat[] = "supervise-result";
inline constexpr char kHeartbeatFormat[] = "supervise-heartbeat";
inline constexpr char kCheckpointFormat[] = "supervise-checkpoint";
inline constexpr char kCancelFormat[] = "supervise-cancel";
inline constexpr char kHelloFormat[] = "supervise-hello";

/// Allocation caps for hardened parsing of pipe frames. Garbled frames
/// are caught by the CRC long before these fire; the caps bound what a
/// syntactically valid but hostile payload can make the parser allocate.
inline constexpr std::size_t kMaxWireVertices = 1u << 20;
inline constexpr std::size_t kMaxWireEdges = 1u << 24;
inline constexpr std::size_t kMaxWireAttempts = 10'000;
inline constexpr std::size_t kMaxWireBlockLines = 2'100'000;

/// One job dispatch: everything a worker needs to run the job and
/// reproduce the exact in-process result.
struct JobFrame {
  std::size_t job_index = 0;
  /// Per-job dispatch counter (0-based): how many times this job has been
  /// handed to a worker, counting this dispatch. Doubles as the fault
  /// evaluation index for the worker-crash / worker-hang sites, so crash
  /// schedules are pure functions of (plan, dispatch).
  std::uint64_t dispatch = 0;
  engine::JobSolver solver = engine::JobSolver::kDoubleOracle;
  double tolerance = 1e-9;
  std::size_t max_iterations = 0;
  double wall_clock_seconds = 0;
  std::uint64_t oracle_node_budget = 0;
  double watchdog_seconds = 0;
  bool collect_convergence = false;
  bool canonicalize = false;
  engine::RetryPolicy retry;
  /// Seconds between checkpoint-stream ticks inside the worker; 0
  /// disables streaming for this dispatch.
  double stream_interval_seconds = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t attackers = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<double> weights;
  /// Verbatim "fault-plan v1" text; empty for an unarmed plan.
  std::string fault_plan_text;
  /// Verbatim "defender-checkpoint v1" text to resume the first attempt
  /// from (recovery after a mid-solve worker death, or a serve-layer
  /// drain resume); empty for a cold start.
  std::string checkpoint_text;
};

std::string to_text(const JobFrame& frame);
Solved<JobFrame> try_parse_job_frame(const std::string& text);

/// Builds a JobFrame from a SolveJob (board flattened to an edge list).
JobFrame frame_from_job(const engine::SolveJob& job, std::size_t job_index,
                        const engine::EngineConfig& config);

/// Reconstructs the SolveJob a frame describes. kInvalidInput when the
/// board is malformed (isolated vertex, k out of range, bad weights
/// arity) or the embedded fault plan / checkpoint text does not parse.
/// (SolveJob is not default-constructible, hence the optional out-param —
/// same shape as serve::to_job.)
Status job_from_frame(const JobFrame& frame,
                      std::optional<engine::SolveJob>* out);

/// One finished dispatch: the full JobResult plus the optionally captured
/// terminal checkpoint (serve-layer drain capture round-trips through
/// this field).
struct ResultFrame {
  std::size_t job_index = 0;
  std::uint64_t dispatch = 0;
  engine::JobResult result;
  /// Verbatim checkpoint text captured on a clean cancelled exit; empty
  /// when nothing was captured.
  std::string checkpoint_text;
};

std::string to_text(const ResultFrame& frame);
Solved<ResultFrame> try_parse_result_frame(const std::string& text);

/// Periodic liveness signal from a worker's aux thread.
struct HeartbeatFrame {
  std::uint64_t sequence = 0;
};

std::string to_text(const HeartbeatFrame& frame);
Solved<HeartbeatFrame> try_parse_heartbeat_frame(const std::string& text);

/// A mid-solve checkpoint streamed by the worker so the supervisor can
/// resume the job after a crash instead of restarting it from scratch.
struct CheckpointFrame {
  std::size_t job_index = 0;
  std::uint64_t dispatch = 0;
  std::string checkpoint_text;
};

std::string to_text(const CheckpointFrame& frame);
Solved<CheckpointFrame> try_parse_checkpoint_frame(const std::string& text);

/// Why the supervisor asked a worker to stop its current job.
enum class CancelReason {
  kWatchdog,
  kExternal,
  kShutdown,
};

constexpr const char* to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kWatchdog: return "watchdog";
    case CancelReason::kExternal: return "external";
    case CancelReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

bool try_parse_cancel_reason(std::string_view name, CancelReason* out);

/// Cooperative cancel request for the named dispatch; the worker fires
/// the active segment's CancelToken when (job_index, dispatch) matches.
struct CancelFrame {
  std::size_t job_index = 0;
  std::uint64_t dispatch = 0;
  CancelReason reason = CancelReason::kExternal;
};

std::string to_text(const CancelFrame& frame);
Solved<CancelFrame> try_parse_cancel_frame(const std::string& text);

/// First frame a worker writes after exec: proof the pipe plumbing works.
struct HelloFrame {
  std::int64_t pid = 0;
};

std::string to_text(const HelloFrame& frame);
Solved<HelloFrame> try_parse_hello_frame(const std::string& text);

/// Seals `payload` for the pipe: wrap_artifact(format, payload).
std::string make_frame(std::string_view format, const std::string& payload);

/// Writes one complete frame to `fd`, retrying EINTR and short writes.
/// False on any other error (EPIPE after a peer death, EBADF, ...).
bool write_frame(int fd, std::string_view format, const std::string& payload);

/// Incremental frame extractor over a byte stream. Feed raw pipe reads
/// in; next() yields complete, checksum-verified frames. Any framing
/// violation — data not starting with an envelope header, an oversized
/// declared payload, a failed CRC — poisons the reader permanently
/// (kCorrupt): the stream cannot be resynchronized, so the peer must be
/// treated as dead.
class FrameReader {
 public:
  enum class Next {
    kFrame,
    kNeedMore,
    kCorrupt,
  };

  struct Frame {
    std::string format;
    std::string payload;
  };

  void feed(const char* data, std::size_t len);

  /// Extracts the next complete frame, if any. On kCorrupt, `error` (when
  /// non-null) receives a description of the violation.
  Next next(Frame* out, std::string* error);

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool corrupt_ = false;
  std::string corrupt_what_;
};

}  // namespace defender::supervise
