#include "supervise/wire.hpp"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "io/envelope.hpp"

namespace defender::supervise {

namespace {

template <typename T>
Solved<T> parse_error(const char* what_frame, std::size_t line,
                      const std::string& what) {
  Solved<T> out;
  out.status = Status::make(StatusCode::kInvalidInput,
                            std::string(what_frame) + " line " +
                                std::to_string(line) + ": " + what);
  return out;
}

bool parse_count(const std::string& token, std::uint64_t cap,
                 std::uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  errno = 0;
  char* rest = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &rest, 10);
  if (errno != 0 || rest == token.c_str() || *rest != '\0') return false;
  if (v > cap) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_size(const std::string& token, std::size_t cap, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_count(token, cap, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_finite(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* rest = nullptr;
  const double v = std::strtod(token.c_str(), &rest);
  if (errno != 0 || rest == token.c_str() || *rest != '\0' ||
      !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

bool parse_flag(const std::string& token, bool* out) {
  if (token == "0") {
    *out = false;
    return true;
  }
  if (token == "1") {
    *out = true;
    return true;
  }
  return false;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Number of '\n'-terminated lines in a verbatim text block.
std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  bool pending = false;
  for (const char c : text) {
    pending = true;
    if (c == '\n') {
      ++lines;
      pending = false;
    }
  }
  if (pending) ++lines;
  return lines;
}

void emit_block(std::ostringstream& os, const char* key,
                const std::string& text) {
  os << key << ' ' << count_lines(text) << '\n';
  if (!text.empty()) {
    os << text;
    if (text.back() != '\n') os << '\n';
  }
}

constexpr engine::AttemptAction kAllAttemptActions[] = {
    engine::AttemptAction::kInitial, engine::AttemptAction::kResume,
    engine::AttemptAction::kEnlarge, engine::AttemptAction::kRescale,
    engine::AttemptAction::kFallback,
};

bool try_parse_attempt_action(const std::string& name,
                              engine::AttemptAction* out) {
  for (engine::AttemptAction a : kAllAttemptActions) {
    if (name == engine::to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

/// Line-by-line cursor over a payload, mirroring the drain-manifest
/// parser: next() skips blank lines, next_raw() copies verbatim-block
/// lines byte for byte.
struct Cursor {
  std::istringstream is;
  std::string line;
  std::size_t line_no = 0;

  explicit Cursor(const std::string& text) : is(text) {}

  bool next() {
    while (std::getline(is, line)) {
      ++line_no;
      bool blank = true;
      for (char ch : line)
        if (!std::isspace(static_cast<unsigned char>(ch))) blank = false;
      if (!blank) return true;
    }
    return false;
  }

  bool next_raw() {
    if (!std::getline(is, line)) return false;
    ++line_no;
    return true;
  }

  /// Reads a "<key> <line-count>" header plus that many verbatim lines.
  bool read_block(const std::string& key, std::string* out,
                  std::string* what) {
    if (!next()) {
      *what = "missing '" + key + "' block";
      return false;
    }
    std::istringstream ls(line);
    std::string k, count_token;
    std::size_t lines = 0;
    if (!(ls >> k >> count_token) || k != key ||
        !parse_size(count_token, kMaxWireBlockLines, &lines)) {
      *what = "expected '" + key + " <line-count>'";
      return false;
    }
    out->clear();
    for (std::size_t i = 0; i < lines; ++i) {
      if (!next_raw()) {
        *what = "truncated '" + key + "' block";
        return false;
      }
      out->append(line);
      out->push_back('\n');
    }
    return true;
  }
};

constexpr std::uint64_t kMaxIndex =
    std::numeric_limits<std::uint64_t>::max() / 4;

}  // namespace

// ---------------------------------------------------------------------------
// JobFrame

std::string to_text(const JobFrame& frame) {
  std::ostringstream os;
  os << "supervise-job v1\n";
  os << "job " << frame.job_index << ' ' << frame.dispatch << '\n';
  os << "solver " << engine::to_string(frame.solver) << '\n';
  os << "tolerance " << format_double(frame.tolerance) << '\n';
  os << "budget " << frame.max_iterations << ' '
     << format_double(frame.wall_clock_seconds) << ' '
     << frame.oracle_node_budget << '\n';
  os << "watchdog " << format_double(frame.watchdog_seconds) << '\n';
  os << "options " << (frame.collect_convergence ? 1 : 0) << ' '
     << (frame.canonicalize ? 1 : 0) << '\n';
  os << "retry " << frame.retry.to_string() << '\n';
  os << "stream " << format_double(frame.stream_interval_seconds) << '\n';
  os << "board " << frame.n << ' ' << frame.k << ' ' << frame.attackers
     << '\n';
  os << "edges " << frame.edges.size();
  for (const auto& [u, v] : frame.edges) os << ' ' << u << ' ' << v;
  os << '\n';
  os << "weights " << frame.weights.size();
  for (const double w : frame.weights) os << ' ' << format_double(w);
  os << '\n';
  emit_block(os, "fault-plan", frame.fault_plan_text);
  emit_block(os, "checkpoint", frame.checkpoint_text);
  os << "end\n";
  return os.str();
}

Solved<JobFrame> try_parse_job_frame(const std::string& text) {
  const auto err = [](std::size_t line, const std::string& what) {
    return parse_error<JobFrame>("supervise-job", line, what);
  };
  Cursor c(text);
  if (!c.next()) return err(1, "empty input");
  if (c.line != "supervise-job v1")
    return err(c.line_no, "missing 'supervise-job v1' header");

  JobFrame frame;
  std::string what;

  if (!c.next()) return err(c.line_no + 1, "missing 'job' line");
  {
    std::istringstream ls(c.line);
    std::string key, index_token, dispatch_token;
    std::uint64_t index = 0;
    if (!(ls >> key >> index_token >> dispatch_token) || key != "job" ||
        !parse_count(index_token, kMaxIndex, &index) ||
        !parse_count(dispatch_token, kMaxIndex, &frame.dispatch))
      return err(c.line_no, "expected 'job <index> <dispatch>'");
    frame.job_index = static_cast<std::size_t>(index);
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'solver' line");
  {
    std::istringstream ls(c.line);
    std::string key, name;
    if (!(ls >> key >> name) || key != "solver" ||
        !engine::try_parse_job_solver(name, &frame.solver))
      return err(c.line_no, "expected 'solver <name>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'tolerance' line");
  {
    std::istringstream ls(c.line);
    std::string key, value;
    if (!(ls >> key >> value) || key != "tolerance" ||
        !parse_finite(value, &frame.tolerance) || frame.tolerance < 0)
      return err(c.line_no, "expected 'tolerance <non-negative>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'budget' line");
  {
    std::istringstream ls(c.line);
    std::string key, iters, wall, oracle;
    if (!(ls >> key >> iters >> wall >> oracle) || key != "budget" ||
        !parse_size(iters, kMaxIndex, &frame.max_iterations) ||
        !parse_finite(wall, &frame.wall_clock_seconds) ||
        frame.wall_clock_seconds < 0 ||
        !parse_count(oracle, kMaxIndex, &frame.oracle_node_budget))
      return err(c.line_no, "expected 'budget <iters> <wall> <oracle>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'watchdog' line");
  {
    std::istringstream ls(c.line);
    std::string key, value;
    if (!(ls >> key >> value) || key != "watchdog" ||
        !parse_finite(value, &frame.watchdog_seconds) ||
        frame.watchdog_seconds < 0)
      return err(c.line_no, "expected 'watchdog <seconds>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'options' line");
  {
    std::istringstream ls(c.line);
    std::string key, conv, canon;
    if (!(ls >> key >> conv >> canon) || key != "options" ||
        !parse_flag(conv, &frame.collect_convergence) ||
        !parse_flag(canon, &frame.canonicalize))
      return err(c.line_no, "expected 'options <0|1> <0|1>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'retry' line");
  {
    std::istringstream ls(c.line);
    std::string key, spec;
    if (!(ls >> key >> spec) || key != "retry")
      return err(c.line_no, "expected 'retry <spec>'");
    Solved<engine::RetryPolicy> parsed = engine::RetryPolicy::try_parse(spec);
    if (!parsed.ok())
      return err(c.line_no, "bad retry spec: " + parsed.status.message);
    frame.retry = parsed.result;
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'stream' line");
  {
    std::istringstream ls(c.line);
    std::string key, value;
    if (!(ls >> key >> value) || key != "stream" ||
        !parse_finite(value, &frame.stream_interval_seconds) ||
        frame.stream_interval_seconds < 0)
      return err(c.line_no, "expected 'stream <seconds>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'board' line");
  {
    std::istringstream ls(c.line);
    std::string key, sn, sk, sa;
    if (!(ls >> key >> sn >> sk >> sa) || key != "board" ||
        !parse_size(sn, kMaxWireVertices, &frame.n) || frame.n == 0 ||
        !parse_size(sk, kMaxWireEdges, &frame.k) || frame.k == 0 ||
        !parse_size(sa, kMaxWireVertices, &frame.attackers) ||
        frame.attackers == 0)
      return err(c.line_no, "expected 'board <n> <k> <attackers>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'edges' line");
  {
    std::istringstream ls(c.line);
    std::string key, count_token;
    std::size_t count = 0;
    if (!(ls >> key >> count_token) || key != "edges" ||
        !parse_size(count_token, kMaxWireEdges, &count))
      return err(c.line_no, "expected 'edges <count> [u v ...]'");
    frame.edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string su, sv;
      std::uint64_t u = 0, v = 0;
      if (!(ls >> su >> sv) || !parse_count(su, kMaxWireVertices, &u) ||
          !parse_count(sv, kMaxWireVertices, &v))
        return err(c.line_no, "malformed edge list");
      frame.edges.emplace_back(static_cast<std::uint32_t>(u),
                               static_cast<std::uint32_t>(v));
    }
    std::string extra;
    if (ls >> extra) return err(c.line_no, "trailing tokens on 'edges'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'weights' line");
  {
    std::istringstream ls(c.line);
    std::string key, count_token;
    std::size_t count = 0;
    if (!(ls >> key >> count_token) || key != "weights" ||
        !parse_size(count_token, kMaxWireVertices, &count))
      return err(c.line_no, "expected 'weights <count> [w ...]'");
    frame.weights.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string sw;
      double w = 0;
      if (!(ls >> sw) || !parse_finite(sw, &w))
        return err(c.line_no, "malformed weight list");
      frame.weights.push_back(w);
    }
    std::string extra;
    if (ls >> extra) return err(c.line_no, "trailing tokens on 'weights'");
  }

  if (!c.read_block("fault-plan", &frame.fault_plan_text, &what))
    return err(c.line_no, what);
  if (!c.read_block("checkpoint", &frame.checkpoint_text, &what))
    return err(c.line_no, what);

  if (!c.next() || c.line != "end")
    return err(c.line_no + 1, "missing 'end' trailer");

  Solved<JobFrame> out;
  out.result = std::move(frame);
  out.status = Status::make_ok();
  return out;
}

JobFrame frame_from_job(const engine::SolveJob& job, std::size_t job_index,
                        const engine::EngineConfig& config) {
  JobFrame frame;
  frame.job_index = job_index;
  frame.solver = job.solver;
  frame.tolerance = job.tolerance;
  frame.max_iterations = job.budget.max_iterations;
  frame.wall_clock_seconds = job.budget.wall_clock_seconds;
  frame.oracle_node_budget = job.budget.oracle_node_budget;
  frame.watchdog_seconds = job.watchdog_seconds;
  frame.collect_convergence = config.collect_convergence;
  frame.canonicalize = config.canonicalize;
  frame.retry = config.retry;
  const graph::Graph& g = job.game.graph();
  frame.n = g.num_vertices();
  frame.k = job.game.k();
  frame.attackers = job.game.num_attackers();
  frame.edges.reserve(g.num_edges());
  for (const graph::Edge& e : g.edges()) frame.edges.emplace_back(e.u, e.v);
  frame.weights = job.weights;
  if (job.fault_plan.armed()) frame.fault_plan_text = job.fault_plan.to_text();
  return frame;
}

Status job_from_frame(const JobFrame& frame,
                      std::optional<engine::SolveJob>* out) {
  out->reset();
  try {
    graph::GraphBuilder builder(frame.n);
    for (const auto& [u, v] : frame.edges) builder.add_edge(u, v);
    graph::Graph g = builder.build();
    if (g.has_isolated_vertex())
      return Status::make(StatusCode::kInvalidInput,
                          "job frame board has an isolated vertex");
    if (frame.k > g.num_edges())
      return Status::make(StatusCode::kInvalidInput,
                          "job frame k exceeds edge count");
    core::TupleGame game(std::move(g), frame.k, frame.attackers);
    engine::SolveJob job(std::move(game));
    job.solver = frame.solver;
    job.tolerance = frame.tolerance;
    job.budget.max_iterations = frame.max_iterations;
    job.budget.wall_clock_seconds = frame.wall_clock_seconds;
    job.budget.oracle_node_budget = frame.oracle_node_budget;
    job.watchdog_seconds = frame.watchdog_seconds;
    job.weights = frame.weights;
    if (!frame.fault_plan_text.empty()) {
      Solved<fault::FaultPlan> plan =
          fault::FaultPlan::try_parse(frame.fault_plan_text);
      if (!plan.ok())
        return Status::make(StatusCode::kInvalidInput,
                            "job frame fault plan: " + plan.status.message);
      job.fault_plan = plan.result;
    }
    out->emplace(std::move(job));
    return Status::make_ok();
  } catch (const std::exception& e) {
    return Status::make(StatusCode::kInvalidInput,
                        std::string("job frame rejected: ") + e.what());
  }
}

// ---------------------------------------------------------------------------
// ResultFrame

std::string to_text(const ResultFrame& frame) {
  const engine::JobResult& r = frame.result;
  std::ostringstream os;
  os << "supervise-result v1\n";
  os << "job " << frame.job_index << ' ' << frame.dispatch << '\n';
  os << "solver " << engine::to_string(r.solver) << '\n';
  os << "status " << defender::to_string(r.status.code) << ' '
     << r.status.iterations << ' ' << format_double(r.status.residual) << ' '
     << format_double(r.status.elapsed_seconds) << '\n';
  os << "message";
  if (!r.status.message.empty()) os << ' ' << r.status.message;
  os << '\n';
  os << "value " << format_double(r.value) << ' '
     << format_double(r.lower_bound) << ' ' << format_double(r.upper_bound)
     << '\n';
  os << "iterations " << r.iterations << '\n';
  os << "flags " << (r.fallback_used ? 1 : 0) << ' '
     << (r.watchdog_killed ? 1 : 0) << ' ' << r.faults_injected << ' '
     << r.convergence_samples << '\n';
  os << "attempts " << r.attempts.size() << '\n';
  for (const engine::AttemptRecord& a : r.attempts) {
    os << "attempt " << a.attempt << ' ' << engine::to_string(a.action)
       << ' ' << engine::to_string(a.solver) << ' '
       << defender::to_string(a.outcome) << ' ' << format_double(a.value)
       << ' ' << format_double(a.lower) << ' ' << format_double(a.upper)
       << ' ' << a.iterations << ' ' << format_double(a.elapsed_seconds)
       << '\n';
  }
  emit_block(os, "checkpoint", frame.checkpoint_text);
  os << "end\n";
  return os.str();
}

Solved<ResultFrame> try_parse_result_frame(const std::string& text) {
  const auto err = [](std::size_t line, const std::string& what) {
    return parse_error<ResultFrame>("supervise-result", line, what);
  };
  Cursor c(text);
  if (!c.next()) return err(1, "empty input");
  if (c.line != "supervise-result v1")
    return err(c.line_no, "missing 'supervise-result v1' header");

  ResultFrame frame;
  engine::JobResult& r = frame.result;
  std::string what;

  if (!c.next()) return err(c.line_no + 1, "missing 'job' line");
  {
    std::istringstream ls(c.line);
    std::string key, index_token, dispatch_token;
    std::uint64_t index = 0;
    if (!(ls >> key >> index_token >> dispatch_token) || key != "job" ||
        !parse_count(index_token, kMaxIndex, &index) ||
        !parse_count(dispatch_token, kMaxIndex, &frame.dispatch))
      return err(c.line_no, "expected 'job <index> <dispatch>'");
    frame.job_index = static_cast<std::size_t>(index);
    r.job_index = frame.job_index;
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'solver' line");
  {
    std::istringstream ls(c.line);
    std::string key, name;
    if (!(ls >> key >> name) || key != "solver" ||
        !engine::try_parse_job_solver(name, &r.solver))
      return err(c.line_no, "expected 'solver <name>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'status' line");
  {
    std::istringstream ls(c.line);
    std::string key, code, iters, residual, elapsed;
    std::size_t it = 0;
    if (!(ls >> key >> code >> iters >> residual >> elapsed) ||
        key != "status" || !try_parse_status_code(code, &r.status.code) ||
        !parse_size(iters, kMaxIndex, &it) ||
        !parse_finite(residual, &r.status.residual) ||
        !parse_finite(elapsed, &r.status.elapsed_seconds))
      return err(c.line_no,
                 "expected 'status <code> <iters> <residual> <elapsed>'");
    r.status.iterations = it;
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'message' line");
  {
    if (c.line.rfind("message", 0) != 0)
      return err(c.line_no, "expected 'message [text]'");
    if (c.line.size() > 8)
      r.status.message = c.line.substr(8);
    else if (c.line != "message" && c.line != "message ")
      return err(c.line_no, "expected 'message [text]'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'value' line");
  {
    std::istringstream ls(c.line);
    std::string key, sv, sl, su;
    if (!(ls >> key >> sv >> sl >> su) || key != "value" ||
        !parse_finite(sv, &r.value) || !parse_finite(sl, &r.lower_bound) ||
        !parse_finite(su, &r.upper_bound))
      return err(c.line_no, "expected 'value <v> <lower> <upper>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'iterations' line");
  {
    std::istringstream ls(c.line);
    std::string key, token;
    if (!(ls >> key >> token) || key != "iterations" ||
        !parse_size(token, kMaxIndex, &r.iterations))
      return err(c.line_no, "expected 'iterations <n>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'flags' line");
  {
    std::istringstream ls(c.line);
    std::string key, fb, wd, faults, conv;
    if (!(ls >> key >> fb >> wd >> faults >> conv) || key != "flags" ||
        !parse_flag(fb, &r.fallback_used) ||
        !parse_flag(wd, &r.watchdog_killed) ||
        !parse_count(faults, kMaxIndex, &r.faults_injected) ||
        !parse_size(conv, kMaxIndex, &r.convergence_samples))
      return err(c.line_no,
                 "expected 'flags <fallback> <watchdog> <faults> <conv>'");
  }

  if (!c.next()) return err(c.line_no + 1, "missing 'attempts' line");
  std::size_t attempt_count = 0;
  {
    std::istringstream ls(c.line);
    std::string key, token;
    if (!(ls >> key >> token) || key != "attempts" ||
        !parse_size(token, kMaxWireAttempts, &attempt_count))
      return err(c.line_no, "expected 'attempts <count>'");
  }
  r.attempts.reserve(attempt_count);
  for (std::size_t i = 0; i < attempt_count; ++i) {
    if (!c.next()) return err(c.line_no + 1, "truncated attempt list");
    std::istringstream ls(c.line);
    std::string key, sattempt, saction, ssolver, soutcome, sv, sl, su, sit,
        selapsed;
    engine::AttemptRecord a;
    if (!(ls >> key >> sattempt >> saction >> ssolver >> soutcome >> sv >>
          sl >> su >> sit >> selapsed) ||
        key != "attempt" || !parse_size(sattempt, kMaxIndex, &a.attempt) ||
        !try_parse_attempt_action(saction, &a.action) ||
        !engine::try_parse_job_solver(ssolver, &a.solver) ||
        !try_parse_status_code(soutcome, &a.outcome) ||
        !parse_finite(sv, &a.value) || !parse_finite(sl, &a.lower) ||
        !parse_finite(su, &a.upper) ||
        !parse_size(sit, kMaxIndex, &a.iterations) ||
        !parse_finite(selapsed, &a.elapsed_seconds))
      return err(c.line_no, "malformed 'attempt' line");
    r.attempts.push_back(a);
  }

  if (!c.read_block("checkpoint", &frame.checkpoint_text, &what))
    return err(c.line_no, what);

  if (!c.next() || c.line != "end")
    return err(c.line_no + 1, "missing 'end' trailer");

  Solved<ResultFrame> out;
  out.result = std::move(frame);
  out.status = Status::make_ok();
  return out;
}

// ---------------------------------------------------------------------------
// HeartbeatFrame / CheckpointFrame / CancelFrame / HelloFrame

std::string to_text(const HeartbeatFrame& frame) {
  std::ostringstream os;
  os << "supervise-heartbeat v1\nseq " << frame.sequence << "\nend\n";
  return os.str();
}

Solved<HeartbeatFrame> try_parse_heartbeat_frame(const std::string& text) {
  const auto err = [](std::size_t line, const std::string& what) {
    return parse_error<HeartbeatFrame>("supervise-heartbeat", line, what);
  };
  Cursor c(text);
  if (!c.next()) return err(1, "empty input");
  if (c.line != "supervise-heartbeat v1")
    return err(c.line_no, "missing 'supervise-heartbeat v1' header");
  HeartbeatFrame frame;
  if (!c.next()) return err(c.line_no + 1, "missing 'seq' line");
  {
    std::istringstream ls(c.line);
    std::string key, token;
    if (!(ls >> key >> token) || key != "seq" ||
        !parse_count(token, kMaxIndex, &frame.sequence))
      return err(c.line_no, "expected 'seq <n>'");
  }
  if (!c.next() || c.line != "end")
    return err(c.line_no + 1, "missing 'end' trailer");
  Solved<HeartbeatFrame> out;
  out.result = frame;
  out.status = Status::make_ok();
  return out;
}

std::string to_text(const CheckpointFrame& frame) {
  std::ostringstream os;
  os << "supervise-checkpoint v1\n";
  os << "job " << frame.job_index << ' ' << frame.dispatch << '\n';
  emit_block(os, "checkpoint", frame.checkpoint_text);
  os << "end\n";
  return os.str();
}

Solved<CheckpointFrame> try_parse_checkpoint_frame(const std::string& text) {
  const auto err = [](std::size_t line, const std::string& what) {
    return parse_error<CheckpointFrame>("supervise-checkpoint", line, what);
  };
  Cursor c(text);
  if (!c.next()) return err(1, "empty input");
  if (c.line != "supervise-checkpoint v1")
    return err(c.line_no, "missing 'supervise-checkpoint v1' header");
  CheckpointFrame frame;
  std::string what;
  if (!c.next()) return err(c.line_no + 1, "missing 'job' line");
  {
    std::istringstream ls(c.line);
    std::string key, index_token, dispatch_token;
    std::uint64_t index = 0;
    if (!(ls >> key >> index_token >> dispatch_token) || key != "job" ||
        !parse_count(index_token, kMaxIndex, &index) ||
        !parse_count(dispatch_token, kMaxIndex, &frame.dispatch))
      return err(c.line_no, "expected 'job <index> <dispatch>'");
    frame.job_index = static_cast<std::size_t>(index);
  }
  if (!c.read_block("checkpoint", &frame.checkpoint_text, &what))
    return err(c.line_no, what);
  if (!c.next() || c.line != "end")
    return err(c.line_no + 1, "missing 'end' trailer");
  Solved<CheckpointFrame> out;
  out.result = std::move(frame);
  out.status = Status::make_ok();
  return out;
}

bool try_parse_cancel_reason(std::string_view name, CancelReason* out) {
  for (CancelReason r : {CancelReason::kWatchdog, CancelReason::kExternal,
                         CancelReason::kShutdown}) {
    if (name == to_string(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

std::string to_text(const CancelFrame& frame) {
  std::ostringstream os;
  os << "supervise-cancel v1\n";
  os << "job " << frame.job_index << ' ' << frame.dispatch << '\n';
  os << "reason " << to_string(frame.reason) << '\n';
  os << "end\n";
  return os.str();
}

Solved<CancelFrame> try_parse_cancel_frame(const std::string& text) {
  const auto err = [](std::size_t line, const std::string& what) {
    return parse_error<CancelFrame>("supervise-cancel", line, what);
  };
  Cursor c(text);
  if (!c.next()) return err(1, "empty input");
  if (c.line != "supervise-cancel v1")
    return err(c.line_no, "missing 'supervise-cancel v1' header");
  CancelFrame frame;
  if (!c.next()) return err(c.line_no + 1, "missing 'job' line");
  {
    std::istringstream ls(c.line);
    std::string key, index_token, dispatch_token;
    std::uint64_t index = 0;
    if (!(ls >> key >> index_token >> dispatch_token) || key != "job" ||
        !parse_count(index_token, kMaxIndex, &index) ||
        !parse_count(dispatch_token, kMaxIndex, &frame.dispatch))
      return err(c.line_no, "expected 'job <index> <dispatch>'");
    frame.job_index = static_cast<std::size_t>(index);
  }
  if (!c.next()) return err(c.line_no + 1, "missing 'reason' line");
  {
    std::istringstream ls(c.line);
    std::string key, name;
    if (!(ls >> key >> name) || key != "reason" ||
        !try_parse_cancel_reason(name, &frame.reason))
      return err(c.line_no, "expected 'reason <watchdog|external|shutdown>'");
  }
  if (!c.next() || c.line != "end")
    return err(c.line_no + 1, "missing 'end' trailer");
  Solved<CancelFrame> out;
  out.result = frame;
  out.status = Status::make_ok();
  return out;
}

std::string to_text(const HelloFrame& frame) {
  std::ostringstream os;
  os << "supervise-hello v1\npid " << frame.pid << "\nend\n";
  return os.str();
}

Solved<HelloFrame> try_parse_hello_frame(const std::string& text) {
  const auto err = [](std::size_t line, const std::string& what) {
    return parse_error<HelloFrame>("supervise-hello", line, what);
  };
  Cursor c(text);
  if (!c.next()) return err(1, "empty input");
  if (c.line != "supervise-hello v1")
    return err(c.line_no, "missing 'supervise-hello v1' header");
  HelloFrame frame;
  if (!c.next()) return err(c.line_no + 1, "missing 'pid' line");
  {
    std::istringstream ls(c.line);
    std::string key, token;
    std::uint64_t pid = 0;
    if (!(ls >> key >> token) || key != "pid" ||
        !parse_count(token, kMaxIndex, &pid))
      return err(c.line_no, "expected 'pid <n>'");
    frame.pid = static_cast<std::int64_t>(pid);
  }
  if (!c.next() || c.line != "end")
    return err(c.line_no + 1, "missing 'end' trailer");
  Solved<HelloFrame> out;
  out.result = frame;
  out.status = Status::make_ok();
  return out;
}

// ---------------------------------------------------------------------------
// Pipe framing

std::string make_frame(std::string_view format, const std::string& payload) {
  return io::wrap_artifact(format, payload);
}

bool write_frame(int fd, std::string_view format, const std::string& payload) {
  const std::string frame = make_frame(format, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void FrameReader::feed(const char* data, std::size_t len) {
  if (corrupt_) return;
  buf_.append(data, len);
}

FrameReader::Next FrameReader::next(Frame* out, std::string* error) {
  const auto fail = [&](const std::string& what) {
    corrupt_ = true;
    corrupt_what_ = what;
    if (error != nullptr) *error = what;
    return Next::kCorrupt;
  };
  if (corrupt_) {
    if (error != nullptr) *error = corrupt_what_;
    return Next::kCorrupt;
  }
  if (buf_.empty()) return Next::kNeedMore;

  // A pipe carries only envelopes: the buffer must be a prefix of
  // "defender-artifact v1\nformat <name>\nbytes <N>\n...". Reject early
  // the moment the buffered bytes cannot extend to a valid header.
  static constexpr std::string_view kHeader = "defender-artifact v1\n";
  const std::size_t probe = std::min(buf_.size(), kHeader.size());
  if (std::string_view(buf_).substr(0, probe) != kHeader.substr(0, probe))
    return fail("stream does not begin with a defender-artifact header");
  if (buf_.size() < kHeader.size()) return Next::kNeedMore;

  // Locate the three header lines. An unreasonably long prefix without
  // them is corruption, not patience.
  constexpr std::size_t kMaxHeaderBytes = 256;
  const std::size_t nl1 = kHeader.size() - 1;
  const std::size_t nl2 = buf_.find('\n', nl1 + 1);
  if (nl2 == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes) return fail("oversized frame header");
    return Next::kNeedMore;
  }
  const std::size_t nl3 = buf_.find('\n', nl2 + 1);
  if (nl3 == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes) return fail("oversized frame header");
    return Next::kNeedMore;
  }

  const std::string format_line = buf_.substr(nl1 + 1, nl2 - nl1 - 1);
  const std::string bytes_line = buf_.substr(nl2 + 1, nl3 - nl2 - 1);
  if (format_line.rfind("format ", 0) != 0)
    return fail("malformed frame 'format' line");
  const std::string format = format_line.substr(7);
  if (format.empty() || format.find(' ') != std::string::npos)
    return fail("malformed frame format name");
  if (bytes_line.rfind("bytes ", 0) != 0)
    return fail("malformed frame 'bytes' line");
  std::uint64_t declared = 0;
  if (!parse_count(bytes_line.substr(6), io::kMaxArtifactBytes, &declared))
    return fail("frame declares an invalid payload size");

  // crc32c <8 hex>\n end\n
  constexpr std::size_t kTrailerBytes = 7 + 8 + 1 + 4;
  const std::size_t total =
      nl3 + 1 + static_cast<std::size_t>(declared) + kTrailerBytes;
  if (buf_.size() < total) return Next::kNeedMore;

  const std::string frame_text = buf_.substr(0, total);
  Solved<io::UnwrappedArtifact> unwrapped =
      io::unwrap_artifact(frame_text, format);
  if (!unwrapped.ok() || !unwrapped.result.enveloped)
    return fail("frame failed envelope verification: " +
                unwrapped.status.message);
  buf_.erase(0, total);
  out->format = format;
  out->payload = std::move(unwrapped.result.payload);
  return Next::kFrame;
}

}  // namespace defender::supervise
