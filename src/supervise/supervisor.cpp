#include "supervise/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "supervise/wire.hpp"
#include "supervise/worker.hpp"

namespace defender::supervise {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

double weight_upper_bound(const std::vector<double>& weights) {
  double ub = 1.0;
  for (double w : weights)
    if (w > ub) ub = w;
  return ub;
}

/// One submitted job and its recovery state. Callers block on `done`;
/// everything else is supervisor-thread-only after submission.
struct Pending {
  const engine::SolveJob* job = nullptr;
  std::size_t job_index = 0;

  // External hooks (run_one path).
  CancelToken* external_cancel = nullptr;

  /// Checkpoint text to resume the next dispatch from: the caller's
  /// hooks.resume initially, then the worker's last streamed checkpoint.
  std::string resume_text;
  bool streamed_resume = false;

  std::uint64_t next_dispatch = 0;
  std::uint64_t active_dispatch = 0;
  std::size_t kills = 0;
  bool watchdog_sent = false;
  bool external_sent = false;
  bool has_watchdog = false;
  Clock::time_point watchdog_deadline{};

  // Completion (guarded by Impl::mu).
  bool done = false;
  engine::JobResult result;
  std::string result_checkpoint_text;
};

using PendingPtr = std::shared_ptr<Pending>;

}  // namespace

struct WorkerPool::Impl {
  PoolConfig config;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingPtr> submit_queue;
  bool stop = false;

  mutable std::mutex pids_mu;
  std::vector<pid_t> pids;

  std::atomic<std::size_t> restarts{0};
  std::atomic<std::size_t> quarantined{0};
  std::atomic<std::size_t> hb_misses{0};
  std::atomic<std::size_t> streamed{0};
  std::atomic<std::size_t> resumed{0};

  int wake_fds[2] = {-1, -1};
  std::thread loop;

  struct Worker {
    pid_t pid = -1;
    int job_fd = -1;
    int result_fd = -1;
    int control_fd = -1;
    FrameReader reader;
    bool alive = false;
    PendingPtr current;
    Clock::time_point last_heartbeat{};
    bool term_sent = false;
    Clock::time_point term_deadline{};
    double backoff_ms = 0;
    bool restart_pending = false;
    Clock::time_point restart_at{};
  };
  // Supervisor-thread-only.
  std::vector<Worker> workers;
  std::deque<PendingPtr> ready;

  explicit Impl(const PoolConfig& cfg) : config(cfg) {
    // Worker death during a pipe write must surface as EPIPE, never a
    // process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    if (::pipe2(wake_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
      wake_fds[0] = wake_fds[1] = -1;
    }
    workers.resize(config.workers);
    loop = std::thread([this] { loop_main(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    wake();
    if (loop.joinable()) loop.join();
    if (wake_fds[0] >= 0) ::close(wake_fds[0]);
    if (wake_fds[1] >= 0) ::close(wake_fds[1]);
  }

  void wake() {
    if (wake_fds[1] < 0) return;
    const char b = 'w';
    // Best effort: a full pipe already guarantees a pending wakeup.
    (void)!::write(wake_fds[1], &b, 1);
  }

  void submit(PendingPtr p) {
    {
      std::lock_guard<std::mutex> lock(mu);
      submit_queue.push_back(std::move(p));
    }
    wake();
  }

  void await(const PendingPtr& p) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return p->done; });
  }

  void set_workers_alive_gauge() {
    if (config.metrics == nullptr) return;
    std::size_t alive = 0;
    for (const Worker& w : workers)
      if (w.alive) ++alive;
    config.metrics->gauge("supervise.workers_alive")
        .set(static_cast<double>(alive));
  }

  void record_pids() {
    std::lock_guard<std::mutex> lock(pids_mu);
    pids.clear();
    for (const Worker& w : workers)
      if (w.alive) pids.push_back(w.pid);
  }

  // -------------------------------------------------------------------
  // Worker lifecycle (supervisor thread).

  bool spawn(Worker& w) {
    int job_pipe[2], result_pipe[2], control_pipe[2];
    if (::pipe2(job_pipe, O_CLOEXEC) != 0) return false;
    if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      return false;
    }
    if (::pipe2(control_pipe, O_CLOEXEC) != 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      ::close(result_pipe[0]);
      ::close(result_pipe[1]);
      return false;
    }

    // Render argv BEFORE fork: between fork and exec only async-signal-
    // safe calls are allowed in a multithreaded parent.
    const std::string fd_job = std::to_string(job_pipe[0]);
    const std::string fd_result = std::to_string(result_pipe[1]);
    const std::string fd_control = std::to_string(control_pipe[0]);
    const std::string hb_ms = std::to_string(std::max<long>(
        1, static_cast<long>(config.heartbeat_interval_seconds * 1000.0)));
    char arg0[] = "defender-worker";
    char* child_argv[7];
    child_argv[0] = arg0;
    child_argv[1] = const_cast<char*>(kWorkerSentinel);
    child_argv[2] = const_cast<char*>(fd_job.c_str());
    child_argv[3] = const_cast<char*>(fd_result.c_str());
    child_argv[4] = const_cast<char*>(fd_control.c_str());
    child_argv[5] = const_cast<char*>(hb_ms.c_str());
    child_argv[6] = nullptr;

    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: un-CLOEXEC its three pipe ends, then re-exec this binary;
      // worker_trampoline picks the sentinel up at the top of main.
      ::fcntl(job_pipe[0], F_SETFD, 0);
      ::fcntl(result_pipe[1], F_SETFD, 0);
      ::fcntl(control_pipe[0], F_SETFD, 0);
      ::execv("/proc/self/exe", child_argv);
      ::_exit(127);
    }

    // Parent: drop the child's ends immediately. A leaked write end in a
    // sibling would suppress the EOF that is our crash detector.
    ::close(job_pipe[0]);
    ::close(result_pipe[1]);
    ::close(control_pipe[0]);
    if (pid < 0) {
      ::close(job_pipe[1]);
      ::close(result_pipe[0]);
      ::close(control_pipe[1]);
      return false;
    }
    w.pid = pid;
    w.job_fd = job_pipe[1];
    w.result_fd = result_pipe[0];
    w.control_fd = control_pipe[1];
    w.reader = FrameReader{};
    w.alive = true;
    w.current = nullptr;
    w.last_heartbeat = Clock::now();
    w.term_sent = false;
    w.restart_pending = false;
    if (w.backoff_ms <= 0) w.backoff_ms = config.restart_backoff_ms;
    set_workers_alive_gauge();
    record_pids();
    return true;
  }

  void close_worker_fds(Worker& w) {
    if (w.job_fd >= 0) ::close(w.job_fd);
    if (w.result_fd >= 0) ::close(w.result_fd);
    if (w.control_fd >= 0) ::close(w.control_fd);
    w.job_fd = w.result_fd = w.control_fd = -1;
  }

  /// EOF / error on a worker's result pipe: the process is dead or
  /// moments from it. Reap it, attribute the in-flight job a kill, and
  /// schedule a backed-off restart.
  void worker_died(Worker& w) {
    int status = 0;
    (void)::waitpid(w.pid, &status, 0);
    close_worker_fds(w);
    w.alive = false;
    set_workers_alive_gauge();
    record_pids();

    if (w.current != nullptr) {
      PendingPtr job = std::move(w.current);
      w.current = nullptr;
      ++job->kills;
      if (job->kills >= config.max_job_crashes) {
        quarantine(job);
      } else {
        // Back to the front of the queue: a recovering job should meet
        // its quarantine verdict before fresh work piles on.
        ready.push_front(std::move(job));
      }
    }

    restarts.fetch_add(1, std::memory_order_relaxed);
    if (config.metrics != nullptr)
      config.metrics->counter("supervise.restarts").add(1);
    w.restart_pending = true;
    w.restart_at = Clock::now() + seconds_to_duration(w.backoff_ms / 1000.0);
    w.backoff_ms = std::min(w.backoff_ms * 2, config.restart_backoff_cap_ms);
  }

  // -------------------------------------------------------------------
  // Job completion paths.

  void complete(const PendingPtr& job, engine::JobResult result,
                std::string checkpoint_text) {
    std::lock_guard<std::mutex> lock(mu);
    job->result = std::move(result);
    job->result_checkpoint_text = std::move(checkpoint_text);
    job->done = true;
    cv.notify_all();
  }

  void quarantine(const PendingPtr& job) {
    quarantined.fetch_add(1, std::memory_order_relaxed);
    if (config.metrics != nullptr)
      config.metrics->counter("supervise.quarantined_jobs").add(1);
    engine::JobResult r;
    r.job_index = job->job_index;
    r.solver = job->job->solver;
    const double ub = weight_upper_bound(job->job->weights);
    r.status = Status::make(
        StatusCode::kWorkerCrashed,
        "worker killed " + std::to_string(job->kills) +
            " time(s) running this job; quarantined without a result");
    r.lower_bound = 0;
    r.upper_bound = ub;
    r.value = ub / 2;
    complete(job, std::move(r), {});
  }

  void complete_cancelled_unqueued(const PendingPtr& job) {
    engine::JobResult r;
    r.job_index = job->job_index;
    r.solver = job->job->solver;
    const double ub = weight_upper_bound(job->job->weights);
    r.status = Status::make(StatusCode::kCancelled,
                            "cancelled before dispatch to a worker");
    r.lower_bound = 0;
    r.upper_bound = ub;
    r.value = ub / 2;
    complete(job, std::move(r), {});
  }

  // -------------------------------------------------------------------
  // Dispatch.

  void dispatch(Worker& w, PendingPtr job) {
    JobFrame frame = frame_from_job(*job->job, job->job_index, config.engine);
    frame.dispatch = job->next_dispatch;
    frame.stream_interval_seconds = config.stream_interval_seconds;
    frame.checkpoint_text = job->resume_text;
    if (!frame.checkpoint_text.empty() && job->streamed_resume) {
      resumed.fetch_add(1, std::memory_order_relaxed);
    }
    if (!write_frame(w.job_fd, kJobFormat, to_text(frame))) {
      // The worker died under us; its EOF is already in flight. Requeue
      // WITHOUT attributing a kill — this death was not the job's doing.
      ready.push_front(std::move(job));
      return;
    }
    job->active_dispatch = job->next_dispatch;
    ++job->next_dispatch;
    job->watchdog_sent = false;
    job->external_sent = false;
    if (job->job->watchdog_seconds > 0) {
      job->has_watchdog = true;
      job->watchdog_deadline =
          Clock::now() + seconds_to_duration(job->job->watchdog_seconds);
    } else {
      job->has_watchdog = false;
    }
    w.current = std::move(job);
  }

  void send_cancel(Worker& w, const PendingPtr& job, CancelReason reason) {
    CancelFrame cancel;
    cancel.job_index = job->job_index;
    cancel.dispatch = job->active_dispatch;
    cancel.reason = reason;
    // A failed write means the worker is dead; the EOF path recovers.
    (void)write_frame(w.control_fd, kCancelFormat, to_text(cancel));
  }

  // -------------------------------------------------------------------
  // Frame handling.

  void handle_frame(Worker& w, const FrameReader::Frame& frame) {
    w.last_heartbeat = Clock::now();
    w.term_sent = false;
    if (frame.format == kHeartbeatFormat || frame.format == kHelloFormat)
      return;
    if (frame.format == kCheckpointFormat) {
      Solved<CheckpointFrame> ckpt = try_parse_checkpoint_frame(frame.payload);
      if (!ckpt.ok() || w.current == nullptr) return;
      if (ckpt.result.job_index != w.current->job_index ||
          ckpt.result.dispatch != w.current->active_dispatch)
        return;
      w.current->resume_text = std::move(ckpt.result.checkpoint_text);
      w.current->streamed_resume = true;
      streamed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (frame.format == kResultFormat) {
      Solved<ResultFrame> result = try_parse_result_frame(frame.payload);
      if (!result.ok() || w.current == nullptr) return;
      if (result.result.job_index != w.current->job_index ||
          result.result.dispatch != w.current->active_dispatch)
        return;
      PendingPtr job = std::move(w.current);
      w.current = nullptr;
      w.backoff_ms = config.restart_backoff_ms;  // proof of health
      engine::JobResult r = std::move(result.result.result);
      r.job_index = job->job_index;
      if (job->watchdog_sent && r.status.code == StatusCode::kCancelled)
        r.watchdog_killed = true;
      complete(job, std::move(r), std::move(result.result.checkpoint_text));
      return;
    }
    // Unknown frame kind from a worker we built ourselves: treat the
    // stream as garbage.
    kill_worker(w);
  }

  void kill_worker(Worker& w) {
    if (w.alive && w.pid > 0) (void)::kill(w.pid, SIGKILL);
  }

  // -------------------------------------------------------------------
  // Event loop.

  void loop_main() {
    for (Worker& w : workers) {
      if (!spawn(w)) {
        w.restart_pending = true;
        w.restart_at =
            Clock::now() + seconds_to_duration(
                               (w.backoff_ms > 0 ? w.backoff_ms
                                                 : config.restart_backoff_ms) /
                               1000.0);
      }
    }

    char buf[65536];
    for (;;) {
      // 1. Pull in submissions; decide shutdown.
      {
        std::lock_guard<std::mutex> lock(mu);
        while (!submit_queue.empty()) {
          ready.push_back(std::move(submit_queue.front()));
          submit_queue.pop_front();
        }
        if (stop && ready.empty()) {
          bool busy = false;
          for (const Worker& w : workers)
            if (w.current != nullptr) busy = true;
          if (!busy) break;
        }
      }

      // 2. External cancels for still-queued jobs.
      for (auto it = ready.begin(); it != ready.end();) {
        const PendingPtr& job = *it;
        if (job->external_cancel != nullptr &&
            job->external_cancel->cancelled()) {
          complete_cancelled_unqueued(job);
          it = ready.erase(it);
        } else {
          ++it;
        }
      }

      // 3. Hand ready jobs to idle workers.
      for (Worker& w : workers) {
        if (ready.empty()) break;
        if (!w.alive || w.current != nullptr) continue;
        PendingPtr job = std::move(ready.front());
        ready.pop_front();
        dispatch(w, std::move(job));
      }

      // 4. Poll.
      std::vector<struct pollfd> fds;
      fds.reserve(workers.size() + 1);
      if (wake_fds[0] >= 0)
        fds.push_back({wake_fds[0], POLLIN, 0});
      std::vector<std::size_t> fd_worker;
      fd_worker.reserve(workers.size());
      for (std::size_t i = 0; i < workers.size(); ++i) {
        if (!workers[i].alive) continue;
        fds.push_back({workers[i].result_fd, POLLIN, 0});
        fd_worker.push_back(i);
      }
      const int timeout_ms = compute_timeout_ms();
      const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
      if (rc < 0 && errno != EINTR) {
        // poll() itself failing is unrecoverable; avoid a hot spin.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }

      std::size_t fd_index = 0;
      if (wake_fds[0] >= 0) {
        if ((fds[0].revents & POLLIN) != 0) {
          while (::read(wake_fds[0], buf, sizeof(buf)) > 0) {
          }
        }
        fd_index = 1;
      }

      // 5. Worker pipe events.
      for (std::size_t k = 0; k < fd_worker.size(); ++k) {
        Worker& w = workers[fd_worker[k]];
        const short revents = fds[fd_index + k].revents;
        if (revents == 0) continue;
        bool died = false;
        if ((revents & POLLIN) != 0) {
          const ssize_t n = ::read(w.result_fd, buf, sizeof(buf));
          if (n == 0) {
            died = true;
          } else if (n < 0) {
            if (errno != EINTR && errno != EAGAIN) died = true;
          } else {
            w.reader.feed(buf, static_cast<std::size_t>(n));
            FrameReader::Frame frame;
            std::string error;
            FrameReader::Next next;
            while ((next = w.reader.next(&frame, &error)) ==
                   FrameReader::Next::kFrame) {
              handle_frame(w, frame);
              if (!w.alive) break;
            }
            if (next == FrameReader::Next::kCorrupt && w.alive) {
              // Torn or garbled frame: the worker is not trustworthy.
              // Kill it; the EOF path attributes the in-flight job.
              std::fprintf(stderr,
                           "defender-supervisor: worker %ld stream corrupt "
                           "(%s); killing\n",
                           static_cast<long>(w.pid), error.c_str());
              kill_worker(w);
            }
          }
        }
        if (!died && (revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
          // Drain any final buffered frames before declaring death.
          for (;;) {
            const ssize_t n = ::read(w.result_fd, buf, sizeof(buf));
            if (n <= 0) break;
            w.reader.feed(buf, static_cast<std::size_t>(n));
            FrameReader::Frame frame;
            std::string error;
            while (w.reader.next(&frame, &error) ==
                   FrameReader::Next::kFrame) {
              handle_frame(w, frame);
            }
          }
          died = true;
        }
        if (died && w.alive) worker_died(w);
      }

      // 6. Deadlines.
      const Clock::time_point now = Clock::now();
      const Clock::duration hb_timeout =
          seconds_to_duration(config.heartbeat_timeout_seconds);
      for (Worker& w : workers) {
        if (!w.alive) {
          if (w.restart_pending && now >= w.restart_at) {
            if (!spawn(w)) {
              w.restart_at =
                  now + seconds_to_duration(w.backoff_ms / 1000.0);
              w.backoff_ms =
                  std::min(w.backoff_ms * 2, config.restart_backoff_cap_ms);
            }
          }
          continue;
        }
        if (now - w.last_heartbeat > hb_timeout) {
          if (!w.term_sent) {
            hb_misses.fetch_add(1, std::memory_order_relaxed);
            if (config.metrics != nullptr)
              config.metrics->counter("supervise.heartbeat_misses").add(1);
            (void)::kill(w.pid, SIGTERM);
            w.term_sent = true;
            w.term_deadline =
                now + seconds_to_duration(config.term_grace_seconds);
          } else if (now >= w.term_deadline) {
            (void)::kill(w.pid, SIGKILL);
            // Death lands as EOF on the result pipe next iteration.
            w.term_deadline = now + seconds_to_duration(1.0);
          }
        }
        if (w.current != nullptr) {
          PendingPtr& job = w.current;
          if (job->has_watchdog && !job->watchdog_sent &&
              now >= job->watchdog_deadline) {
            job->watchdog_sent = true;
            send_cancel(w, job, CancelReason::kWatchdog);
          }
          if (job->external_cancel != nullptr && !job->external_sent &&
              job->external_cancel->cancelled()) {
            job->external_sent = true;
            send_cancel(w, job, CancelReason::kExternal);
          }
        }
      }
    }

    shutdown_workers();
  }

  int compute_timeout_ms() {
    const Clock::time_point now = Clock::now();
    Clock::time_point wake = now + std::chrono::milliseconds(250);
    bool want_token_poll = false;
    for (const Worker& w : workers) {
      if (!w.alive) {
        if (w.restart_pending && w.restart_at < wake) wake = w.restart_at;
        continue;
      }
      const Clock::time_point hb_deadline =
          w.last_heartbeat +
          seconds_to_duration(config.heartbeat_timeout_seconds);
      if (!w.term_sent && hb_deadline < wake) wake = hb_deadline;
      if (w.term_sent && w.term_deadline < wake) wake = w.term_deadline;
      if (w.current != nullptr) {
        const PendingPtr& job = w.current;
        if (job->has_watchdog && !job->watchdog_sent &&
            job->watchdog_deadline < wake)
          wake = job->watchdog_deadline;
        if (job->external_cancel != nullptr && !job->external_sent)
          want_token_poll = true;
      }
    }
    for (const PendingPtr& job : ready)
      if (job->external_cancel != nullptr) want_token_poll = true;
    if (want_token_poll) {
      const Clock::time_point token_poll =
          now + std::chrono::milliseconds(20);
      if (token_poll < wake) wake = token_poll;
    }
    if (wake <= now) return 0;
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
            .count();
    return static_cast<int>(std::min<long long>(ms + 1, 250));
  }

  void shutdown_workers() {
    // EOF on the job pipe is the clean-shutdown signal.
    for (Worker& w : workers) {
      if (!w.alive) continue;
      if (w.job_fd >= 0) {
        ::close(w.job_fd);
        w.job_fd = -1;
      }
    }
    const Clock::time_point deadline =
        Clock::now() + seconds_to_duration(
                           std::max(1.0, config.term_grace_seconds));
    for (Worker& w : workers) {
      if (!w.alive) continue;
      for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid || (r < 0 && errno == ECHILD)) break;
        if (Clock::now() >= deadline) {
          (void)::kill(w.pid, SIGKILL);
          (void)::waitpid(w.pid, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      close_worker_fds(w);
      w.alive = false;
    }
    set_workers_alive_gauge();
    record_pids();
  }
};

WorkerPool::WorkerPool(PoolConfig config) : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.heartbeat_interval_seconds <= 0)
    config_.heartbeat_interval_seconds = 0.05;
  if (config_.heartbeat_timeout_seconds <
      config_.heartbeat_interval_seconds * 2)
    config_.heartbeat_timeout_seconds =
        config_.heartbeat_interval_seconds * 2;
  if (config_.max_job_crashes == 0) config_.max_job_crashes = 1;
  impl_ = std::make_unique<Impl>(config_);
}

WorkerPool::~WorkerPool() = default;

SupervisedReport WorkerPool::run(const std::vector<engine::SolveJob>& jobs) {
  const std::size_t restarts0 = impl_->restarts.load();
  const std::size_t quarantined0 = impl_->quarantined.load();
  const std::size_t misses0 = impl_->hb_misses.load();
  const std::size_t streamed0 = impl_->streamed.load();
  const std::size_t resumed0 = impl_->resumed.load();
  const Clock::time_point start = Clock::now();

  std::vector<PendingPtr> pendings;
  pendings.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto p = std::make_shared<Pending>();
    p->job = &jobs[i];
    p->job_index = i;
    pendings.push_back(p);
    impl_->submit(std::move(p));
  }
  for (const PendingPtr& p : pendings) impl_->await(p);

  SupervisedReport report;
  report.batch.results.reserve(jobs.size());
  for (const PendingPtr& p : pendings)
    report.batch.results.push_back(std::move(p->result));
  for (const engine::JobResult& r : report.batch.results) {
    if (r.ok())
      ++report.batch.completed;
    else
      ++report.batch.degraded;
    if (!r.attempts.empty()) report.batch.retries += r.attempts.size() - 1;
    if (r.faults_injected > 0) ++report.batch.faulted_jobs;
    if (r.watchdog_killed) ++report.batch.deadline_kills;
  }
  report.batch.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.worker_restarts = impl_->restarts.load() - restarts0;
  report.quarantined_jobs = impl_->quarantined.load() - quarantined0;
  report.heartbeat_misses = impl_->hb_misses.load() - misses0;
  report.checkpoints_streamed = impl_->streamed.load() - streamed0;
  report.resumed_dispatches = impl_->resumed.load() - resumed0;
  return report;
}

engine::JobResult WorkerPool::run_one(const engine::SolveJob& job,
                                      std::size_t job_index,
                                      const engine::JobRunHooks& hooks) {
  auto p = std::make_shared<Pending>();
  p->job = &job;
  p->job_index = job_index;
  p->external_cancel = hooks.cancel;
  if (hooks.resume != nullptr) p->resume_text = core::to_text(*hooks.resume);
  impl_->submit(p);
  impl_->await(p);
  if (hooks.capture != nullptr && hooks.captured != nullptr &&
      !p->result_checkpoint_text.empty()) {
    Solved<core::SolverCheckpoint> parsed =
        core::try_parse_checkpoint(p->result_checkpoint_text);
    if (parsed.ok()) {
      *hooks.capture = std::move(parsed.result);
      *hooks.captured = true;
    }
  }
  return std::move(p->result);
}

std::vector<pid_t> WorkerPool::worker_pids() const {
  std::lock_guard<std::mutex> lock(impl_->pids_mu);
  return impl_->pids;
}

std::size_t WorkerPool::worker_restarts() const {
  return impl_->restarts.load();
}
std::size_t WorkerPool::quarantined_jobs() const {
  return impl_->quarantined.load();
}
std::size_t WorkerPool::heartbeat_misses() const {
  return impl_->hb_misses.load();
}
std::size_t WorkerPool::checkpoints_streamed() const {
  return impl_->streamed.load();
}

}  // namespace defender::supervise
