#include "supervise/worker.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "engine/engine.hpp"
#include "fault/fault.hpp"
#include "supervise/wire.hpp"

namespace defender::supervise {

namespace {

using Clock = std::chrono::steady_clock;

/// State shared between the worker's main (solve) thread and its aux
/// (heartbeat / control / stream-tick) thread.
struct WorkerState {
  int result_fd = -1;
  double heartbeat_interval = 0.05;

  /// Serializes result-pipe writes (results from the main thread,
  /// heartbeats and streamed checkpoints from either).
  std::mutex write_mu;

  std::mutex mu;
  /// Active solve segment, registered by the main thread. The aux thread
  /// fires this token on a supervisor cancel or a stream tick.
  CancelToken* active = nullptr;
  std::size_t job_index = 0;
  std::uint64_t dispatch = 0;
  bool stream_enabled = false;
  Clock::time_point next_tick{};
  double stream_interval = 0;
  /// Set when the cancel came from the supervisor (terminal), as opposed
  /// to a local stream tick (capture-and-resume).
  bool supervisor_cancel = false;
  /// A cancel frame that arrived between segments; applied at the next
  /// matching registration.
  bool pending_cancel = false;
  std::size_t pending_job = 0;
  std::uint64_t pending_dispatch = 0;
  /// worker-hang fault: stop heartbeating.
  bool hang = false;
  std::uint64_t hb_seq = 0;
};

bool send_payload(WorkerState& st, const char* format,
                  const std::string& payload) {
  std::lock_guard<std::mutex> lock(st.write_mu);
  return write_frame(st.result_fd, format, payload);
}

/// Aux thread: heartbeats, control-pipe cancels, stream ticks. Exits the
/// whole process when the supervisor disappears (control pipe EOF) — an
/// orphaned worker must not outlive its pool.
void aux_thread_main(WorkerState* st, int control_fd) {
  FrameReader reader;
  char buf[4096];
  const auto hb_interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(st->heartbeat_interval));
  Clock::time_point next_heartbeat = Clock::now();
  for (;;) {
    Clock::time_point now = Clock::now();
    Clock::time_point wake = next_heartbeat;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      if (st->active != nullptr && st->stream_enabled &&
          st->next_tick < wake)
        wake = st->next_tick;
    }
    int timeout_ms = 0;
    if (wake > now)
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
              .count() +
          1);
    struct pollfd pfd {};
    pfd.fd = control_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      if ((pfd.revents & POLLIN) != 0) {
        const ssize_t n = ::read(control_fd, buf, sizeof(buf));
        if (n == 0) std::_Exit(0);  // supervisor closed the control pipe
        if (n < 0) {
          if (errno != EINTR && errno != EAGAIN) std::_Exit(0);
        } else {
          reader.feed(buf, static_cast<std::size_t>(n));
        }
        FrameReader::Frame frame;
        std::string error;
        FrameReader::Next next;
        while ((next = reader.next(&frame, &error)) ==
               FrameReader::Next::kFrame) {
          if (frame.format != kCancelFormat) continue;
          Solved<CancelFrame> cancel = try_parse_cancel_frame(frame.payload);
          if (!cancel.ok()) continue;
          std::lock_guard<std::mutex> lock(st->mu);
          if (st->active != nullptr &&
              cancel.result.job_index == st->job_index &&
              cancel.result.dispatch == st->dispatch) {
            st->supervisor_cancel = true;
            st->active->request_cancel();
          } else {
            st->pending_cancel = true;
            st->pending_job = cancel.result.job_index;
            st->pending_dispatch = cancel.result.dispatch;
          }
        }
        if (next == FrameReader::Next::kCorrupt) {
          std::fprintf(stderr, "defender-worker: control stream corrupt: %s\n",
                       error.c_str());
          std::_Exit(2);
        }
      }
      if ((pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) std::_Exit(0);
    }
    now = Clock::now();
    if (now >= next_heartbeat) {
      bool hang;
      std::uint64_t seq;
      {
        std::lock_guard<std::mutex> lock(st->mu);
        hang = st->hang;
        seq = st->hb_seq++;
      }
      if (!hang) {
        HeartbeatFrame hb;
        hb.sequence = seq;
        if (!send_payload(*st, kHeartbeatFormat, to_text(hb))) std::_Exit(0);
      }
      next_heartbeat = now + hb_interval;
    }
    {
      std::lock_guard<std::mutex> lock(st->mu);
      if (st->active != nullptr && st->stream_enabled &&
          now >= st->next_tick) {
        st->active->request_cancel();
        st->next_tick =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(st->stream_interval));
      }
    }
  }
}

void register_segment(WorkerState& st, const JobFrame& frame,
                      CancelToken* token, bool streaming) {
  std::lock_guard<std::mutex> lock(st.mu);
  st.job_index = frame.job_index;
  st.dispatch = frame.dispatch;
  st.stream_enabled = streaming;
  st.stream_interval = frame.stream_interval_seconds;
  st.next_tick = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(
                         frame.stream_interval_seconds));
  st.active = token;
  if (st.pending_cancel && st.pending_job == frame.job_index &&
      st.pending_dispatch == frame.dispatch) {
    st.pending_cancel = false;
    st.supervisor_cancel = true;
    token->request_cancel();
  }
}

/// Returns whether the supervisor (as opposed to a stream tick) cancelled
/// the segment.
bool unregister_segment(WorkerState& st) {
  std::lock_guard<std::mutex> lock(st.mu);
  st.active = nullptr;
  return st.supervisor_cancel;
}

double weight_upper_bound(const std::vector<double>& weights) {
  double ub = 1.0;
  for (double w : weights)
    if (w > ub) ub = w;
  return ub;
}

void run_job(WorkerState& st, const JobFrame& frame) {
  // The worker-crash / worker-hang sites fire BEFORE the solve, decided
  // purely from (plan, dispatch counter) — deterministic, and invisible
  // to the job's own FaultContext.
  if (!frame.fault_plan_text.empty()) {
    Solved<fault::FaultPlan> plan =
        fault::FaultPlan::try_parse(frame.fault_plan_text);
    if (plan.ok()) {
      if (fault::FaultContext::scheduled(
              plan.result, fault::FaultSite::kWorkerCrash, frame.dispatch)) {
        // SIGKILL (not SIGSEGV) so sanitizer builds die the same hard,
        // handler-less death a real segfault produces in production.
        ::raise(SIGKILL);
      }
      if (fault::FaultContext::scheduled(
              plan.result, fault::FaultSite::kWorkerHang, frame.dispatch)) {
        {
          std::lock_guard<std::mutex> lock(st.mu);
          st.hang = true;
        }
        std::signal(SIGTERM, SIG_IGN);
        for (;;) ::pause();  // only SIGKILL ends this
      }
    }
  }

  ResultFrame out;
  out.job_index = frame.job_index;
  out.dispatch = frame.dispatch;

  std::optional<engine::SolveJob> job;
  const Status job_status = job_from_frame(frame, &job);
  if (!job_status.ok() || !job.has_value()) {
    out.result.job_index = frame.job_index;
    out.result.solver = frame.solver;
    out.result.status = job_status;
    out.result.lower_bound = 0;
    out.result.upper_bound = weight_upper_bound(frame.weights);
    out.result.value = 0;
    send_payload(st, kResultFormat, to_text(out));
    return;
  }

  // Observability-null, cache-less engine: all shared sinks live in the
  // supervisor process. Retry / convergence / canonicalize flags travel
  // in the frame because they shape the result.
  engine::EngineConfig config;
  config.workers = 1;
  config.retry = frame.retry;
  config.collect_convergence = frame.collect_convergence;
  config.canonicalize = frame.canonicalize;
  engine::SolveEngine eng(config);

  std::optional<core::SolverCheckpoint> resume;
  if (!frame.checkpoint_text.empty()) {
    Solved<core::SolverCheckpoint> parsed =
        core::try_parse_checkpoint(frame.checkpoint_text);
    // An unparseable resume checkpoint downgrades to a cold start — the
    // determinism contract makes the fresh run bit-identical anyway.
    if (parsed.ok()) resume = std::move(parsed.result);
  }

  // Checkpoint streaming runs the solve in tick-cancelled segments,
  // leaning on the PR-6 resume contract (resumed result bit-identical to
  // uninterrupted). The LP has no checkpoint, and armed plans can never
  // capture truthfully, so neither streams.
  bool streaming = frame.stream_interval_seconds > 0 &&
                   frame.solver != engine::JobSolver::kZeroSumLp &&
                   !job->fault_plan.armed();

  engine::JobResult result;
  std::string captured_text;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.supervisor_cancel = false;
  }
  for (;;) {
    CancelToken token;
    core::SolverCheckpoint cap;
    bool captured = false;
    engine::JobRunHooks hooks;
    hooks.cancel = &token;
    hooks.resume = resume.has_value() ? &*resume : nullptr;
    hooks.capture = &cap;
    hooks.captured = &captured;
    register_segment(st, frame, &token, streaming);
    result = eng.run_one(*job, frame.job_index, hooks);
    const bool terminal_cancel = unregister_segment(st);
    if (terminal_cancel) {
      // Supervisor-requested (watchdog / external / shutdown): the
      // kCancelled result is the job's truthful outcome. A cleanly
      // captured checkpoint rides back for the serve layer's drain.
      if (captured) captured_text = core::to_text(cap);
      break;
    }
    if (result.status.code == StatusCode::kCancelled) {
      if (captured) {
        // Our own stream tick: persist the checkpoint with the
        // supervisor, then resume in place.
        captured_text = core::to_text(cap);
        CheckpointFrame ckpt;
        ckpt.job_index = frame.job_index;
        ckpt.dispatch = frame.dispatch;
        ckpt.checkpoint_text = captured_text;
        if (!send_payload(st, kCheckpointFormat, to_text(ckpt)))
          std::_Exit(0);
        captured_text.clear();
        resume = std::move(cap);
        continue;
      }
      // Tick landed where capture is impossible (mid-ladder). Disable
      // streaming and re-run fresh — determinism makes the re-run
      // bit-identical to an uninterrupted solve.
      streaming = false;
      resume.reset();
      continue;
    }
    break;
  }
  out.result = std::move(result);
  out.checkpoint_text = std::move(captured_text);
  send_payload(st, kResultFormat, to_text(out));
}

}  // namespace

void worker_main(int job_fd, int result_fd, int control_fd,
                 double heartbeat_interval_seconds) {
  // Pipe-backed fds have no MSG_NOSIGNAL: a dead supervisor must surface
  // as EPIPE on write, not SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  WorkerState st;
  st.result_fd = result_fd;
  st.heartbeat_interval =
      heartbeat_interval_seconds > 0 ? heartbeat_interval_seconds : 0.05;

  HelloFrame hello;
  hello.pid = static_cast<std::int64_t>(::getpid());
  if (!send_payload(st, kHelloFormat, to_text(hello))) std::_Exit(0);

  std::thread aux(aux_thread_main, &st, control_fd);
  aux.detach();  // the process exits via _Exit; nothing to join

  FrameReader reader;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(job_fd, buf, sizeof(buf));
    if (n == 0) std::_Exit(0);  // supervisor closed the job pipe: shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      std::_Exit(0);
    }
    reader.feed(buf, static_cast<std::size_t>(n));
    FrameReader::Frame frame;
    std::string error;
    FrameReader::Next next;
    while ((next = reader.next(&frame, &error)) ==
           FrameReader::Next::kFrame) {
      if (frame.format != kJobFormat) {
        std::fprintf(stderr, "defender-worker: unexpected frame '%s'\n",
                     frame.format.c_str());
        std::_Exit(2);
      }
      Solved<JobFrame> parsed = try_parse_job_frame(frame.payload);
      if (!parsed.ok()) {
        std::fprintf(stderr, "defender-worker: bad job frame: %s\n",
                     parsed.status.message.c_str());
        std::_Exit(2);
      }
      run_job(st, parsed.result);
    }
    if (next == FrameReader::Next::kCorrupt) {
      std::fprintf(stderr, "defender-worker: job stream corrupt: %s\n",
                   error.c_str());
      std::_Exit(2);
    }
  }
}

void worker_trampoline(int argc, char** argv) {
  if (argc < 6 || std::strcmp(argv[1], kWorkerSentinel) != 0) return;
  long fds[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    char* rest = nullptr;
    fds[i] = std::strtol(argv[2 + i], &rest, 10);
    if (errno != 0 || rest == argv[2 + i] || *rest != '\0' || fds[i] < 0)
      std::_Exit(127);
  }
  errno = 0;
  char* rest = nullptr;
  const long hb_ms = std::strtol(argv[5], &rest, 10);
  if (errno != 0 || rest == argv[5] || *rest != '\0' || hb_ms <= 0)
    std::_Exit(127);
  worker_main(static_cast<int>(fds[0]), static_cast<int>(fds[1]),
              static_cast<int>(fds[2]),
              static_cast<double>(hb_ms) / 1000.0);
}

}  // namespace defender::supervise
