#include "matching/blossom.hpp"

#include <queue>
#include <vector>

namespace defender::matching {

namespace {

/// One augmenting search of Edmonds' algorithm, shrinking blossoms on the
/// fly. The state arrays follow the classic presentation: `mate` is the
/// current matching, `parent` stores the alternating-forest parent of each
/// even vertex, and `base[v]` is the base vertex of the (possibly shrunk)
/// blossom containing v.
class BlossomSearch {
 public:
  explicit BlossomSearch(const Graph& g)
      : g_(g), n_(g.num_vertices()), mate_(n_, kUnmatched) {}

  Matching run() {
    // Greedy warm start halves the number of augmenting phases in practice.
    for (Vertex v = 0; v < n_; ++v) {
      if (mate_[v] != kUnmatched) continue;
      for (const graph::Incidence& inc : g_.neighbors(v)) {
        if (mate_[inc.to] == kUnmatched) {
          mate_[v] = inc.to;
          mate_[inc.to] = v;
          break;
        }
      }
    }
    for (Vertex v = 0; v < n_; ++v) {
      if (mate_[v] != kUnmatched) continue;
      const Vertex w = find_augmenting_path(v);
      if (w != kUnmatched) augment_along(w);
    }
    return from_mates(g_, mate_);
  }

 private:
  /// Flips matched/unmatched edges along the alternating path ending at the
  /// free even vertex `v` (walking parent pointers back to the root).
  void augment_along(Vertex v) {
    while (v != kUnmatched) {
      const Vertex pv = parent_[v];
      const Vertex ppv = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = ppv;
    }
  }

  /// Lowest common ancestor of a and b in the alternating forest, measured
  /// over blossom bases.
  Vertex lca(Vertex a, Vertex b) {
    std::vector<char> seen(n_, 0);
    // Walk a's root path, marking bases.
    Vertex v = a;
    while (true) {
      v = base_[v];
      seen[v] = 1;
      if (mate_[v] == kUnmatched) break;  // reached the root
      v = parent_[mate_[v]];
    }
    // Walk b's root path until a marked base appears.
    v = b;
    while (true) {
      v = base_[v];
      if (seen[v]) return v;
      v = parent_[mate_[v]];
    }
  }

  /// Marks the blossom path from v down to base `b`, re-rooting parents so
  /// every odd vertex in the blossom becomes even (enterable).
  void mark_path(Vertex v, Vertex b, Vertex child) {
    while (base_[v] != b) {
      blossom_[base_[v]] = 1;
      blossom_[base_[mate_[v]]] = 1;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  /// BFS from free vertex `root`; returns the free vertex at the far end of
  /// an augmenting path, or kUnmatched when none exists.
  Vertex find_augmenting_path(Vertex root) {
    used_.assign(n_, 0);
    parent_.assign(n_, kUnmatched);
    base_.resize(n_);
    for (Vertex v = 0; v < n_; ++v) base_[v] = v;

    used_[root] = 1;
    std::queue<Vertex> q;
    q.push(root);
    while (!q.empty()) {
      const Vertex v = q.front();
      q.pop();
      for (const graph::Incidence& inc : g_.neighbors(v)) {
        const Vertex to = inc.to;
        // Skip intra-blossom edges and matched tree edges.
        if (base_[v] == base_[to] || mate_[v] == to) continue;
        if (to == root || (mate_[to] != kUnmatched &&
                           parent_[mate_[to]] != kUnmatched)) {
          // Odd cycle detected: shrink the blossom around lca(v, to).
          const Vertex cur_base = lca(v, to);
          blossom_.assign(n_, 0);
          mark_path(v, cur_base, to);
          mark_path(to, cur_base, v);
          for (Vertex u = 0; u < n_; ++u) {
            if (blossom_[base_[u]]) {
              base_[u] = cur_base;
              if (!used_[u]) {
                used_[u] = 1;
                q.push(u);
              }
            }
          }
        } else if (parent_[to] == kUnmatched) {
          parent_[to] = v;
          if (mate_[to] == kUnmatched) return to;  // augmenting path found
          used_[mate_[to]] = 1;
          q.push(mate_[to]);
        }
      }
    }
    return kUnmatched;
  }

  const Graph& g_;
  std::size_t n_;
  std::vector<Vertex> mate_;
  std::vector<Vertex> parent_;
  std::vector<Vertex> base_;
  std::vector<char> used_;
  std::vector<char> blossom_;
};

}  // namespace

Matching max_matching(const Graph& g) { return BlossomSearch(g).run(); }

}  // namespace defender::matching
