// Edmonds' blossom algorithm: maximum matching in general graphs, O(V^3).
//
// Theorem 3.1 reduces pure-NE existence to "does G have an edge cover of
// size k", and Gallai's identity derives minimum edge covers from maximum
// matchings — on *arbitrary* graphs, so bipartite matching alone is not
// enough. This is a hand-rolled implementation of the classic
// blossom-shrinking search (one augmenting phase per free vertex, with
// blossom bases tracked through a `base` array and paths re-expanded via
// parent pointers).
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace defender::matching {

/// Maximum-cardinality matching of an arbitrary graph.
Matching max_matching(const Graph& g);

}  // namespace defender::matching
