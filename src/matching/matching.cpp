#include "matching/matching.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace defender::matching {

Matching::Matching(std::size_t num_vertices)
    : mate_(num_vertices, kUnmatched) {}

Matching::Matching(const Graph& g, std::vector<EdgeId> edges)
    : mate_(g.num_vertices(), kUnmatched) {
  for (EdgeId id : edges) add(g, id);
  // `add` already appended each edge to edges_, so discard the argument copy
  // after validation; edges_ now equals the input (order preserved).
  (void)edges;
}

Vertex Matching::mate(Vertex v) const {
  DEF_REQUIRE(v < mate_.size(), "vertex out of range");
  return mate_[v];
}

void Matching::add(const Graph& g, EdgeId id) {
  const graph::Edge& e = g.edge(id);
  DEF_REQUIRE(mate_[e.u] == kUnmatched && mate_[e.v] == kUnmatched,
              "matching edges must be pairwise vertex-disjoint");
  mate_[e.u] = e.v;
  mate_[e.v] = e.u;
  edges_.push_back(id);
}

std::vector<Vertex> Matching::matched_vertices() const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < mate_.size(); ++v)
    if (mate_[v] != kUnmatched) out.push_back(v);
  return out;
}

bool is_valid_matching(const Graph& g, std::span<const EdgeId> edges) {
  std::vector<char> used(g.num_vertices(), 0);
  for (EdgeId id : edges) {
    if (id >= g.num_edges()) return false;
    const graph::Edge& e = g.edge(id);
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = 1;
    used[e.v] = 1;
  }
  return true;
}

Matching from_mates(const Graph& g, std::span<const Vertex> mates) {
  DEF_REQUIRE(mates.size() == g.num_vertices(),
              "mate array size must equal the vertex count");
  Matching m(g.num_vertices());
  for (Vertex v = 0; v < mates.size(); ++v) {
    const Vertex w = mates[v];
    if (w == kUnmatched || w < v) continue;
    DEF_REQUIRE(w < mates.size() && mates[w] == v,
                "mate array must be symmetric");
    auto id = g.edge_id(v, w);
    DEF_REQUIRE(id.has_value(), "mate pair is not an edge of the graph");
    m.add(g, *id);
  }
  return m;
}

}  // namespace defender::matching
