#include "matching/konig.hpp"

#include <queue>

#include "matching/hopcroft_karp.hpp"
#include "util/assert.hpp"

namespace defender::matching {

KonigResult konig_vertex_cover(const Graph& g) {
  auto coloring = graph::bipartition(g);
  DEF_REQUIRE(coloring.has_value(),
              "konig_vertex_cover requires a bipartite graph");
  const auto& side = *coloring;

  Matching m = max_bipartite_matching(g);

  // Z := vertices reachable from free left vertices along alternating paths
  // (left -> right over unmatched edges, right -> left over matched edges).
  const std::size_t n = g.num_vertices();
  std::vector<char> in_z(n, 0);
  std::queue<Vertex> q;
  for (Vertex v = 0; v < n; ++v) {
    if (side[v] == 0 && !m.is_matched(v)) {
      in_z[v] = 1;
      q.push(v);
    }
  }
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    if (side[v] == 0) {
      for (const graph::Incidence& inc : g.neighbors(v)) {
        if (m.mate(v) == inc.to) continue;  // only unmatched edges leave L
        if (!in_z[inc.to]) {
          in_z[inc.to] = 1;
          q.push(inc.to);
        }
      }
    } else {
      const Vertex w = m.mate(v);  // only the matched edge leaves R
      if (w != kUnmatched && !in_z[w]) {
        in_z[w] = 1;
        q.push(w);
      }
    }
  }

  KonigResult result{std::move(m), {}, {}};
  for (Vertex v = 0; v < n; ++v) {
    const bool in_cover = (side[v] == 0) ? !in_z[v] : in_z[v];
    if (in_cover)
      result.vertex_cover.push_back(v);
    else
      result.independent_set.push_back(v);
  }
  DEF_ENSURE(result.vertex_cover.size() == result.matching.size(),
             "König: |min vertex cover| must equal |max matching|");
  return result;
}

}  // namespace defender::matching
