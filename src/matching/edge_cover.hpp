// Minimum edge cover via Gallai's identity.
//
// Theorem 3.1: Π_k(G) has a pure NE iff G has an edge cover of size k, and
// Corollary 3.2 computes one in polynomial time. Gallai's identity gives
// |minimum edge cover| = n − |maximum matching| for graphs without isolated
// vertices, with an explicit construction: take a maximum matching and
// attach every unmatched vertex through one arbitrary incident edge.
#pragma once

#include <functional>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "matching/matching.hpp"

namespace defender::matching {

/// A minimum edge cover of `g` (edge ids, sorted ascending). Requires `g`
/// to have no isolated vertices. Runs blossom matching, O(V^3).
graph::EdgeSet min_edge_cover(const Graph& g);

/// As min_edge_cover, but built on a caller-supplied maximum matching
/// (useful to reuse a bipartite matching or to ablate matching quality: a
/// non-maximum matching yields a larger cover).
graph::EdgeSet edge_cover_from_matching(const Graph& g, const Matching& m);

/// Size of a minimum edge cover: n − |maximum matching| (Gallai).
std::size_t min_edge_cover_size(const Graph& g);

}  // namespace defender::matching
