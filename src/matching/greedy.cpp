#include "matching/greedy.hpp"

namespace defender::matching {

Matching greedy_matching(const Graph& g) {
  Matching m(g.num_vertices());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const graph::Edge& e = g.edge(id);
    if (!m.is_matched(e.u) && !m.is_matched(e.v)) m.add(g, id);
  }
  return m;
}

}  // namespace defender::matching
