// Matchings: the combinatorial backbone of the paper's equilibria.
//
// Matching NE (Lemma 2.1) and k-matching NE (Definition 4.1) are built from
// matchings, and the pure-NE characterization (Theorem 3.1) reduces to
// minimum edge covers, which Gallai's identity derives from maximum
// matchings. A Matching is stored both as an edge-id set and as a mate array
// for O(1) partner lookups.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace defender::matching {

using graph::EdgeId;
using graph::Graph;
using graph::Vertex;

/// Sentinel for "vertex is unmatched" in mate arrays.
inline constexpr Vertex kUnmatched = static_cast<Vertex>(-1);

/// A matching of a graph: pairwise vertex-disjoint edges.
class Matching {
 public:
  /// The empty matching of a graph with `num_vertices` vertices.
  explicit Matching(std::size_t num_vertices);

  /// Builds a matching from edge ids; validates pairwise disjointness.
  Matching(const Graph& g, std::vector<EdgeId> edges);

  /// Number of matched edges.
  std::size_t size() const { return edges_.size(); }

  /// The matched edges (unsorted).
  std::span<const EdgeId> edges() const { return edges_; }

  /// The partner of `v`, or kUnmatched.
  Vertex mate(Vertex v) const;

  /// True when `v` is an endpoint of a matched edge.
  bool is_matched(Vertex v) const { return mate(v) != kUnmatched; }

  /// Adds edge `id` of `g`; both endpoints must currently be unmatched.
  void add(const Graph& g, EdgeId id);

  /// Vertices matched by the matching, sorted ascending.
  std::vector<Vertex> matched_vertices() const;

 private:
  std::vector<EdgeId> edges_;
  std::vector<Vertex> mate_;
};

/// True when `edges` (ids into `g`) are pairwise vertex-disjoint.
bool is_valid_matching(const Graph& g, std::span<const EdgeId> edges);

/// Builds a Matching from a mate array (mate[v] = partner or kUnmatched).
/// Validates symmetry and adjacency against `g`.
Matching from_mates(const Graph& g, std::span<const Vertex> mates);

}  // namespace defender::matching
