#include "matching/edge_cover.hpp"

#include <algorithm>

#include "matching/blossom.hpp"
#include "util/assert.hpp"

namespace defender::matching {

graph::EdgeSet edge_cover_from_matching(const Graph& g, const Matching& m) {
  DEF_REQUIRE(!g.has_isolated_vertex(),
              "an edge cover exists only when no vertex is isolated");
  graph::EdgeSet cover(m.edges().begin(), m.edges().end());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (m.is_matched(v)) continue;
    // Attach the unmatched vertex through its first incident edge.
    cover.push_back(g.neighbors(v).front().edge);
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

graph::EdgeSet min_edge_cover(const Graph& g) {
  return edge_cover_from_matching(g, max_matching(g));
}

std::size_t min_edge_cover_size(const Graph& g) {
  DEF_REQUIRE(!g.has_isolated_vertex(),
              "an edge cover exists only when no vertex is isolated");
  return g.num_vertices() - max_matching(g).size();
}

}  // namespace defender::matching
