// König's theorem: minimum vertex cover of a bipartite graph.
//
// Theorem 5.1 computes k-matching NE on bipartite graphs from a minimum
// vertex cover VC and the independent set IS = V \ VC. König's construction
// derives VC from a maximum matching: starting from the free left vertices,
// alternate unmatched/matched edges; the cover is (L \ Z) ∪ (R ∩ Z) where Z
// is the set of reached vertices.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "matching/matching.hpp"

namespace defender::matching {

/// Result of König's construction on a bipartite graph.
struct KonigResult {
  /// A maximum matching (|matching| == |vertex_cover| by König's theorem).
  Matching matching;
  /// A minimum vertex cover, sorted ascending.
  graph::VertexSet vertex_cover;
  /// The complementary maximum independent set, sorted ascending.
  graph::VertexSet independent_set;
};

/// Runs König's construction; throws ContractViolation when `g` is not
/// bipartite. O(E * sqrt(V)) (dominated by Hopcroft–Karp).
KonigResult konig_vertex_cover(const Graph& g);

}  // namespace defender::matching
