#include "matching/brute_force.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace defender::matching::brute_force {

namespace {

/// Recursive maximum matching: branch on edges in id order, skipping edges
/// with a used endpoint.
std::size_t mm_rec(const Graph& g, EdgeId next, std::vector<char>& used) {
  for (EdgeId id = next; id < g.num_edges(); ++id) {
    const graph::Edge& e = g.edge(id);
    if (used[e.u] || used[e.v]) continue;
    // Branch: take `id` or skip it.
    used[e.u] = used[e.v] = 1;
    const std::size_t take = 1 + mm_rec(g, id + 1, used);
    used[e.u] = used[e.v] = 0;
    const std::size_t skip = mm_rec(g, id + 1, used);
    return std::max(take, skip);
  }
  return 0;
}

/// Vertex-cover branching: pick any uncovered edge, one endpoint must join.
std::size_t vc_rec(const Graph& g, std::uint32_t in_cover,
                   std::size_t chosen, std::size_t best) {
  if (chosen >= best) return best;
  for (const graph::Edge& e : g.edges()) {
    if ((in_cover >> e.u) & 1U) continue;
    if ((in_cover >> e.v) & 1U) continue;
    best = vc_rec(g, in_cover | (1U << e.u), chosen + 1, best);
    best = vc_rec(g, in_cover | (1U << e.v), chosen + 1, best);
    return best;
  }
  return std::min(best, chosen);
}

}  // namespace

std::size_t max_matching_size(const Graph& g) {
  std::vector<char> used(g.num_vertices(), 0);
  return mm_rec(g, 0, used);
}

std::size_t min_vertex_cover_size(const Graph& g) {
  DEF_REQUIRE(g.num_vertices() <= 32, "brute force limited to n <= 32");
  return vc_rec(g, 0, 0, g.num_vertices());
}

std::size_t max_independent_set_size(const Graph& g) {
  // Complement duality: |max IS| = n - |min VC|.
  return g.num_vertices() - min_vertex_cover_size(g);
}

std::size_t min_edge_cover_size(const Graph& g) {
  DEF_REQUIRE(g.num_edges() <= 24, "brute force limited to m <= 24");
  DEF_REQUIRE(!g.has_isolated_vertex(),
              "an edge cover exists only when no vertex is isolated");
  const std::size_t m = g.num_edges();
  std::size_t best = m;
  for (std::uint32_t mask = 1; mask < (1U << m); ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size >= best) continue;
    std::uint64_t covered = 0;
    for (std::size_t id = 0; id < m; ++id) {
      if (!((mask >> id) & 1U)) continue;
      const graph::Edge& e = g.edge(static_cast<EdgeId>(id));
      covered |= (std::uint64_t{1} << e.u) | (std::uint64_t{1} << e.v);
    }
    if (covered == (g.num_vertices() == 64
                        ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << g.num_vertices()) - 1))
      best = size;
  }
  return best;
}

std::vector<graph::VertexSet> all_max_independent_sets(const Graph& g) {
  DEF_REQUIRE(g.num_vertices() <= 20, "brute force limited to n <= 20");
  const std::size_t n = g.num_vertices();
  std::vector<graph::VertexSet> best;
  std::size_t best_size = 0;
  for (std::uint32_t mask = 1; mask < (1U << n); ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size < best_size) continue;
    graph::VertexSet set;
    for (std::size_t v = 0; v < n; ++v)
      if ((mask >> v) & 1U) set.push_back(static_cast<Vertex>(v));
    if (!graph::is_independent_set(g, set)) continue;
    if (size > best_size) {
      best_size = size;
      best.clear();
    }
    best.push_back(std::move(set));
  }
  return best;
}

}  // namespace defender::matching::brute_force
