// Greedy maximal matching: the baseline of the matching ablation (E10).
//
// A maximal matching is a 1/2-approximation of the maximum matching; the
// ablation bench shows where it falls short of Hopcroft–Karp / blossom and
// how that propagates into larger edge covers (Theorem 3.1's certificate).
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace defender::matching {

/// Maximal matching by scanning edges in id order and taking every edge
/// whose endpoints are both free. Deterministic; O(E).
Matching greedy_matching(const Graph& g);

}  // namespace defender::matching
