// Hopcroft–Karp maximum bipartite matching, O(E * sqrt(V)).
//
// This is the workhorse behind Theorem 5.1's bipartite pipeline (via König's
// theorem) and behind algorithm A's VC-saturating matching (DESIGN.md
// interpretation note 2). The entry points take explicit vertex sides so the
// algorithm can also run on the VC–IS *bipartite subgraph* of a general
// graph: edges with both endpoints on one side are simply ignored.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace defender::matching {

/// Maximum matching between the disjoint vertex sets `left` and `right`,
/// using only edges of `g` with one endpoint in each set.
/// Requires left/right disjoint; vertices outside both sets are ignored.
Matching hopcroft_karp(const Graph& g, std::span<const Vertex> left,
                       std::span<const Vertex> right);

/// Maximum matching of a bipartite graph; throws ContractViolation when `g`
/// is not bipartite.
Matching max_bipartite_matching(const Graph& g);

}  // namespace defender::matching
