#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>
#include <vector>

#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace defender::matching {

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

/// Internal state for one Hopcroft–Karp run over a left/right labelling.
/// side[v]: 0 = left, 1 = right, 2 = not participating.
class HopcroftKarp {
 public:
  HopcroftKarp(const Graph& g, std::span<const std::uint8_t> side)
      : g_(g),
        side_(side),
        mate_(g.num_vertices(), kUnmatched),
        dist_(g.num_vertices(), kInf) {}

  Matching run() {
    while (bfs()) {
      for (Vertex v = 0; v < g_.num_vertices(); ++v)
        if (side_[v] == 0 && mate_[v] == kUnmatched) dfs(v);
    }
    return from_mates(g_, mate_);
  }

 private:
  /// Layers left vertices by shortest alternating-path distance from the
  /// free left vertices; returns true when a free right vertex is reachable.
  bool bfs() {
    std::queue<Vertex> q;
    for (Vertex v = 0; v < g_.num_vertices(); ++v) {
      if (side_[v] != 0) continue;
      if (mate_[v] == kUnmatched) {
        dist_[v] = 0;
        q.push(v);
      } else {
        dist_[v] = kInf;
      }
    }
    bool reachable_free_right = false;
    while (!q.empty()) {
      const Vertex v = q.front();
      q.pop();
      for (const graph::Incidence& inc : g_.neighbors(v)) {
        if (side_[inc.to] != 1) continue;
        const Vertex w = mate_[inc.to];
        if (w == kUnmatched) {
          reachable_free_right = true;
        } else if (dist_[w] == kInf) {
          dist_[w] = dist_[v] + 1;
          q.push(w);
        }
      }
    }
    return reachable_free_right;
  }

  /// Augments along one shortest alternating path starting at left vertex v.
  bool dfs(Vertex v) {
    for (const graph::Incidence& inc : g_.neighbors(v)) {
      if (side_[inc.to] != 1) continue;
      const Vertex w = mate_[inc.to];
      if (w == kUnmatched || (dist_[w] == dist_[v] + 1 && dfs(w))) {
        mate_[v] = inc.to;
        mate_[inc.to] = v;
        return true;
      }
    }
    dist_[v] = kInf;  // dead end: prune v from this phase
    return false;
  }

  const Graph& g_;
  std::span<const std::uint8_t> side_;
  std::vector<Vertex> mate_;
  std::vector<std::size_t> dist_;
};

}  // namespace

Matching hopcroft_karp(const Graph& g, std::span<const Vertex> left,
                       std::span<const Vertex> right) {
  std::vector<std::uint8_t> side(g.num_vertices(), 2);
  for (Vertex v : left) {
    DEF_REQUIRE(v < g.num_vertices(), "left vertex out of range");
    side[v] = 0;
  }
  for (Vertex v : right) {
    DEF_REQUIRE(v < g.num_vertices(), "right vertex out of range");
    DEF_REQUIRE(side[v] != 0, "left and right sets must be disjoint");
    side[v] = 1;
  }
  return HopcroftKarp(g, side).run();
}

Matching max_bipartite_matching(const Graph& g) {
  auto coloring = graph::bipartition(g);
  DEF_REQUIRE(coloring.has_value(),
              "max_bipartite_matching requires a bipartite graph");
  return HopcroftKarp(g, *coloring).run();
}

}  // namespace defender::matching
