// Exponential-time exact oracles, used only as test-time ground truth.
//
// Every polynomial algorithm in this library (Hopcroft–Karp, blossom,
// König, Gallai, and the equilibrium constructions on top of them) is
// property-tested against these oracles on small random graphs.
#pragma once

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "matching/matching.hpp"

namespace defender::matching::brute_force {

/// Size of a maximum matching, by branching on the first uncovered edge.
/// Feasible for graphs with up to roughly 30 edges of branching depth.
std::size_t max_matching_size(const Graph& g);

/// Size of a minimum vertex cover, by branching edge-by-edge.
/// Requires g.num_vertices() <= 32.
std::size_t min_vertex_cover_size(const Graph& g);

/// Size of a maximum independent set. Requires g.num_vertices() <= 32.
std::size_t max_independent_set_size(const Graph& g);

/// Size of a minimum edge cover by subset enumeration over edges.
/// Requires g.num_edges() <= 24 and no isolated vertices.
std::size_t min_edge_cover_size(const Graph& g);

/// All maximum independent sets (as sorted vertex sets).
/// Requires g.num_vertices() <= 20.
std::vector<graph::VertexSet> all_max_independent_sets(const Graph& g);

}  // namespace defender::matching::brute_force
