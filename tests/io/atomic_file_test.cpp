// Atomic publish protocol and recovery walk, pinned stage by stage: the
// exact on-disk debris each simulated crash / injected io-* fault leaves,
// and how load_artifact / load_record_artifact repair it (adoption,
// quarantine, `.prev` fallback, prefix salvage) — docs/DURABILITY.md.
#include "io/atomic_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "io/durable.hpp"
#include "io/envelope.hpp"

namespace defender::io {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/defender-io-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    // Best-effort cleanup of the handful of fixed names tests use.
    for (const char* name :
         {"a.txt", "a.txt.tmp", "a.txt.prev", "a.txt.corrupt"}) {
      unlink((dir_ + "/" + name).c_str());
    }
    rmdir(dir_.c_str());
  }

  std::string path() const { return dir_ + "/a.txt"; }

  static AtomicWriteOptions fast() {
    AtomicWriteOptions o;
    o.fsync = false;  // durability-against-power-loss not under test here
    return o;
  }

  std::string dir_;
};

std::string must_read(const std::string& p) {
  const Solved<std::string> got = read_file(p);
  EXPECT_TRUE(got.ok()) << got.status.describe();
  return got.result;
}

// ---------------------------------------------------------------------------
// The happy path and the checked primitives

TEST_F(AtomicFileTest, FirstWriteCreatesOnlyTheFile) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  EXPECT_EQ(must_read(path()), "gen1\n");
  EXPECT_FALSE(file_exists(temp_path(path())));
  EXPECT_FALSE(file_exists(backup_path(path())));
}

TEST_F(AtomicFileTest, SecondWriteKeepsThePreviousGeneration) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  ASSERT_TRUE(atomic_write_file(path(), "gen2\n", fast()).ok());
  EXPECT_EQ(must_read(path()), "gen2\n");
  EXPECT_EQ(must_read(backup_path(path())), "gen1\n");
  EXPECT_FALSE(file_exists(temp_path(path())));
}

TEST_F(AtomicFileTest, KeepBackupOffLeavesNoPrev) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  AtomicWriteOptions o = fast();
  o.keep_backup = false;
  ASSERT_TRUE(atomic_write_file(path(), "gen2\n", o).ok());
  EXPECT_EQ(must_read(path()), "gen2\n");
  EXPECT_FALSE(file_exists(backup_path(path())));
}

TEST_F(AtomicFileTest, CheckedWriteAndReadRoundTrip) {
  std::string bytes = "line\n";
  bytes += '\0';
  bytes += "tail";
  ASSERT_TRUE(write_file_checked(path(), bytes).ok());
  EXPECT_EQ(must_read(path()), bytes);
}

TEST_F(AtomicFileTest, ReadOfMissingFileIsIoErrorNamingThePath) {
  const Solved<std::string> got = read_file(path());
  EXPECT_EQ(got.status.code, StatusCode::kIoError);
  EXPECT_NE(got.status.message.find(path()), std::string::npos)
      << got.status.message;
}

TEST_F(AtomicFileTest, WriteIntoMissingDirectoryFailsLoudly) {
  const Status s =
      atomic_write_file(dir_ + "/no-such-dir/a.txt", "x", fast());
  EXPECT_EQ(s.code, StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Simulated SIGKILL at each protocol stage: exact debris, old generation
// never damaged.

TEST_F(AtomicFileTest, CrashDuringTempWriteLeavesTornTempOnly) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  AtomicWriteOptions o = fast();
  o.crash_point = CrashPoint::kDuringTempWrite;
  o.crash_byte = 3;
  EXPECT_EQ(atomic_write_file(path(), "gen2!\n", o).code,
            StatusCode::kIoError);
  EXPECT_EQ(must_read(path()), "gen1\n");                // untouched
  EXPECT_EQ(must_read(temp_path(path())), "gen");        // torn prefix
  EXPECT_FALSE(file_exists(backup_path(path())));
}

TEST_F(AtomicFileTest, CrashAfterTempWriteLeavesCompleteUnpublishedTemp) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  AtomicWriteOptions o = fast();
  o.crash_point = CrashPoint::kAfterTempWrite;
  EXPECT_EQ(atomic_write_file(path(), "gen2\n", o).code,
            StatusCode::kIoError);
  EXPECT_EQ(must_read(path()), "gen1\n");
  EXPECT_EQ(must_read(temp_path(path())), "gen2\n");
}

TEST_F(AtomicFileTest, CrashAfterBackupRenameLeavesNoCurrentName) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  AtomicWriteOptions o = fast();
  o.crash_point = CrashPoint::kAfterBackupRename;
  EXPECT_EQ(atomic_write_file(path(), "gen2\n", o).code,
            StatusCode::kIoError);
  // The window where the destination name is briefly absent — both
  // generations still exist under sibling names.
  EXPECT_FALSE(file_exists(path()));
  EXPECT_EQ(must_read(backup_path(path())), "gen1\n");
  EXPECT_EQ(must_read(temp_path(path())), "gen2\n");
}

TEST_F(AtomicFileTest, CrashAfterFinalRenameIsDurableDespiteTheError) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  AtomicWriteOptions o = fast();
  o.crash_point = CrashPoint::kAfterFinalRename;
  EXPECT_EQ(atomic_write_file(path(), "gen2\n", o).code,
            StatusCode::kIoError);
  EXPECT_EQ(must_read(path()), "gen2\n");
  EXPECT_EQ(must_read(backup_path(path())), "gen1\n");
  EXPECT_FALSE(file_exists(temp_path(path())));
}

// ---------------------------------------------------------------------------
// Injected io-* faults: truthful kIoError (or deliberate silence for the
// bit flip), destination never damaged.

fault::FaultContext armed(fault::FaultSite site) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.rate_of(site) = 1.0;
  return fault::FaultContext(plan);
}

TEST_F(AtomicFileTest, ShortWriteFaultLeavesTornTempAndOldCurrent) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  fault::FaultContext ctx = armed(fault::FaultSite::kIoShortWrite);
  AtomicWriteOptions o = fast();
  o.fault = &ctx;
  const Status s = atomic_write_file(path(), "gen2gen2gen2\n", o);
  EXPECT_EQ(s.code, StatusCode::kIoError);
  EXPECT_NE(s.message.find("io-short-write"), std::string::npos)
      << s.message;
  EXPECT_EQ(must_read(path()), "gen1\n");
  ASSERT_TRUE(file_exists(temp_path(path())));
  EXPECT_LT(must_read(temp_path(path())).size(), 13u);
}

TEST_F(AtomicFileTest, EnospcFaultLeavesOldCurrent) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  fault::FaultContext ctx = armed(fault::FaultSite::kIoEnospc);
  AtomicWriteOptions o = fast();
  o.fault = &ctx;
  const Status s = atomic_write_file(path(), "gen2gen2gen2\n", o);
  EXPECT_EQ(s.code, StatusCode::kIoError);
  EXPECT_NE(s.message.find("io-enospc"), std::string::npos) << s.message;
  EXPECT_EQ(must_read(path()), "gen1\n");
}

TEST_F(AtomicFileTest, RenameFaultLeavesBothGenerationsUnderSiblingNames) {
  ASSERT_TRUE(atomic_write_file(path(), "gen1\n", fast()).ok());
  fault::FaultContext ctx = armed(fault::FaultSite::kIoRenameFail);
  AtomicWriteOptions o = fast();
  o.fault = &ctx;
  const Status s = atomic_write_file(path(), "gen2\n", o);
  EXPECT_EQ(s.code, StatusCode::kIoError);
  EXPECT_NE(s.message.find("io-rename-fail"), std::string::npos)
      << s.message;
  // The failure strikes the FINAL rename, after the backup rename already
  // moved the old generation aside: the current name is briefly absent but
  // both generations survive complete under sibling names (the recovery
  // loader adopts the temp).
  EXPECT_FALSE(file_exists(path()));
  EXPECT_EQ(must_read(backup_path(path())), "gen1\n");
  EXPECT_EQ(must_read(temp_path(path())), "gen2\n");
}

TEST_F(AtomicFileTest, BitFlipFaultIsSilentAndCorruptsExactlyOneBit) {
  fault::FaultContext ctx = armed(fault::FaultSite::kIoBitFlip);
  AtomicWriteOptions o = fast();
  o.fault = &ctx;
  const std::string image = "gen1gen1gen1\n";
  ASSERT_TRUE(atomic_write_file(path(), image, o).ok());  // reports success!
  const std::string on_disk = must_read(path());
  ASSERT_EQ(on_disk.size(), image.size());
  int differing_bits = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    unsigned diff = static_cast<unsigned char>(on_disk[i]) ^
                    static_cast<unsigned char>(image[i]);
    for (; diff != 0; diff &= diff - 1) ++differing_bits;
  }
  EXPECT_EQ(differing_bits, 1);
  EXPECT_EQ(ctx.injected(fault::FaultSite::kIoBitFlip), 1u);
}

// ---------------------------------------------------------------------------
// The recovery walk over envelope-sealed artifacts

constexpr std::string_view kFmt = "defender-checkpoint";

Status save(const std::string& p, const std::string& payload,
            const AtomicWriteOptions& o) {
  return save_artifact(p, kFmt, payload, o);
}

TEST_F(AtomicFileTest, CleanLoadReportsNoRecovery) {
  ASSERT_TRUE(save(path(), "gen1\n", fast()).ok());
  LoadReport report;
  const Solved<std::string> got = load_artifact(path(), kFmt, {}, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result, "gen1\n");
  EXPECT_EQ(report.source, LoadSource::kCurrent);
  EXPECT_TRUE(report.enveloped);
  EXPECT_FALSE(report.recovered);
}

TEST_F(AtomicFileTest, CompleteTempIsAdoptedAndRenamedIntoPlace) {
  // Debris of a crash between temp write and final rename, current never
  // published: the load adopts the temp, losing zero acknowledged work.
  ASSERT_TRUE(write_file_checked(temp_path(path()),
                                 wrap_artifact(kFmt, "gen2\n"))
                  .ok());
  LoadReport report;
  const Solved<std::string> got = load_artifact(path(), kFmt, {}, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result, "gen2\n");
  EXPECT_EQ(report.source, LoadSource::kAdoptedTemp);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(file_exists(path()));              // renamed into place
  EXPECT_FALSE(file_exists(temp_path(path())));  // gone from the old name
}

TEST_F(AtomicFileTest, TornCurrentIsQuarantinedAndPrevWins) {
  ASSERT_TRUE(save(path(), "gen1\n", fast()).ok());
  ASSERT_TRUE(save(path(), "gen2\n", fast()).ok());
  // Tear the current generation in place (simulating post-publish media
  // damage): gen2 is destroyed outright, so the surviving generation is
  // gen1 under `.prev`.
  const std::string torn = wrap_artifact(kFmt, "gen3\n").substr(0, 30);
  ASSERT_TRUE(write_file_checked(path(), torn).ok());
  LoadReport report;
  const Solved<std::string> got = load_artifact(path(), kFmt, {}, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result, "gen1\n");
  EXPECT_EQ(report.source, LoadSource::kBackup);
  EXPECT_TRUE(report.quarantined);
  EXPECT_EQ(must_read(quarantine_path(path())), torn);  // kept for forensics
  EXPECT_FALSE(report.note.empty());
}

TEST_F(AtomicFileTest, ValidatorRejectionForcesFallback) {
  ASSERT_TRUE(save(path(), "good payload\n", fast()).ok());
  ASSERT_TRUE(save(path(), "BAD payload\n", fast()).ok());
  LoadOptions opts;
  // A consumer probe parse that rejects the newer generation even though
  // its envelope verifies (e.g. a half-rolled-out format change).
  opts.validate = [](const std::string& payload) {
    if (payload.rfind("BAD", 0) == 0)
      return Status::make(StatusCode::kInvalidInput, "probe parse failed");
    return Status::make_ok();
  };
  LoadReport report;
  const Solved<std::string> got =
      load_artifact(path(), kFmt, opts, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result, "good payload\n");
  EXPECT_EQ(report.source, LoadSource::kBackup);
}

TEST_F(AtomicFileTest, LegacyUnwrappedFileLoadsWithEnvelopedFalse) {
  ASSERT_TRUE(write_file_checked(path(), "legacy text\n").ok());
  LoadReport report;
  const Solved<std::string> got = load_artifact(path(), kFmt, {}, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result, "legacy text\n");
  EXPECT_FALSE(report.enveloped);
}

TEST_F(AtomicFileTest, AllGenerationsCorruptIsIoErrorListingEachCandidate) {
  ASSERT_TRUE(save(path(), "gen1\n", fast()).ok());
  ASSERT_TRUE(save(path(), "gen2\n", fast()).ok());
  const std::string torn = wrap_artifact(kFmt, "x\n").substr(0, 25);
  ASSERT_TRUE(write_file_checked(path(), torn).ok());
  ASSERT_TRUE(write_file_checked(backup_path(path()), torn).ok());
  const Solved<std::string> got = load_artifact(path(), kFmt);
  EXPECT_EQ(got.status.code, StatusCode::kIoError);
  EXPECT_NE(got.status.message.find(path()), std::string::npos)
      << got.status.message;
}

TEST_F(AtomicFileTest, ArtifactPresentSeesAnyGeneration) {
  EXPECT_FALSE(artifact_present(path()));
  ASSERT_TRUE(write_file_checked(backup_path(path()), "x").ok());
  EXPECT_TRUE(artifact_present(path()));
}

// ---------------------------------------------------------------------------
// Record stores: complete generations beat salvage; salvage is exact

std::vector<std::string> gen_records(const std::string& tag, std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(tag + " record " + std::to_string(i) + "\n");
  return out;
}

TEST_F(AtomicFileTest, TornRecordTailPrefersCompletePreviousGeneration) {
  const std::vector<std::string> gen1 = gen_records("gen1", 2);
  const std::vector<std::string> gen2 = gen_records("gen2", 3);
  ASSERT_TRUE(save_record_artifact(path(), kFmt, gen1, fast()).ok());
  ASSERT_TRUE(save_record_artifact(path(), kFmt, gen2, fast()).ok());
  const std::string wrapped = wrap_record_artifact(kFmt, gen2);
  // Tear inside the LAST record: 2 of gen2's records are salvageable, but
  // the complete gen1 must win (LRU-first serialization puts the most
  // valuable entries in the torn tail — see io/durable.hpp).
  const std::size_t cut = wrapped.rfind("gen2 record 2") + 5;
  ASSERT_TRUE(write_file_checked(path(), wrapped.substr(0, cut)).ok());
  LoadReport report;
  const Solved<std::vector<std::string>> got =
      load_record_artifact(path(), kFmt, {}, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result, gen1);
  EXPECT_EQ(report.source, LoadSource::kBackup);
  EXPECT_TRUE(report.quarantined);
}

TEST_F(AtomicFileTest, SalvageIsExactPrefixWhenNoCompleteGenerationExists) {
  const std::vector<std::string> gen = gen_records("solo", 3);
  const std::string wrapped = wrap_record_artifact(kFmt, gen);
  const std::size_t cut = wrapped.rfind("solo record 2") + 5;
  ASSERT_TRUE(write_file_checked(path(), wrapped.substr(0, cut)).ok());
  LoadReport report;
  const Solved<std::vector<std::string>> got =
      load_record_artifact(path(), kFmt, {}, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  ASSERT_EQ(got.result.size(), 2u);
  EXPECT_EQ(got.result[0], gen[0]);
  EXPECT_EQ(got.result[1], gen[1]);
  EXPECT_EQ(report.salvaged, 2u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_TRUE(report.recovered);
}

TEST_F(AtomicFileTest, PerRecordValidatorTruncatesLikeATornTail) {
  const std::vector<std::string> gen = gen_records("val", 3);
  ASSERT_TRUE(save_record_artifact(path(), kFmt, gen, fast()).ok());
  remove_file(backup_path(path()));
  LoadOptions opts;
  opts.validate = [](const std::string& record) {
    if (record.find("record 1") != std::string::npos)
      return Status::make(StatusCode::kInvalidInput, "probe rejected");
    return Status::make_ok();
  };
  LoadReport report;
  const Solved<std::vector<std::string>> got =
      load_record_artifact(path(), kFmt, opts, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  ASSERT_EQ(got.result.size(), 1u);
  EXPECT_EQ(got.result[0], gen[0]);
  EXPECT_EQ(report.dropped, 2u);
}

}  // namespace
}  // namespace defender::io
