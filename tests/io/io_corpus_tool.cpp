// Generator for the corrupt-artifact golden corpus under tests/data/io/
// (plus the legacy tests/data/drain_v1.golden.txt). Run once, by hand,
// when the envelope format or a payload format INTENTIONALLY changes:
//
//   ./io_corpus_tool <repo>/tests/data
//
// and commit the result. recovery_corpus_test loads the committed files —
// it never regenerates them, so envelope/format drift breaks loudly.
//
// Every file is fully deterministic: fixed payloads, fixed truncation
// points (a fraction of the wrapped size), fixed bit-flip positions
// (middle of a payload region found by substring search).
#include <cstdio>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/checkpoint.hpp"
#include "io/atomic_file.hpp"
#include "io/envelope.hpp"
#include "serve/drain.hpp"

namespace defender {
namespace {

int g_failures = 0;

void emit(const std::string& path, const std::string& bytes) {
  const Status s = io::write_file_checked(path, bytes);
  if (!s.ok()) {
    std::fprintf(stderr, "io_corpus_tool: %s\n", s.describe().c_str());
    ++g_failures;
    return;
  }
  std::printf("wrote %-45s %zu bytes\n", path.c_str(), bytes.size());
}

/// Flips bit 0 of the byte `offset` positions past the first occurrence
/// of `anchor` — a stable way to land corruption inside a payload region
/// regardless of header-size drift.
std::string bit_flip_after(std::string bytes, const std::string& anchor,
                           std::size_t offset) {
  const std::size_t pos = bytes.find(anchor);
  if (pos == std::string::npos || pos + offset >= bytes.size()) {
    std::fprintf(stderr, "io_corpus_tool: bad flip anchor '%s'\n",
                 anchor.c_str());
    ++g_failures;
    return bytes;
  }
  bytes[pos + offset] = static_cast<char>(bytes[pos + offset] ^ 0x01);
  return bytes;
}

/// The checkpoint payload: the same document checkpoint_v1.golden.txt
/// pins, round-tripped through the parser so the corpus tracks the
/// canonical serialization, not this string literal.
std::string checkpoint_payload() {
  const std::string literal =
      "defender-checkpoint v1\n"
      "solver hedge\n"
      "game 5 6 2\n"
      "progress 7 100 16 1\n"
      "bracket 0.25 0.5\n"
      "tuples 2\n"
      "tuple 2 0 1\n"
      "tuple 2 2 3\n"
      "vertices 2 0 4\n"
      "attacker 3 0.125 -1.5 2\n"
      "defender 2 0.5 0.75\n"
      "average 2 1 0\n"
      "end\n";
  const Solved<core::SolverCheckpoint> parsed =
      core::try_parse_checkpoint(literal);
  if (!parsed.ok()) {
    std::fprintf(stderr, "io_corpus_tool: checkpoint seed rejected: %s\n",
                 parsed.status.describe().c_str());
    ++g_failures;
    return literal;
  }
  return core::to_text(parsed.result);
}

/// Three cache entries spanning the optional blocks (weights, profiles,
/// checkpoint), stored oldest-first so the record order is pinned.
std::vector<std::string> cache_records() {
  cache::SolveCache store;
  for (std::size_t i = 0; i < 3; ++i) {
    cache::CachedSolve e;
    e.n = 4 + i;
    e.k = 2;
    e.num_attackers = 1;
    e.solver = "double-oracle";
    e.tolerance = 1e-9;
    e.max_iterations = 60 + i;
    e.edges = {{0, 1}, {1, 2}, {2, 3}};
    e.message = "converged";
    e.iterations = 5 + i;
    e.value = e.lower = e.upper = 0.25 + 0.125 * static_cast<double>(i);
    e.attempt_value = e.attempt_lower = e.attempt_upper = e.value;
    if (i == 1) e.checkpoint_text = "defender-checkpoint v1\nkind double-oracle\n";
    if (i == 2) {
      e.has_profiles = true;
      e.defender_support = {{0, 2}, {1, 2}};
      e.defender_probs = {0.5, 0.5};
      e.attacker_support = {0, 3};
      e.attacker_probs = {0.5, 0.5};
    }
    store.store(cache::key_from_entry(e), e);
  }
  return store.to_record_texts();
}

/// A two-job drain manifest (one plain, one weighted) — the legacy golden
/// and the wrapped corpus share it.
std::string drain_payload() {
  serve::DrainManifest manifest;
  serve::DrainedJob job;
  job.client = "corpus";
  job.request_id = "job-0";
  job.job_index = 0;
  job.spec.type = serve::RequestType::kSolve;
  job.spec.client = "corpus";
  job.spec.id = "job-0";
  job.spec.solver = engine::JobSolver::kDoubleOracle;
  job.spec.n = 4;
  job.spec.k = 2;
  job.spec.attackers = 1;
  job.spec.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  job.spec.max_iterations = 60;
  manifest.jobs.push_back(job);
  job.request_id = "job-1";
  job.job_index = 1;
  job.spec.id = "job-1";
  job.spec.solver = engine::JobSolver::kWeightedFictitiousPlay;
  job.spec.weights = {1.0, 2.0, 1.0, 1.5};
  manifest.jobs.push_back(job);
  const std::string text = serve::to_text(manifest);
  const Solved<serve::DrainManifest> parsed =
      serve::try_parse_drain_manifest(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "io_corpus_tool: drain seed rejected: %s\n",
                 parsed.status.describe().c_str());
    ++g_failures;
  }
  return text;
}

}  // namespace
}  // namespace defender

int main(int argc, char** argv) {
  using namespace defender;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <tests/data directory>\n", argv[0]);
    return 2;
  }
  const std::string data = argv[1];
  const std::string io = data + "/io";

  // -- checkpoint (single-payload envelope) --------------------------------
  const std::string ckpt = checkpoint_payload();
  const std::string ckpt_wrapped =
      io::wrap_artifact(core::kCheckpointArtifactFormat, ckpt);
  emit(io + "/checkpoint_wrapped.golden.txt", ckpt_wrapped);
  // Torn mid-payload: enough header survives that the file still LOOKS
  // enveloped — truncation detection, not magic sniffing, must reject it.
  emit(io + "/checkpoint_truncated.txt",
       ckpt_wrapped.substr(0, ckpt_wrapped.size() * 3 / 5));
  // One flipped bit inside the payload ("solver hedge" line): framing
  // intact, CRC32C is the only witness.
  emit(io + "/checkpoint_bitflip.txt",
       bit_flip_after(ckpt_wrapped, "solver hedge", 7));

  // -- cache store (record-framed envelope) --------------------------------
  const std::vector<std::string> records = cache_records();
  const std::string cache_wrapped =
      io::wrap_record_artifact(cache::kCacheArtifactFormat, records);
  emit(io + "/cache_wrapped.golden.txt", cache_wrapped);
  // Locate the third record's raw bytes (records differ past their common
  // document header, so the full-text search is unambiguous).
  const std::size_t third = cache_wrapped.find(records[2]);
  if (third == std::string::npos || records.size() != 3) {
    std::fprintf(stderr, "io_corpus_tool: unexpected cache framing\n");
    return 1;
  }
  // Torn inside the THIRD record: records 0 and 1 remain salvageable.
  emit(io + "/cache_torn_tail.txt",
       cache_wrapped.substr(0, third + records[2].size() / 2));
  // One flipped bit inside the LAST record's bytes: same salvage shape,
  // caught by the per-record checksum instead of the frame length.
  std::string flipped_cache = cache_wrapped;
  flipped_cache[third + records[2].size() / 2] =
      static_cast<char>(flipped_cache[third + records[2].size() / 2] ^ 0x01);
  emit(io + "/cache_bitflip.txt", flipped_cache);

  // -- drain manifest ------------------------------------------------------
  const std::string drain = drain_payload();
  // The legacy golden: a bare v1 manifest exactly as pre-durability
  // builds wrote it (read-through cover in recovery_corpus_test).
  emit(data + "/drain_v1.golden.txt", drain);
  const std::string drain_wrapped =
      io::wrap_artifact(serve::kDrainArtifactFormat, drain);
  emit(io + "/drain_wrapped.golden.txt", drain_wrapped);
  emit(io + "/drain_truncated.txt",
       drain_wrapped.substr(0, drain_wrapped.size() / 2));
  emit(io + "/drain_bitflip.txt",
       bit_flip_after(drain_wrapped, "spec double-oracle", 5));

  if (g_failures != 0) {
    std::fprintf(stderr, "io_corpus_tool: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("io_corpus_tool: corpus complete\n");
  return 0;
}
