// Loads the committed corrupt-artifact corpus (tests/data/io/, generated
// once by io_corpus_tool) through the real consumer loaders and pins the
// recovery behavior for every format: quarantine of damaged currents,
// fallback to the previous generation, record-prefix salvage for the
// cache store, and legacy read-through of pre-durability files.
//
// Corpus files are COPIED into a scratch directory first: recovery has
// side effects (quarantine renames, temp adoption) that must never touch
// the committed corpus.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/checkpoint.hpp"
#include "io/atomic_file.hpp"
#include "io/durable.hpp"
#include "serve/drain.hpp"

namespace defender {
namespace {

class RecoveryCorpusTest : public ::testing::Test {
 public:
  static std::string corpus(const std::string& name) {
    return std::string(DEFENDER_TEST_DATA_DIR) + "/" + name;
  }

 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/defender-corpus-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    for (const std::string& p : placed_) {
      unlink(p.c_str());
      unlink(io::temp_path(p).c_str());
      unlink(io::backup_path(p).c_str());
      unlink(io::quarantine_path(p).c_str());
    }
    rmdir(dir_.c_str());
  }

  /// Copies a committed corpus file to `dst_name` inside the scratch dir
  /// and returns the destination path.
  std::string place(const std::string& corpus_name,
                    const std::string& dst_name) {
    const Solved<std::string> bytes = io::read_file(corpus(corpus_name));
    EXPECT_TRUE(bytes.ok()) << bytes.status.describe();
    const std::string dst = dir_ + "/" + dst_name;
    EXPECT_TRUE(io::write_file_checked(dst, bytes.result).ok());
    if (dst_name.find(".prev") == std::string::npos &&
        dst_name.find(".tmp") == std::string::npos)
      placed_.push_back(dst);
    return dst;
  }

  std::string dir_;
  std::vector<std::string> placed_;
};

/// to_text of the checkpoint every corpus variant encodes (the legacy
/// golden is the payload the wrapped/corrupt variants were built from).
std::string golden_checkpoint_text() {
  const Solved<std::string> legacy =
      io::read_file(RecoveryCorpusTest::corpus("checkpoint_v1.golden.txt"));
  EXPECT_TRUE(legacy.ok()) << legacy.status.describe();
  const Solved<core::SolverCheckpoint> parsed =
      core::try_parse_checkpoint(legacy.result);
  EXPECT_TRUE(parsed.ok()) << parsed.status.describe();
  return core::to_text(parsed.result);
}

// ---------------------------------------------------------------------------
// Checkpoint artifacts

TEST_F(RecoveryCorpusTest, WrappedCheckpointLoadsClean) {
  const std::string path = place("io/checkpoint_wrapped.golden.txt", "ckpt");
  io::LoadReport report;
  const Solved<core::SolverCheckpoint> got =
      core::load_checkpoint_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(core::to_text(got.result), golden_checkpoint_text());
  EXPECT_TRUE(report.enveloped);
  EXPECT_FALSE(report.recovered);
}

TEST_F(RecoveryCorpusTest, LegacyCheckpointReadsThrough) {
  const std::string path = place("checkpoint_v1.golden.txt", "ckpt");
  io::LoadReport report;
  const Solved<core::SolverCheckpoint> got =
      core::load_checkpoint_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_FALSE(report.enveloped);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(core::to_text(got.result), golden_checkpoint_text());
}

TEST_F(RecoveryCorpusTest, TruncatedCheckpointAloneFailsAndQuarantines) {
  const std::string path = place("io/checkpoint_truncated.txt", "ckpt");
  io::LoadReport report;
  const Solved<core::SolverCheckpoint> got =
      core::load_checkpoint_file(path, &report);
  EXPECT_EQ(got.status.code, StatusCode::kIoError);
  EXPECT_TRUE(report.quarantined);
  EXPECT_TRUE(io::file_exists(io::quarantine_path(path)));
  EXPECT_FALSE(io::file_exists(path));
}

TEST_F(RecoveryCorpusTest, TruncatedCheckpointFallsBackToPrev) {
  const std::string path = place("io/checkpoint_truncated.txt", "ckpt");
  place("io/checkpoint_wrapped.golden.txt", "ckpt.prev");
  io::LoadReport report;
  const Solved<core::SolverCheckpoint> got =
      core::load_checkpoint_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(core::to_text(got.result), golden_checkpoint_text());
  EXPECT_EQ(report.source, io::LoadSource::kBackup);
  EXPECT_TRUE(report.quarantined);
  EXPECT_TRUE(io::file_exists(io::quarantine_path(path)));
}

TEST_F(RecoveryCorpusTest, BitFlippedCheckpointFallsBackToLegacyPrev) {
  // Mixed-generation fallback: the damaged current is enveloped, the
  // surviving previous generation predates the envelope entirely.
  const std::string path = place("io/checkpoint_bitflip.txt", "ckpt");
  place("checkpoint_v1.golden.txt", "ckpt.prev");
  io::LoadReport report;
  const Solved<core::SolverCheckpoint> got =
      core::load_checkpoint_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(core::to_text(got.result), golden_checkpoint_text());
  EXPECT_EQ(report.source, io::LoadSource::kBackup);
  EXPECT_FALSE(report.enveloped);
  EXPECT_TRUE(report.quarantined);
}

TEST_F(RecoveryCorpusTest, CompleteTempCheckpointIsAdopted) {
  const std::string path = dir_ + "/ckpt";
  placed_.push_back(path);
  place("io/checkpoint_wrapped.golden.txt", "ckpt.tmp");
  io::LoadReport report;
  const Solved<core::SolverCheckpoint> got =
      core::load_checkpoint_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(report.source, io::LoadSource::kAdoptedTemp);
  EXPECT_TRUE(io::file_exists(path));
  EXPECT_FALSE(io::file_exists(io::temp_path(path)));
}

// ---------------------------------------------------------------------------
// Cache-store artifacts (record-framed)

TEST_F(RecoveryCorpusTest, WrappedCacheStoreLoadsAllEntries) {
  const std::string path = place("io/cache_wrapped.golden.txt", "cache");
  cache::SolveCache store;
  io::LoadReport report;
  const Status s = cache::load_cache_file(path, &store, &report);
  ASSERT_TRUE(s.ok()) << s.describe();
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(report.enveloped);
  EXPECT_FALSE(report.recovered);
}

TEST_F(RecoveryCorpusTest, LegacyCacheStoreReadsThrough) {
  const std::string path = place("cache_v1.golden.txt", "cache");
  cache::SolveCache store;
  io::LoadReport report;
  const Status s = cache::load_cache_file(path, &store, &report);
  ASSERT_TRUE(s.ok()) << s.describe();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(report.enveloped);
}

TEST_F(RecoveryCorpusTest, TornCacheTailSalvagesExactPrefix) {
  const std::string path = place("io/cache_torn_tail.txt", "cache");
  cache::SolveCache store;
  io::LoadReport report;
  const Status s = cache::load_cache_file(path, &store, &report);
  ASSERT_TRUE(s.ok()) << s.describe();
  EXPECT_EQ(store.size(), 2u);  // records 0 and 1; the torn record 2 lost
  EXPECT_EQ(report.salvaged, 2u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_TRUE(report.recovered);
}

TEST_F(RecoveryCorpusTest, BitFlippedCacheRecordSalvagesPrefix) {
  const std::string path = place("io/cache_bitflip.txt", "cache");
  cache::SolveCache store;
  io::LoadReport report;
  const Status s = cache::load_cache_file(path, &store, &report);
  ASSERT_TRUE(s.ok()) << s.describe();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(report.dropped, 1u);
}

TEST_F(RecoveryCorpusTest, TornCacheWithCompletePrevPrefersPrev) {
  const std::string path = place("io/cache_torn_tail.txt", "cache");
  place("io/cache_wrapped.golden.txt", "cache.prev");
  cache::SolveCache store;
  io::LoadReport report;
  const Status s = cache::load_cache_file(path, &store, &report);
  ASSERT_TRUE(s.ok()) << s.describe();
  // All three entries: the complete previous generation beats the
  // two-record salvage of the torn current.
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(report.source, io::LoadSource::kBackup);
  EXPECT_TRUE(report.quarantined);
}

// ---------------------------------------------------------------------------
// Drain-manifest artifacts

TEST_F(RecoveryCorpusTest, WrappedDrainManifestLoadsClean) {
  const std::string path = place("io/drain_wrapped.golden.txt", "drain");
  io::LoadReport report;
  const Solved<serve::DrainManifest> got =
      serve::load_drain_manifest_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  ASSERT_EQ(got.result.jobs.size(), 2u);
  EXPECT_EQ(got.result.jobs[0].request_id, "job-0");
  EXPECT_EQ(got.result.jobs[1].request_id, "job-1");
  EXPECT_TRUE(report.enveloped);
}

TEST_F(RecoveryCorpusTest, LegacyDrainManifestReadsThrough) {
  const std::string path = place("drain_v1.golden.txt", "drain");
  io::LoadReport report;
  const Solved<serve::DrainManifest> got =
      serve::load_drain_manifest_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result.jobs.size(), 2u);
  EXPECT_FALSE(report.enveloped);
}

TEST_F(RecoveryCorpusTest, TruncatedDrainFallsBackToPrev) {
  const std::string path = place("io/drain_truncated.txt", "drain");
  place("io/drain_wrapped.golden.txt", "drain.prev");
  io::LoadReport report;
  const Solved<serve::DrainManifest> got =
      serve::load_drain_manifest_file(path, &report);
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result.jobs.size(), 2u);
  EXPECT_EQ(report.source, io::LoadSource::kBackup);
  EXPECT_TRUE(report.quarantined);
}

TEST_F(RecoveryCorpusTest, BitFlippedDrainAloneFailsTruthfully) {
  const std::string path = place("io/drain_bitflip.txt", "drain");
  io::LoadReport report;
  const Solved<serve::DrainManifest> got =
      serve::load_drain_manifest_file(path, &report);
  // No fallback generation: the load must FAIL (naming the path), never
  // hand back a manifest parsed from corrupt bytes.
  EXPECT_EQ(got.status.code, StatusCode::kIoError);
  EXPECT_NE(got.status.message.find(path), std::string::npos)
      << got.status.message;
  EXPECT_TRUE(report.quarantined);
}

}  // namespace
}  // namespace defender
