// The "defender-artifact v1" envelope: CRC32C vectors, byte-exact
// framing, and the two corruption sweeps the durability story rests on —
// no truncation of a wrapped artifact may ever unwrap as a successful
// enveloped read, and no single-bit flip may ever unwrap to a payload
// that differs from what the writer sealed (docs/DURABILITY.md).
#include "io/envelope.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/crc32c.hpp"

namespace defender::io {
namespace {

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32c, KnownVectors) {
  // RFC 3720 check value plus the degenerate cases.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_EQ(crc32c(std::string_view("\0", 1)), 0x527D5351u);
}

TEST(Crc32c, EverySingleBitFlipChangesTheChecksum) {
  const std::string base = "defender-checkpoint v1\nsolver hedge\nend\n";
  const std::uint32_t want = crc32c(base);
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = base;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(flipped), want)
          << "flip at byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

// ---------------------------------------------------------------------------
// Single-payload envelope

const std::string kPayload =
    "defender-checkpoint v1\nsolver hedge\nprogress 1 2 3 4\nend\n";

TEST(Envelope, WrapUnwrapRoundTrip) {
  const std::string wrapped = wrap_artifact("defender-checkpoint", kPayload);
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-checkpoint");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_TRUE(got.result.enveloped);
  EXPECT_EQ(got.result.format, "defender-checkpoint");
  EXPECT_EQ(got.result.payload, kPayload);
}

TEST(Envelope, EmptyPayloadRoundTrips) {
  const std::string wrapped = wrap_artifact("defender-cache", "");
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-cache");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_TRUE(got.result.enveloped);
  EXPECT_TRUE(got.result.payload.empty());
}

TEST(Envelope, BinaryPayloadRoundTrips) {
  // The payload region is counted raw bytes, not lines: embedded NULs,
  // envelope-lookalike lines, and a missing trailing newline all survive.
  std::string payload = "defender-artifact v1\nend\n";
  payload += '\0';
  payload += "\ncrc32c deadbeef";
  const std::string wrapped = wrap_artifact("defender-drain", payload);
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-drain");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_EQ(got.result.payload, payload);
}

TEST(Envelope, LegacyTextPassesThroughVerbatim) {
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(kPayload, "defender-checkpoint");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_FALSE(got.result.enveloped);
  EXPECT_EQ(got.result.payload, kPayload);
}

TEST(Envelope, FormatMismatchIsRejected) {
  const std::string wrapped = wrap_artifact("defender-cache", kPayload);
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-checkpoint");
  EXPECT_EQ(got.status.code, StatusCode::kInvalidInput);
}

TEST(Envelope, UnsupportedVersionIsAHardErrorNotPassthrough) {
  std::string wrapped = wrap_artifact("defender-checkpoint", kPayload);
  const std::size_t v = wrapped.find("v1");
  ASSERT_NE(v, std::string::npos);
  wrapped[v + 1] = '2';
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-checkpoint");
  // A matched magic with an unknown version must NOT fall back to legacy
  // read-through: that would hand a future format to an old parser.
  EXPECT_EQ(got.status.code, StatusCode::kInvalidInput);
}

TEST(Envelope, TrailingGarbageIsRejected) {
  const std::string wrapped =
      wrap_artifact("defender-checkpoint", kPayload) + "x";
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-checkpoint");
  EXPECT_EQ(got.status.code, StatusCode::kInvalidInput);
}

TEST(Envelope, ChecksumMismatchIsRejected) {
  std::string wrapped = wrap_artifact("defender-checkpoint", kPayload);
  const std::size_t pos = wrapped.find("solver hedge");
  ASSERT_NE(pos, std::string::npos);
  wrapped[pos] ^= 0x01;
  const Solved<UnwrappedArtifact> got =
      unwrap_artifact(wrapped, "defender-checkpoint");
  EXPECT_EQ(got.status.code, StatusCode::kInvalidInput);
  EXPECT_NE(got.status.message.find("checksum"), std::string::npos)
      << got.status.message;
}

TEST(Envelope, NoTruncationEverReadsAsAnEnvelopedSuccess) {
  // THE torn-write guarantee: every strict prefix of a wrapped artifact
  // either fails to unwrap or degrades to legacy passthrough (which the
  // durable layer's consumer validator then rejects). It can never come
  // back as a "complete" enveloped payload.
  const std::string wrapped = wrap_artifact("defender-checkpoint", kPayload);
  for (std::size_t cut = 0; cut < wrapped.size(); ++cut) {
    const Solved<UnwrappedArtifact> got =
        unwrap_artifact(wrapped.substr(0, cut), "defender-checkpoint");
    EXPECT_FALSE(got.ok() && got.result.enveloped)
        << "prefix of " << cut << " bytes unwrapped as a complete envelope";
  }
}

TEST(Envelope, NoSingleBitFlipEverYieldsAWrongPayload) {
  const std::string wrapped = wrap_artifact("defender-checkpoint", kPayload);
  for (std::size_t byte = 0; byte < wrapped.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wrapped;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      const Solved<UnwrappedArtifact> got =
          unwrap_artifact(flipped, "defender-checkpoint");
      if (!got.ok()) continue;  // rejected: fine
      // A flip in the magic line legally degrades to legacy passthrough;
      // an *enveloped* success must return the exact original payload.
      if (got.result.enveloped) {
        EXPECT_EQ(got.result.payload, kPayload)
            << "bit flip at byte " << byte << " bit " << bit
            << " unwrapped to a different payload";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Record-framed envelope

std::vector<std::string> sample_records() {
  return {"defender-cache v1\nentries 1\nalpha\nend\n",
          "defender-cache v1\nentries 1\nbeta beta\nend\n",
          "defender-cache v1\nentries 1\ngamma gamma gamma\nend\n"};
}

TEST(RecordEnvelope, WrapUnwrapRoundTrip) {
  const std::vector<std::string> records = sample_records();
  const std::string wrapped = wrap_record_artifact("defender-cache", records);
  const Solved<UnwrappedRecords> got =
      unwrap_record_artifact(wrapped, "defender-cache");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_TRUE(got.result.enveloped);
  EXPECT_FALSE(got.result.torn);
  EXPECT_EQ(got.result.declared, records.size());
  EXPECT_EQ(got.result.dropped, 0u);
  EXPECT_EQ(got.result.records, records);
}

TEST(RecordEnvelope, EmptyStoreRoundTrips) {
  const std::string wrapped = wrap_record_artifact("defender-cache", {});
  const Solved<UnwrappedRecords> got =
      unwrap_record_artifact(wrapped, "defender-cache");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_TRUE(got.result.records.empty());
  EXPECT_FALSE(got.result.torn);
}

TEST(RecordEnvelope, LegacyTextBecomesOneRecord) {
  const std::string legacy = "defender-cache v1\nentries 0\nend\n";
  const Solved<UnwrappedRecords> got =
      unwrap_record_artifact(legacy, "defender-cache");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_FALSE(got.result.enveloped);
  ASSERT_EQ(got.result.records.size(), 1u);
  EXPECT_EQ(got.result.records[0], legacy);
}

TEST(RecordEnvelope, EveryTruncationSalvagesAnExactPrefix) {
  // Cutting the store at ANY byte yields either a header error or a
  // salvage whose records are a byte-exact prefix of what was written —
  // never a mangled record, never records out of order.
  const std::vector<std::string> records = sample_records();
  const std::string wrapped = wrap_record_artifact("defender-cache", records);
  for (std::size_t cut = 0; cut < wrapped.size(); ++cut) {
    const Solved<UnwrappedRecords> got =
        unwrap_record_artifact(wrapped.substr(0, cut), "defender-cache");
    if (!got.ok()) continue;  // header unusable: fine
    if (!got.result.enveloped) continue;  // magic-line cut: legacy shape
    ASSERT_LE(got.result.records.size(), records.size());
    for (std::size_t i = 0; i < got.result.records.size(); ++i)
      ASSERT_EQ(got.result.records[i], records[i]) << "cut " << cut;
    if (got.result.records.size() < records.size()) {
      EXPECT_TRUE(got.result.torn) << "cut " << cut;
      EXPECT_EQ(got.result.dropped,
                records.size() - got.result.records.size());
    }
  }
}

TEST(RecordEnvelope, BitFlipInOneRecordDropsOnlyTheTail) {
  const std::vector<std::string> records = sample_records();
  std::string wrapped = wrap_record_artifact("defender-cache", records);
  // Corrupt the middle record's payload: the salvage keeps record 0 and
  // tears at record 1 (frames are sequential, so everything after the
  // first bad checksum is unreachable).
  const std::size_t pos = wrapped.find("beta");
  ASSERT_NE(pos, std::string::npos);
  wrapped[pos] ^= 0x01;
  const Solved<UnwrappedRecords> got =
      unwrap_record_artifact(wrapped, "defender-cache");
  ASSERT_TRUE(got.ok()) << got.status.describe();
  EXPECT_TRUE(got.result.torn);
  ASSERT_EQ(got.result.records.size(), 1u);
  EXPECT_EQ(got.result.records[0], records[0]);
  EXPECT_EQ(got.result.dropped, 2u);
}

TEST(RecordEnvelope, FormatMismatchIsRejected) {
  const std::string wrapped =
      wrap_record_artifact("defender-cache", sample_records());
  const Solved<UnwrappedRecords> got =
      unwrap_record_artifact(wrapped, "defender-drain");
  EXPECT_EQ(got.status.code, StatusCode::kInvalidInput);
}

TEST(RecordEnvelope, HostileDeclaredCountIsCapped) {
  std::string hostile = "defender-artifact-log v1\nformat defender-cache\n";
  hostile += "records 999999999999\nend\n";
  const Solved<UnwrappedRecords> got =
      unwrap_record_artifact(hostile, "defender-cache");
  EXPECT_EQ(got.status.code, StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace defender::io
