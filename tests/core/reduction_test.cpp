#include "core/reduction.hpp"

#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/combinatorics.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

MatchingNe c8_matching_ne(const graph::Graph& g) {
  auto ne = compute_matching_ne(g, make_partition(g, {0, 2, 4, 6}));
  EXPECT_TRUE(ne.has_value());
  return *ne;
}

TEST(LiftedSizes, GcdArithmeticOfClaim49) {
  EXPECT_EQ(lifted_support_size(6, 4), 3u);       // lcm(6,4)/4
  EXPECT_EQ(lifted_tuples_per_edge(6, 4), 2u);    // 4/gcd(6,4)
  EXPECT_EQ(lifted_support_size(5, 5), 1u);
  EXPECT_EQ(lifted_tuples_per_edge(5, 5), 1u);
  EXPECT_EQ(lifted_support_size(8, 3), 8u);
  EXPECT_EQ(lifted_tuples_per_edge(8, 3), 3u);
}

TEST(Lift, ProducesAKMatchingNashEquilibrium) {
  const graph::Graph g = graph::cycle_graph(8);
  const MatchingNe base = c8_matching_ne(g);
  for (std::size_t k = 1; k <= base.tp_support.size(); ++k) {
    const TupleGame game(g, k, 2);
    const KMatchingNe lifted = lift_to_k_matching(game, base);
    EXPECT_TRUE(
        is_k_matching_configuration(game, lifted.vp_support, lifted.tp_support))
        << "k=" << k;
    EXPECT_TRUE(satisfies_cover_conditions(game, lifted)) << "k=" << k;
    EXPECT_EQ(lifted.tp_support.size(),
              lifted_support_size(base.tp_support.size(), k));
    EXPECT_TRUE(verify_mixed_ne(game, to_configuration(game, lifted),
                                Oracle::kExhaustive)
                    .is_ne())
        << "k=" << k;
  }
}

TEST(Lift, RejectsKLargerThanSupport) {
  const graph::Graph g = graph::cycle_graph(8);
  const MatchingNe base = c8_matching_ne(g);  // support size 4, m = 8
  const TupleGame game(g, 5, 1);
  EXPECT_THROW(lift_to_k_matching(game, base), ContractViolation);
}

TEST(Project, RecoversAMatchingNashEquilibrium) {
  const graph::Graph g = graph::cycle_graph(8);
  const MatchingNe base = c8_matching_ne(g);
  const TupleGame game(g, 3, 2);
  const KMatchingNe lifted = lift_to_k_matching(game, base);
  const MatchingNe projected = project_to_matching(game, lifted);
  // Round trip: projection of the lift is the original support.
  EXPECT_EQ(projected.vp_support, base.vp_support);
  EXPECT_EQ(projected.tp_support, base.tp_support);
  // And it is a matching NE of Pi_1(G) (Lemma 4.6).
  const TupleGame edge_game = game.edge_model_instance();
  EXPECT_TRUE(verify_mixed_ne(edge_game,
                              to_configuration(edge_game, projected),
                              Oracle::kExhaustive)
                  .is_ne());
}

TEST(Theorem45, DefenderGainScalesExactlyByK) {
  const graph::Graph g = graph::cycle_graph(8);
  const std::size_t nu = 6;
  const MatchingNe base = c8_matching_ne(g);
  const TupleGame edge_game(g, 1, nu);
  const double base_profit =
      defender_profit(edge_game, to_configuration(edge_game, base));
  for (std::size_t k = 1; k <= base.tp_support.size(); ++k) {
    const TupleGame game(g, k, nu);
    const KMatchingNe lifted = lift_to_k_matching(game, base);
    const double lifted_profit =
        defender_profit(game, to_configuration(game, lifted));
    EXPECT_NEAR(lifted_profit, static_cast<double>(k) * base_profit, 1e-9)
        << "k=" << k;
  }
}

TEST(Lift, EveryEdgeAppearsExactlyAlphaTimes) {
  const graph::Graph g = graph::grid_graph(2, 5);  // bipartite, 10 vertices
  const auto partition = find_partition_bipartite(g);
  ASSERT_TRUE(partition.has_value());
  const auto base = compute_matching_ne(g, *partition);
  ASSERT_TRUE(base.has_value());
  const std::size_t e_num = base->tp_support.size();
  for (std::size_t k = 1; k <= e_num; ++k) {
    const TupleGame game(g, k, 1);
    const KMatchingNe lifted = lift_to_k_matching(game, *base);
    std::vector<std::size_t> count(g.num_edges(), 0);
    for (const Tuple& t : lifted.tp_support)
      for (graph::EdgeId e : t) ++count[e];
    const std::size_t alpha = lifted_tuples_per_edge(e_num, k);
    for (graph::EdgeId e : base->tp_support)
      EXPECT_EQ(count[e], alpha) << "k=" << k;
  }
}

TEST(Lift, SupportSizeIsMinimalUniformCover) {
  // delta * k = lcm(E, k): the least multiple of k divisible by E-rotations.
  for (std::size_t e = 1; e <= 12; ++e)
    for (std::size_t k = 1; k <= e; ++k)
      EXPECT_EQ(lifted_support_size(e, k) * k, util::lcm(e, k));
}

TEST(RoundTrip, RandomBipartiteBoards) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_bipartite(3, 5, 0.4, rng);
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value()) << "seed " << seed;
    const auto base = compute_matching_ne(g, *partition);
    ASSERT_TRUE(base.has_value()) << "seed " << seed;
    const std::size_t kmax = base->tp_support.size();
    for (std::size_t k = 1; k <= kmax; ++k) {
      const TupleGame game(g, k, 2);
      const KMatchingNe lifted = lift_to_k_matching(game, *base);
      const MatchingNe back = project_to_matching(game, lifted);
      EXPECT_EQ(back.vp_support, base->vp_support) << "seed " << seed;
      EXPECT_EQ(back.tp_support, base->tp_support) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace defender::core
