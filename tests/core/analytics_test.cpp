#include "core/analytics.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/k_matching.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TEST(DefenseRatio, InverseOfProfitShare) {
  const TupleGame game(graph::cycle_graph(8), 2, 8);
  EXPECT_DOUBLE_EQ(defense_ratio(game, 8.0), 1.0);   // everything caught
  EXPECT_DOUBLE_EQ(defense_ratio(game, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(defense_ratio(game, 1.0), 8.0);
  EXPECT_THROW(defense_ratio(game, 0.0), ContractViolation);
  EXPECT_THROW(defense_ratio(game, -1.0), ContractViolation);
}

TEST(CoverageCeiling, TwoKOverNCappedAtOne) {
  EXPECT_DOUBLE_EQ(coverage_ceiling(TupleGame(graph::cycle_graph(10), 2, 1)),
                   0.4);
  EXPECT_DOUBLE_EQ(coverage_ceiling(TupleGame(graph::cycle_graph(10), 5, 1)),
                   1.0);
  EXPECT_DOUBLE_EQ(coverage_ceiling(TupleGame(graph::cycle_graph(10), 9, 1)),
                   1.0);  // capped
}

TEST(DefenseOptimality, NormalizedAgainstTheCeiling) {
  const TupleGame game(graph::cycle_graph(10), 2, 1);
  EXPECT_DOUBLE_EQ(defense_optimality(game, 0.4), 1.0);
  EXPECT_DOUBLE_EQ(defense_optimality(game, 0.2), 0.5);
  EXPECT_THROW(defense_optimality(game, 1.5), ContractViolation);
  EXPECT_THROW(defense_optimality(game, -0.1), ContractViolation);
}

TEST(DefenseOptimality, KMatchingRatioIsHalfNOverIs) {
  // k-matching hit = k/|IS|, ceiling = 2k/n -> optimality = n / (2|IS|).
  for (const auto& g : {graph::path_graph(9), graph::star_graph(6),
                        graph::grid_graph(3, 4)}) {
    const TupleGame game(g, 2, 1);
    const auto result = a_tuple_bipartite(game);
    ASSERT_TRUE(result.has_value());
    const double hit = analytic_hit_probability(game, result->k_matching_ne);
    const double is_size =
        static_cast<double>(result->k_matching_ne.vp_support.size());
    EXPECT_NEAR(defense_optimality(game, hit),
                static_cast<double>(g.num_vertices()) / (2.0 * is_size),
                1e-12);
  }
}

TEST(DefenseOptimality, NeverExceedsOneForConstructedEquilibria) {
  for (const auto& g :
       {graph::cycle_graph(12), graph::complete_bipartite(3, 9),
        graph::hypercube_graph(4)}) {
    for (std::size_t k = 1; k <= 3; ++k) {
      const TupleGame game(g, k, 1);
      const auto result = a_tuple_bipartite(game);
      ASSERT_TRUE(result.has_value());
      const double opt = defense_optimality(
          game, analytic_hit_probability(game, result->k_matching_ne));
      EXPECT_LE(opt, 1.0 + 1e-12);
      EXPECT_GT(opt, 0.0);
    }
  }
}

}  // namespace
}  // namespace defender::core
