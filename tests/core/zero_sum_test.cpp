#include "core/zero_sum.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/k_matching.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/combinatorics.hpp"

namespace defender::core {
namespace {

TEST(CoverageMatrix, RowsAreTuplesColumnsAreVertices) {
  const TupleGame game(graph::path_graph(3), 1, 1);  // edges (0,1), (1,2)
  const lp::Matrix a = coverage_matrix(game);
  ASSERT_EQ(a.rows(), 2u);
  ASSERT_EQ(a.cols(), 3u);
  // Row 0 = edge (0,1): covers vertices 0 and 1.
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  // Row 1 = edge (1,2).
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 1.0);
}

TEST(CoverageMatrix, PairsShareCoveredVertices) {
  const TupleGame game(graph::path_graph(3), 2, 1);  // single tuple {0,1}
  const lp::Matrix a = coverage_matrix(game);
  ASSERT_EQ(a.rows(), 1u);
  for (std::size_t v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(a.at(0, v), 1.0);
}

TEST(CoverageMatrix, EnforcesTupleLimit) {
  const TupleGame game(graph::complete_graph(12), 6, 1);
  EXPECT_THROW(coverage_matrix(game, 1000), ContractViolation);
}

TEST(TupleAtRank, MatchesLexicographicEnumeration) {
  const TupleGame game(graph::cycle_graph(5), 2, 1);
  std::uint64_t rank = 0;
  util::for_each_combination(5, 2, [&](const std::vector<std::size_t>& c) {
    const Tuple t = tuple_at_rank(game, rank++);
    EXPECT_EQ(t, Tuple(c.begin(), c.end()));
    return true;
  });
}

TEST(SolveZeroSum, ValueOnC6MatchesKMatchingPrediction) {
  // C6, k = 1: the k-matching NE defends 3 edges, so the zero-sum value
  // (unique across equilibria) must be 1/3.
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const lp::MatrixGameSolution s = solve_zero_sum(game);
  EXPECT_NEAR(s.value, 1.0 / 3, 1e-7);
}

TEST(SolveZeroSum, ValueScalesWithKOnC6) {
  for (std::size_t k = 1; k <= 3; ++k) {
    const TupleGame game(graph::cycle_graph(6), k, 1);
    const lp::MatrixGameSolution s = solve_zero_sum(game);
    EXPECT_NEAR(s.value, static_cast<double>(k) / 3.0, 1e-7) << "k=" << k;
  }
}

TEST(SolveZeroSum, StarValueIsKOverLeafCount) {
  // Star with L leaves: defender mixes over spokes; value = k / L.
  const TupleGame game(graph::star_graph(5), 2, 1);
  EXPECT_NEAR(solve_zero_sum(game).value, 2.0 / 5, 1e-7);
}

TEST(SolveZeroSum, AgreesWithATupleHitProbability) {
  for (const auto& g : {graph::path_graph(6), graph::complete_bipartite(2, 4)}) {
    for (std::size_t k = 1; k <= 2; ++k) {
      const TupleGame game(g, k, 1);
      const auto result = a_tuple_bipartite(game);
      ASSERT_TRUE(result.has_value());
      const double predicted =
          analytic_hit_probability(game, result->k_matching_ne);
      EXPECT_NEAR(solve_zero_sum(game).value, predicted, 1e-7)
          << "k=" << k;
    }
  }
}

TEST(SolveZeroSum, NumericallyHardGridInstance) {
  // Regression: grid 4x5 with k = 2 builds a 465 x 20 coverage LP whose
  // degenerate tableau blew up under Dantzig pricing with naive
  // minimum-ratio tie-breaking (tiny pivots amplified round-off until the
  // "optimal" solution was infeasible by 1e16). The stabilized leaving
  // rule must land exactly on the k-matching value 2/|IS| = 0.2.
  const TupleGame game(graph::grid_graph(4, 5), 2, 1);
  EXPECT_NEAR(solve_zero_sum(game).value, 0.2, 1e-7);
}

TEST(SolveZeroSum, MediumCoverageMatricesAcrossFamilies) {
  // Sweep the LP over every instance size the benches exercise so a
  // simplex regression can never again hide from ctest.
  const struct {
    graph::Graph g;
    std::size_t k;
    double expected;
  } cases[] = {
      {graph::grid_graph(4, 4), 2, 0.25},        // C(24,2)=276 rows
      {graph::grid_graph(3, 5), 2, 2.0 / 8},     // |IS| = 8
      {graph::hypercube_graph(3), 3, 0.75},      // C(12,3)=220 rows
      {graph::ladder_graph(6), 3, 0.5},          // |IS| = 6
      {graph::complete_bipartite(4, 8), 2, 0.25},
  };
  for (const auto& c : cases) {
    const TupleGame game(c.g, c.k, 1);
    EXPECT_NEAR(solve_zero_sum(game).value, c.expected, 1e-7)
        << "n=" << c.g.num_vertices() << " k=" << c.k;
  }
}

TEST(ToConfiguration, LpSolutionIsAMixedNashEquilibrium) {
  const TupleGame game(graph::cycle_graph(6), 2, 3);
  const lp::MatrixGameSolution s = solve_zero_sum(game);
  const MixedConfiguration config = to_configuration(game, s);
  EXPECT_TRUE(is_mixed_ne_by_best_response(game, config, Oracle::kExhaustive,
                                           1e-6));
}

}  // namespace
}  // namespace defender::core
