#include "core/weighted.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "sim/fictitious_play.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TEST(ValidateWeights, RejectsBadShapes) {
  const TupleGame game(graph::path_graph(4), 1, 1);
  EXPECT_THROW(validate_weights(game, std::vector<double>{1, 1}),
               ContractViolation);
  EXPECT_THROW(validate_weights(game, std::vector<double>{1, 1, 0, 1}),
               ContractViolation);
  EXPECT_NO_THROW(validate_weights(game, std::vector<double>{1, 2, 3, 4}));
}

TEST(WeightedMasses, ElementwiseProduct) {
  const std::vector<double> w{2, 3};
  const std::vector<double> m{0.5, 1.0};
  EXPECT_EQ(weighted_masses(w, m), (std::vector<double>{1.0, 3.0}));
  EXPECT_THROW(weighted_masses(w, std::vector<double>{1.0}),
               ContractViolation);
}

TEST(DamageMatrix, TransposedComplementOfCoverage) {
  const TupleGame game(graph::path_graph(3), 1, 1);
  const std::vector<double> w{1.0, 5.0, 2.0};
  const lp::Matrix d = damage_matrix(game, w);
  ASSERT_EQ(d.rows(), 3u);  // vertices
  ASSERT_EQ(d.cols(), 2u);  // tuples (edges)
  // Edge (0,1): vertex 2 escapes with damage 2; edge (1,2): vertex 0 / 1.
  EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d.at(1, 1), 0.0);
}

TEST(SolveWeightedZeroSum, UnitWeightsMatchUnweightedValue) {
  // With w = 1 the damage value equals 1 - hit value.
  for (std::size_t k = 1; k <= 2; ++k) {
    const TupleGame game(graph::cycle_graph(6), k, 1);
    const std::vector<double> w(6, 1.0);
    const double damage = solve_weighted_zero_sum(game, w).damage_value;
    const double hit = solve_zero_sum(game).value;
    EXPECT_NEAR(damage, 1.0 - hit, 1e-7) << "k=" << k;
  }
}

TEST(SolveWeightedZeroSum, ScalingWeightsScalesTheValue) {
  const TupleGame game(graph::path_graph(5), 1, 1);
  const std::vector<double> w1(5, 1.0);
  const std::vector<double> w3(5, 3.0);
  EXPECT_NEAR(solve_weighted_zero_sum(game, w3).damage_value,
              3.0 * solve_weighted_zero_sum(game, w1).damage_value, 1e-6);
}

TEST(SolveWeightedZeroSum, DefenderShieldsTheValuableAsset) {
  // P3 with a precious middle vertex: both edges cover it, so the damage
  // game reduces to protecting the endpoints; the attacker never profits
  // from the middle.
  const TupleGame game(graph::path_graph(3), 1, 1);
  const std::vector<double> w{1.0, 100.0, 1.0};
  const WeightedSolution s = solve_weighted_zero_sum(game, w);
  EXPECT_NEAR(s.attacker_strategy[1], 0.0, 1e-7);
  // Value: endpoints weight 1 each, defender covers one of them; the
  // attacker mixes over endpoints for damage 1/2.
  EXPECT_NEAR(s.damage_value, 0.5, 1e-7);
}

TEST(SolveWeightedZeroSum, SkewedStarConcentratesDefence) {
  // Star K_{1,4} with one golden leaf: the defender's mix must overweight
  // the golden spoke, dropping its escape damage to the common level.
  const TupleGame game(graph::star_graph(4), 1, 1);
  std::vector<double> w(5, 1.0);
  w[1] = 9.0;  // golden leaf
  const WeightedSolution s = solve_weighted_zero_sum(game, w);
  // Equalized damage: value v satisfies sum over leaves of (1 - v/w_l) = 1
  // (defender probabilities sum to one): 1 - v/9 + 3(1 - v) = 1 ->
  // v * (1/9 + 3) = 3 -> v = 27/28.
  EXPECT_NEAR(s.damage_value, 27.0 / 28.0, 1e-6);
}

TEST(ExpectedDamage, MatchesHandComputation) {
  const TupleGame game(graph::path_graph(3), 1, 2);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2}),
      TupleDistribution::uniform({{0}}));  // always defend (0,1)
  const std::vector<double> w{4.0, 1.0, 8.0};
  // Mass 1 on vertex 0 (covered) and 1 on vertex 2 (escapes, damage 8).
  EXPECT_DOUBLE_EQ(expected_damage(game, config, w), 8.0);
}

TEST(WeightedFictitiousPlay, ConvergesToTheLpDamageValue) {
  const TupleGame game(graph::star_graph(4), 1, 1);
  std::vector<double> w(5, 1.0);
  w[1] = 9.0;
  const auto fp = sim::weighted_fictitious_play(game, w, 4000);
  const double lp = solve_weighted_zero_sum(game, w).damage_value;
  EXPECT_NEAR(fp.value_estimate, lp, 0.05);
  EXPECT_GE(fp.trace.back().upper, lp - 1e-9);
  EXPECT_LE(fp.trace.back().lower, lp + 1e-9);
}

TEST(WeightedFictitiousPlay, UnitWeightsAgreeWithUnweightedDynamics) {
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const std::vector<double> w(6, 1.0);
  const auto weighted = sim::weighted_fictitious_play(game, w, 2000);
  const auto plain = sim::fictitious_play(game, 2000);
  // Damage value = 1 - hit value.
  EXPECT_NEAR(weighted.value_estimate, 1.0 - plain.value_estimate, 0.05);
}

}  // namespace
}  // namespace defender::core
