#include "core/expander_partition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(MakePartition, SplitsAndValidates) {
  const graph::Graph g = graph::cycle_graph(6);
  const Partition p = make_partition(g, {0, 2, 4});
  EXPECT_EQ(p.independent_set, (graph::VertexSet{0, 2, 4}));
  EXPECT_EQ(p.vertex_cover, (graph::VertexSet{1, 3, 5}));
  EXPECT_THROW(make_partition(g, {0, 1}), ContractViolation);
}

TEST(IsVcExpander, AlternatingCyclePartition) {
  const graph::Graph g = graph::cycle_graph(6);
  EXPECT_TRUE(is_vc_expander(g, make_partition(g, {0, 2, 4})));
}

TEST(IsVcExpander, TriangleSingletonFails) {
  // DESIGN.md interpretation note 1: the triangle pins down the "into IS"
  // reading — {b, c} cannot both be matched into the single IS vertex.
  const graph::Graph g = graph::complete_graph(3);
  EXPECT_FALSE(is_vc_expander(g, make_partition(g, {0})));
}

TEST(IsVcExpander, AgreesWithBruteForceOnSmallGraphs) {
  util::Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const graph::Graph g = graph::gnp_graph(7, 0.35, rng);
    // Build a random maximal independent set.
    std::vector<graph::Vertex> order(g.num_vertices());
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v) order[v] = v;
    util::shuffle(order, rng);
    std::vector<char> blocked(g.num_vertices(), 0);
    graph::VertexSet is;
    for (graph::Vertex v : order) {
      if (blocked[v]) continue;
      is.push_back(v);
      for (const auto& inc : g.neighbors(v)) blocked[inc.to] = 1;
    }
    const Partition p = make_partition(g, is);
    EXPECT_EQ(is_vc_expander(g, p),
              graph::is_expander_into_complement_bruteforce(g,
                                                            p.vertex_cover))
        << "trial " << trial;
  }
}

TEST(VcSaturatingMatching, WitnessPairsEveryCoverVertexIntoIs) {
  const graph::Graph g = graph::complete_bipartite(3, 5);
  const auto p = find_partition_bipartite(g);
  ASSERT_TRUE(p.has_value());
  const auto m = vc_saturating_matching(g, *p);
  ASSERT_TRUE(m.has_value());
  for (graph::Vertex v : p->vertex_cover) {
    EXPECT_TRUE(m->is_matched(v));
    EXPECT_TRUE(graph::contains(p->independent_set, m->mate(v)));
  }
}

TEST(FindPartitionBipartite, KonigPartitionOnFamilies) {
  for (const auto& g :
       {graph::path_graph(8), graph::cycle_graph(10), graph::grid_graph(3, 4),
        graph::hypercube_graph(3), graph::star_graph(7)}) {
    const auto p = find_partition_bipartite(g);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(graph::is_independent_set(g, p->independent_set));
    EXPECT_TRUE(graph::is_vertex_cover(g, p->vertex_cover));
    EXPECT_TRUE(is_vc_expander(g, *p));
  }
}

TEST(FindPartitionBipartite, RefusesNonBipartite) {
  EXPECT_FALSE(find_partition_bipartite(graph::petersen_graph()).has_value());
}

TEST(FindPartitionExhaustive, FindsPartitionOnOddCycle) {
  // C5 is non-bipartite yet admits a matching NE partition:
  // IS = {0, 2}, VC = {1, 3, 4}? No — |VC| > |IS| can't saturate. The
  // exhaustive search must settle this definitively.
  const auto p = find_partition_exhaustive(graph::cycle_graph(5));
  // For C5: any IS has size <= 2, so VC has size >= 3 > |IS| and can never
  // be saturated into IS. No partition exists.
  EXPECT_FALSE(p.has_value());
}

TEST(FindPartitionExhaustive, CompleteGraphHasNone) {
  EXPECT_FALSE(find_partition_exhaustive(graph::complete_graph(4)).has_value());
}

TEST(FindPartitionExhaustive, AgreesWithBipartiteRoute) {
  for (const auto& g : {graph::path_graph(6), graph::cycle_graph(8),
                        graph::complete_bipartite(2, 4)}) {
    EXPECT_TRUE(find_partition_exhaustive(g).has_value());
  }
}

TEST(FindPartitionGreedy, SucceedsOnStars) {
  const graph::Graph g = graph::star_graph(6);
  const auto p = find_partition_greedy(g);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->vertex_cover, (graph::VertexSet{0}));
}

TEST(FindPartition, DispatchCoversRepresentativeFamilies) {
  EXPECT_TRUE(find_partition(graph::grid_graph(4, 4)).has_value());
  EXPECT_TRUE(find_partition(graph::star_graph(9)).has_value());
  EXPECT_FALSE(find_partition(graph::complete_graph(5)).has_value());
}

TEST(FindPartition, PetersenGraphHasAPartition) {
  // Petersen: IS = a maximum independent set of size 4; VC = 6 vertices.
  // |VC| > |IS| means no saturating matching, so actually NO partition can
  // exist on the Petersen graph (any IS has at most 4 vertices).
  EXPECT_FALSE(find_partition(graph::petersen_graph()).has_value());
}

}  // namespace
}  // namespace defender::core
