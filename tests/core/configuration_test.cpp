#include "core/configuration.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TupleGame c6_game(std::size_t k = 2, std::size_t nu = 3) {
  return TupleGame(graph::cycle_graph(6), k, nu);
}

TEST(MakeTuple, SortsAndValidates) {
  const TupleGame game = c6_game(3);
  EXPECT_EQ(make_tuple(game, {5, 0, 2}), (Tuple{0, 2, 5}));
  EXPECT_THROW(make_tuple(game, {0, 1}), ContractViolation);      // wrong k
  EXPECT_THROW(make_tuple(game, {0, 1, 1}), ContractViolation);   // duplicate
  EXPECT_THROW(make_tuple(game, {0, 1, 99}), ContractViolation);  // range
}

TEST(TupleVertices, DistinctEndpoints) {
  const TupleGame game = c6_game(2);
  const graph::Graph& g = game.graph();
  const Tuple t{*g.edge_id(0, 1), *g.edge_id(1, 2)};
  EXPECT_EQ(tuple_vertices(g, t), (graph::VertexSet{0, 1, 2}));
}

TEST(VertexDistribution, UniformSplitsEvenly) {
  const VertexDistribution d = VertexDistribution::uniform({4, 0, 2});
  EXPECT_EQ(d.support().size(), 3u);
  EXPECT_TRUE(std::is_sorted(d.support().begin(), d.support().end()));
  for (double p : d.probs()) EXPECT_DOUBLE_EQ(p, 1.0 / 3);
  EXPECT_DOUBLE_EQ(d.prob(2), 1.0 / 3);
  EXPECT_DOUBLE_EQ(d.prob(1), 0.0);
}

TEST(VertexDistribution, ValidatesProbabilities) {
  EXPECT_THROW(VertexDistribution({0, 1}, {0.5, 0.4}), ContractViolation);
  EXPECT_THROW(VertexDistribution({0, 1}, {1.1, -0.1}), ContractViolation);
  EXPECT_THROW(VertexDistribution({1, 0}, {0.5, 0.5}), ContractViolation);
  EXPECT_THROW(VertexDistribution({}, {}), ContractViolation);
  EXPECT_NO_THROW(VertexDistribution({0, 1}, {0.25, 0.75}));
}

TEST(TupleDistribution, UniformAndEdgeUnion) {
  const TupleDistribution d = TupleDistribution::uniform({{0, 1}, {1, 2}});
  EXPECT_EQ(d.support().size(), 2u);
  EXPECT_DOUBLE_EQ(d.probs()[0], 0.5);
  EXPECT_EQ(d.edge_union(), (graph::EdgeSet{0, 1, 2}));
}

TEST(TupleDistribution, RejectsDuplicateTuples) {
  EXPECT_THROW(TupleDistribution::uniform({{0, 1}, {0, 1}}),
               ContractViolation);
}

TEST(TupleDistribution, RejectsUnsortedOrRepeatedEdges) {
  EXPECT_THROW(TupleDistribution::uniform({{1, 0}}), ContractViolation);
  EXPECT_THROW(TupleDistribution::uniform({{1, 1}}), ContractViolation);
}

TEST(SymmetricConfiguration, ReplicatesAttackerDistribution) {
  const TupleGame game = c6_game(2, 4);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 3}),
      TupleDistribution::uniform({{0, 1}, {2, 3}}));
  EXPECT_EQ(config.attackers.size(), 4u);
  for (const auto& d : config.attackers)
    EXPECT_EQ(d.support().size(), 2u);
  EXPECT_EQ(config.attacker_support_union(), (graph::VertexSet{0, 3}));
}

TEST(Validate, CatchesWrongAttackerCount) {
  const TupleGame game = c6_game(2, 3);
  MixedConfiguration config{
      {VertexDistribution::uniform({0})},  // one attacker instead of three
      TupleDistribution::uniform({{0, 1}})};
  EXPECT_THROW(validate(game, config), ContractViolation);
}

TEST(Validate, CatchesWrongTupleWidth) {
  const TupleGame game = c6_game(2, 1);
  MixedConfiguration config{{VertexDistribution::uniform({0})},
                            TupleDistribution::uniform({{0}})};
  EXPECT_THROW(validate(game, config), ContractViolation);
}

TEST(ToMixed, DegenerateDistributions) {
  const TupleGame game = c6_game(2, 2);
  PureConfiguration pure{{1, 4}, {0, 3}};
  const MixedConfiguration mixed = to_mixed(game, pure);
  EXPECT_EQ(mixed.attackers[0].support()[0], 1u);
  EXPECT_EQ(mixed.attackers[1].support()[0], 4u);
  EXPECT_EQ(mixed.defender.support()[0], (Tuple{0, 3}));
  EXPECT_DOUBLE_EQ(mixed.defender.probs()[0], 1.0);
}

TEST(Describe, MentionsPlayersAndEdges) {
  const TupleGame game = c6_game(1, 1);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0}),
      TupleDistribution::uniform({{0}}));
  const std::string s = describe(game, config);
  EXPECT_NE(s.find("vp_1"), std::string::npos);
  EXPECT_NE(s.find("tp:"), std::string::npos);
  EXPECT_NE(s.find("Pi_1(G)"), std::string::npos);
}

}  // namespace
}  // namespace defender::core
