#include "core/best_response.hpp"

#include <gtest/gtest.h>

#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(BestTupleExhaustive, FindsHeaviestPair) {
  const TupleGame game(graph::path_graph(5), 2, 1);
  // Mass concentrated on vertices 0 and 4: the optimal pair of edges is
  // {(0,1), (3,4)} with mass 1.0.
  const std::vector<double> masses{0.5, 0.0, 0.0, 0.0, 0.5};
  const BestTuple best = best_tuple_exhaustive(game, masses);
  EXPECT_DOUBLE_EQ(best.mass, 1.0);
  EXPECT_EQ(best.tuple, (Tuple{0, 3}));
}

TEST(BestTupleExhaustive, RespectsEnumerationLimit) {
  const TupleGame big(graph::complete_graph(30), 10, 1);  // C(435,10) huge
  const std::vector<double> masses(30, 1.0 / 30);
  EXPECT_THROW(best_tuple_exhaustive(big, masses), ContractViolation);
}

TEST(BestTupleBranchAndBound, AgreesWithExhaustiveOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp_graph(8, 0.4, rng);
    const std::size_t k = 1 + seed % std::min<std::size_t>(4, g.num_edges());
    const TupleGame game(g, k, 1);
    std::vector<double> masses(g.num_vertices());
    double sum = 0;
    for (double& m : masses) {
      m = rng.uniform01();
      sum += m;
    }
    for (double& m : masses) m /= sum;
    const BestTuple ex = best_tuple_exhaustive(game, masses);
    const BestTuple bb = best_tuple_branch_and_bound(game, masses);
    EXPECT_NEAR(ex.mass, bb.mass, 1e-9) << "seed " << seed << " k " << k;
    EXPECT_NEAR(tuple_mass(g, masses, bb.tuple), bb.mass, 1e-12);
  }
}

TEST(BestTupleBranchAndBound, OverlapForcesNonGreedyChoice) {
  // Star: every edge covers the hub, so two edges overlap there. With hub
  // mass large, the greedy per-edge bound overestimates; the exact optimum
  // must count the hub once.
  const TupleGame game(graph::star_graph(4), 2, 1);
  const std::vector<double> masses{0.8, 0.05, 0.05, 0.05, 0.05};
  const BestTuple best = best_tuple_branch_and_bound(game, masses);
  EXPECT_NEAR(best.mass, 0.9, 1e-12);  // hub + two leaves
}

TEST(BestTupleBranchAndBound, KEqualsMCoversWholeEdgeSet) {
  const TupleGame game(graph::cycle_graph(5), 5, 1);
  const std::vector<double> masses(5, 0.2);
  const BestTuple best = best_tuple_branch_and_bound(game, masses);
  EXPECT_NEAR(best.mass, 1.0, 1e-12);
  EXPECT_EQ(best.tuple.size(), 5u);
}

TEST(BestTupleAuto, DispatchesWithoutViolation) {
  const TupleGame small(graph::path_graph(4), 1, 1);
  const std::vector<double> masses{0.25, 0.25, 0.25, 0.25};
  EXPECT_NO_THROW(best_tuple(small, masses));
  const TupleGame big(graph::complete_graph(25), 8, 1);
  const std::vector<double> big_masses(25, 0.04);
  const BestTuple best = best_tuple(big, big_masses);
  EXPECT_NEAR(best.mass, 16 * 0.04, 1e-9);  // 8 disjoint edges
}

TEST(MinHitVertices, PicksAllMinimizers) {
  EXPECT_EQ(min_hit_vertices({0.5, 0.2, 0.2, 0.9}),
            (graph::VertexSet{1, 2}));
  EXPECT_EQ(min_hit_vertices({0.0, 0.0}), (graph::VertexSet{0, 1}));
  EXPECT_THROW(min_hit_vertices({}), ContractViolation);
}

TEST(MinHitVertices, ToleranceMergesNearTies) {
  EXPECT_EQ(min_hit_vertices({0.2, 0.2 + 1e-12, 0.5}, 1e-9),
            (graph::VertexSet{0, 1}));
}

}  // namespace
}  // namespace defender::core
