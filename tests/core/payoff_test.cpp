#include "core/payoff.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

// P4 = path 0-1-2-3, edge ids 0:(0,1) 1:(1,2) 2:(2,3).
TupleGame p4_game(std::size_t k, std::size_t nu) {
  return TupleGame(graph::path_graph(4), k, nu);
}

TEST(VertexMass, SumsAttackerProbabilities) {
  const TupleGame game = p4_game(1, 2);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 3}),
      TupleDistribution::uniform({{1}}));
  const std::vector<double> mass = vertex_mass(game, config);
  EXPECT_DOUBLE_EQ(mass[0], 1.0);  // 2 attackers x 1/2 each
  EXPECT_DOUBLE_EQ(mass[3], 1.0);
  EXPECT_DOUBLE_EQ(mass[1], 0.0);
  // Total mass is always nu.
  double total = 0;
  for (double m : mass) total += m;
  EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(VertexMass, HeterogeneousAttackers) {
  const TupleGame game = p4_game(1, 2);
  MixedConfiguration config{
      {VertexDistribution({0}, {1.0}), VertexDistribution({0, 2}, {0.25, 0.75})},
      TupleDistribution::uniform({{0}})};
  const std::vector<double> mass = vertex_mass(game, config);
  EXPECT_DOUBLE_EQ(mass[0], 1.25);
  EXPECT_DOUBLE_EQ(mass[2], 0.75);
}

TEST(HitProbabilities, UniformDefenderOverDisjointEdges) {
  const TupleGame game = p4_game(1, 1);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0}),
      TupleDistribution::uniform({{0}, {2}}));
  const std::vector<double> hit = hit_probabilities(game, config);
  EXPECT_DOUBLE_EQ(hit[0], 0.5);
  EXPECT_DOUBLE_EQ(hit[1], 0.5);
  EXPECT_DOUBLE_EQ(hit[2], 0.5);
  EXPECT_DOUBLE_EQ(hit[3], 0.5);
}

TEST(HitProbabilities, SharedEndpointCountedOncePerTuple) {
  // Tuple {0, 1} covers vertices {0, 1, 2}; vertex 1 is an endpoint of both
  // edges but must be hit with probability exactly 1, not 2.
  const TupleGame game = p4_game(2, 1);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0}),
      TupleDistribution::uniform({{0, 1}}));
  const std::vector<double> hit = hit_probabilities(game, config);
  EXPECT_DOUBLE_EQ(hit[1], 1.0);
  EXPECT_DOUBLE_EQ(hit[3], 0.0);
}

TEST(TupleMass, SumsDistinctEndpointMasses) {
  const TupleGame game = p4_game(2, 1);
  const std::vector<double> masses{0.5, 0.25, 0.25, 0.0};
  EXPECT_DOUBLE_EQ(tuple_mass(game.graph(), masses, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(tuple_mass(game.graph(), masses, {0, 2}), 1.0);
  EXPECT_THROW(tuple_mass(game.graph(), {0.5}, {0}), ContractViolation);
}

TEST(AttackerProfit, EscapeProbability) {
  const TupleGame game = p4_game(1, 1);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 3}),
      TupleDistribution::uniform({{0}}));  // covers {0,1}
  // Attacker sits on 0 (hit) or 3 (safe) with probability 1/2 each.
  EXPECT_DOUBLE_EQ(attacker_profit(game, config, 0), 0.5);
}

TEST(DefenderProfit, EquationTwoOnSmallExample) {
  const TupleGame game = p4_game(1, 2);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 3}),
      TupleDistribution::uniform({{0}, {2}}));
  // Each tuple covers exactly one attacker-support vertex of mass 1.
  EXPECT_DOUBLE_EQ(defender_profit(game, config), 1.0);
}

TEST(DefenderProfit, ConsistentWithAttackerProfits) {
  // IP_tp = sum over attackers of (1 - IP_i) whenever all attackers play
  // inside the defended region.
  const TupleGame game = p4_game(2, 3);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2}),
      TupleDistribution::uniform({{0, 2}, {1, 2}}));
  double caught = 0;
  for (std::size_t i = 0; i < 3; ++i)
    caught += 1.0 - attacker_profit(game, config, i);
  EXPECT_NEAR(defender_profit(game, config), caught, 1e-12);
}

TEST(PureProfits, CountsArrests) {
  const TupleGame game = p4_game(1, 3);
  const PureConfiguration config{{0, 1, 3}, {0}};  // edge (0,1) covers 0,1
  const PureProfits p = pure_profits(game, config);
  EXPECT_EQ(p.defender, 2u);
  EXPECT_EQ(p.attackers, (std::vector<std::uint8_t>{0, 0, 1}));
}

TEST(PureProfits, ValidatesShape) {
  const TupleGame game = p4_game(1, 2);
  EXPECT_THROW(pure_profits(game, PureConfiguration{{0}, {0}}),
               ContractViolation);
  EXPECT_THROW(pure_profits(game, PureConfiguration{{0, 9}, {0}}),
               ContractViolation);
}

}  // namespace
}  // namespace defender::core
