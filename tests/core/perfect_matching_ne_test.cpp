#include "core/perfect_matching_ne.hpp"

#include <gtest/gtest.h>

#include "core/analytics.hpp"
#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(HasPerfectMatching, KnownFamilies) {
  EXPECT_TRUE(has_perfect_matching(graph::cycle_graph(8)));
  EXPECT_FALSE(has_perfect_matching(graph::cycle_graph(7)));
  EXPECT_TRUE(has_perfect_matching(graph::complete_graph(6)));
  EXPECT_TRUE(has_perfect_matching(graph::petersen_graph()));
  EXPECT_TRUE(has_perfect_matching(graph::hypercube_graph(3)));
  EXPECT_FALSE(has_perfect_matching(graph::star_graph(3)));
  EXPECT_FALSE(has_perfect_matching(graph::path_graph(5)));  // odd n
}

TEST(FindPerfectMatchingNe, NulloptWithoutPerfectMatching) {
  const TupleGame game(graph::star_graph(4), 1, 1);
  EXPECT_FALSE(find_perfect_matching_ne(game).has_value());
}

TEST(FindPerfectMatchingNe, SupportsAreCyclicWindowsOfTheMatching) {
  const TupleGame game(graph::cycle_graph(8), 3, 2);
  const auto ne = find_perfect_matching_ne(game);
  ASSERT_TRUE(ne.has_value());
  EXPECT_EQ(ne->matching.size(), 4u);
  // delta = 4/gcd(4,3) = 4 tuples, each edge in alpha = 3 of them.
  EXPECT_EQ(ne->tp_support.size(), 4u);
  std::vector<std::size_t> count(game.graph().num_edges(), 0);
  for (const Tuple& t : ne->tp_support)
    for (graph::EdgeId e : t) ++count[e];
  for (graph::EdgeId e : ne->matching) EXPECT_EQ(count[e], 3u);
}

TEST(PerfectMatchingNe, IsAMixedNashEquilibriumByBestResponse) {
  // The family is NOT a k-matching configuration (D(VP) = V is dependent),
  // so the definition-level check is the right verifier.
  for (const auto& g :
       {graph::cycle_graph(8), graph::complete_graph(6),
        graph::petersen_graph(), graph::hypercube_graph(3)}) {
    for (std::size_t k = 1; k <= 3; ++k) {
      const TupleGame game(g, k, 3);
      const auto ne = find_perfect_matching_ne(game);
      ASSERT_TRUE(ne.has_value()) << "k=" << k;
      EXPECT_TRUE(is_mixed_ne_by_best_response(
          game, to_configuration(game, *ne), Oracle::kBranchAndBound))
          << "n=" << g.num_vertices() << " k=" << k;
    }
  }
}

TEST(PerfectMatchingNe, HitProbabilityIsTwoKOverN) {
  const TupleGame game(graph::petersen_graph(), 2, 5);
  const auto ne = find_perfect_matching_ne(game);
  ASSERT_TRUE(ne.has_value());
  const MixedConfiguration config = to_configuration(game, *ne);
  const auto hit = hit_probabilities(game, config);
  for (graph::Vertex v = 0; v < 10; ++v)
    EXPECT_NEAR(hit[v], 0.4, 1e-12);  // 2k/n = 4/10
  EXPECT_NEAR(analytic_hit_probability(game, *ne), 0.4, 1e-12);
  EXPECT_NEAR(defender_profit(game, config), 2.0, 1e-12);  // 2k nu / n
  EXPECT_NEAR(analytic_defender_profit(game, *ne), 2.0, 1e-12);
}

TEST(PerfectMatchingNe, IsDefenseOptimal) {
  const TupleGame game(graph::cycle_graph(10), 3, 4);
  const auto ne = find_perfect_matching_ne(game);
  ASSERT_TRUE(ne.has_value());
  EXPECT_NEAR(
      defense_optimality(game, analytic_hit_probability(game, *ne)), 1.0,
      1e-12);
}

TEST(PerfectMatchingNe, BeatsKMatchingGainWhenIsExceedsHalf) {
  // Star-free bipartite board where |IS| > n/2: the k-matching NE yields
  // k*nu/|IS| < 2k*nu/n, but stars have no perfect matching; use a board
  // with both equilibria: C8 (|IS| = 4 = n/2) gives equality.
  const TupleGame game(graph::cycle_graph(8), 2, 4);
  const auto pm = find_perfect_matching_ne(game);
  ASSERT_TRUE(pm.has_value());
  EXPECT_NEAR(analytic_defender_profit(game, *pm), 2.0 * 2 * 4 / 8, 1e-12);
}

TEST(PerfectMatchingNe, RejectsKBeyondHalfN) {
  const TupleGame game(graph::cycle_graph(6), 4, 1);
  EXPECT_THROW(find_perfect_matching_ne(game), ContractViolation);
}

TEST(DefenseRatioHelpers, BasicAlgebra) {
  const TupleGame game(graph::cycle_graph(10), 2, 6);
  EXPECT_DOUBLE_EQ(coverage_ceiling(game), 0.4);
  EXPECT_DOUBLE_EQ(defense_ratio(game, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(defense_optimality(game, 0.2), 0.5);
  EXPECT_THROW(defense_ratio(game, 0.0), ContractViolation);
  const TupleGame strong(graph::cycle_graph(10), 9, 1);
  EXPECT_DOUBLE_EQ(coverage_ceiling(strong), 1.0);  // capped
}

TEST(PerfectMatchingNe, RandomEvenGnpBoards) {
  util::Rng rng(606);
  std::size_t verified = 0;
  for (int trial = 0; trial < 20 && verified < 6; ++trial) {
    const graph::Graph g = graph::gnp_graph(8, 0.5, rng);
    if (!has_perfect_matching(g)) continue;
    const TupleGame game(g, 2, 2);
    const auto ne = find_perfect_matching_ne(game);
    ASSERT_TRUE(ne.has_value());
    EXPECT_TRUE(is_mixed_ne_by_best_response(
        game, to_configuration(game, *ne), Oracle::kBranchAndBound))
        << "trial " << trial;
    ++verified;
  }
  EXPECT_GE(verified, 3u);
}

}  // namespace
}  // namespace defender::core
