#include "core/double_oracle.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/k_matching.hpp"
#include "core/perfect_matching_ne.hpp"
#include "core/weighted.hpp"
#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(DoubleOracle, MatchesFullLpOnSmallBoards) {
  util::Rng rng(1717);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::Graph g = graph::gnp_graph(7, 0.4, rng);
    for (std::size_t k = 1; k <= 2; ++k) {
      if (g.num_edges() < k) continue;
      const TupleGame game(g, k, 1);
      if (game.num_tuples() > 1500) continue;
      const double full = solve_zero_sum(game).value;
      const DoubleOracleResult dor = solve_double_oracle(game);
      EXPECT_NEAR(dor.value, full, 1e-7) << "trial " << trial << " k=" << k;
    }
  }
}

TEST(DoubleOracle, MatchesAnalyticValuesOnStructuredBoards) {
  // C6, k: value k/3. Star S6, k: value k/6. C8 PM: 2k/8.
  for (std::size_t k = 1; k <= 3; ++k) {
    EXPECT_NEAR(
        solve_double_oracle(TupleGame(graph::cycle_graph(6), k, 1)).value,
        static_cast<double>(k) / 3.0, 1e-7);
  }
  EXPECT_NEAR(
      solve_double_oracle(TupleGame(graph::star_graph(6), 2, 1)).value,
      2.0 / 6, 1e-7);
  EXPECT_NEAR(
      solve_double_oracle(TupleGame(graph::cycle_graph(8), 3, 1)).value,
      6.0 / 8, 1e-7);
}

TEST(DoubleOracle, SolvesBeyondEnumerationLimits) {
  // Grid 5x5: m = 40, k = 5 -> C(40,5) = 658008 tuples; the direct LP
  // refuses, the double oracle closes in a handful of iterations.
  const graph::Graph g = graph::grid_graph(5, 5);
  const TupleGame game(g, 5, 1);
  EXPECT_THROW(solve_zero_sum(game), ContractViolation);
  const DoubleOracleResult dor = solve_double_oracle(game, 1e-9, 500);
  // Analytic: grid 5x5 admits a k-matching NE with |IS| = 13 (the colour
  // class majority), so the unique value is 5/13.
  const auto result = a_tuple_bipartite(game);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(dor.value,
              analytic_hit_probability(game, result->k_matching_ne), 1e-7);
  EXPECT_NEAR(dor.value, 5.0 / 13.0, 1e-7);
  EXPECT_LT(dor.defender_set_size, 60u);
}

TEST(DoubleOracle, ResultStrategiesAreAMutualBestResponse) {
  const TupleGame game(graph::grid_graph(3, 4), 3, 2);
  const DoubleOracleResult dor = solve_double_oracle(game);
  const MixedConfiguration config =
      symmetric_configuration(game, dor.attacker, dor.defender);
  EXPECT_TRUE(is_mixed_ne_by_best_response(game, config,
                                           Oracle::kBranchAndBound, 1e-6));
}

TEST(DoubleOracle, SupportsStayCompact) {
  const TupleGame game(graph::hypercube_graph(4), 4, 1);
  const DoubleOracleResult dor = solve_double_oracle(game);
  EXPECT_NEAR(dor.value, 0.5, 1e-7);  // 2k/n = 8/16 (Q4 has a PM)
  EXPECT_LE(dor.defender.support().size(), dor.defender_set_size);
  EXPECT_GT(dor.iterations, 0u);
}

TEST(DoubleOracle, NonBipartiteBoards) {
  // Petersen, k = 2: perfect matching gives value 2k/n = 0.4.
  const TupleGame game(graph::petersen_graph(), 2, 1);
  EXPECT_NEAR(solve_double_oracle(game).value, 0.4, 1e-7);
  // C7 (odd, no PM, no partition), k = 1: value is the fractional one 2/7
  // (edge-uniform regular-graph NE).
  const TupleGame c7(graph::cycle_graph(7), 1, 1);
  EXPECT_NEAR(solve_double_oracle(c7).value, 2.0 / 7, 1e-7);
}


TEST(WeightedDoubleOracle, MatchesFullDamageLpOnSmallBoards) {
  util::Rng rng(9090);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::gnp_graph(6, 0.4, rng);
    const TupleGame game(g, 1, 1);
    std::vector<double> w(g.num_vertices());
    for (double& x : w) x = rng.uniform(0.5, 5.0);
    const double lp = solve_weighted_zero_sum(game, w).damage_value;
    const DoubleOracleResult dor = solve_weighted_double_oracle(game, w);
    EXPECT_NEAR(dor.value, lp, 1e-6 + dor.gap) << "trial " << trial;
  }
}

TEST(WeightedDoubleOracle, GoldenStarClosedForm) {
  const TupleGame game(graph::star_graph(4), 1, 1);
  std::vector<double> w(5, 1.0);
  w[1] = 9.0;
  const DoubleOracleResult dor = solve_weighted_double_oracle(game, w);
  EXPECT_NEAR(dor.value, 27.0 / 28.0, 1e-6);
}

TEST(WeightedDoubleOracle, UnitWeightsComplementTheCoverageValue) {
  for (std::size_t k = 1; k <= 2; ++k) {
    const TupleGame game(graph::cycle_graph(8), k, 1);
    const std::vector<double> w(8, 1.0);
    const double damage = solve_weighted_double_oracle(game, w).value;
    const double hit = solve_double_oracle(game).value;
    EXPECT_NEAR(damage, 1.0 - hit, 1e-6) << "k=" << k;
  }
}

TEST(WeightedDoubleOracle, ScalesBeyondTheDamageMatrixCap) {
  // Grid 6x6 with a golden centre, k = 4: C(60,4) = 487635 columns would
  // blow the dense damage matrix, but the oracle loop closes quickly.
  const graph::Graph g = graph::grid_graph(6, 6);
  const TupleGame game(g, 4, 1);
  std::vector<double> w(36, 1.0);
  w[14] = 20.0;  // an interior high-value host
  EXPECT_THROW(solve_weighted_zero_sum(game, w), ContractViolation);
  const DoubleOracleResult dor = solve_weighted_double_oracle(game, w);
  EXPECT_GT(dor.value, 0.0);
  EXPECT_LT(dor.value, 1.0);  // the golden host itself must end covered
  EXPECT_LE(dor.gap, 1e-4);
}

}  // namespace
}  // namespace defender::core
