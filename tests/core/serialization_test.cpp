#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TupleGame c6_game() { return TupleGame(graph::cycle_graph(6), 2, 3); }

MixedConfiguration sample_config(const TupleGame& game) {
  const auto result = a_tuple_bipartite(game);
  EXPECT_TRUE(result.has_value());
  return result->configuration;
}

TEST(Serialization, RoundTripsExactly) {
  const TupleGame game = c6_game();
  const MixedConfiguration original = sample_config(game);
  const MixedConfiguration restored =
      from_text(game, to_text(game, original));
  // Payoff-relevant state must survive bit-exactly.
  EXPECT_EQ(vertex_mass(game, original), vertex_mass(game, restored));
  EXPECT_EQ(hit_probabilities(game, original),
            hit_probabilities(game, restored));
  EXPECT_DOUBLE_EQ(defender_profit(game, original),
                   defender_profit(game, restored));
  EXPECT_EQ(restored.defender.support().size(),
            original.defender.support().size());
}

TEST(Serialization, HeaderAndGameLineArePresent) {
  const TupleGame game = c6_game();
  const std::string text = to_text(game, sample_config(game));
  EXPECT_EQ(text.rfind("defender-configuration v1\n", 0), 0u);
  EXPECT_NE(text.find("game 6 6 2 3"), std::string::npos);
}

TEST(Serialization, RejectsWrongHeader) {
  const TupleGame game = c6_game();
  EXPECT_THROW(from_text(game, "bogus v9\n"), ContractViolation);
  EXPECT_THROW(from_text(game, ""), ContractViolation);
}

TEST(Serialization, RejectsGameMismatch) {
  const TupleGame game = c6_game();
  const std::string text = to_text(game, sample_config(game));
  const TupleGame other(graph::cycle_graph(8), 2, 3);
  EXPECT_THROW(from_text(other, text), ContractViolation);
  const TupleGame other_k(graph::cycle_graph(6), 3, 3);
  EXPECT_THROW(from_text(other_k, text), ContractViolation);
}

TEST(Serialization, RejectsTruncatedBody) {
  const TupleGame game = c6_game();
  std::string text = to_text(game, sample_config(game));
  text.resize(text.size() / 2);
  EXPECT_THROW(from_text(game, text), ContractViolation);
}

TEST(Serialization, RejectsCorruptedProbabilities) {
  const TupleGame game = c6_game();
  std::string text = to_text(game, sample_config(game));
  // Break normalization: double one tuple probability.
  const auto pos = text.find("tuple 0.3");
  if (pos != std::string::npos) {
    text.replace(pos, 9, "tuple 0.9");
    EXPECT_THROW(from_text(game, text), ContractViolation);
  }
}

TEST(Serialization, HandlesHeterogeneousAttackers) {
  const TupleGame game(graph::path_graph(4), 1, 2);
  MixedConfiguration config{
      {VertexDistribution({0}, {1.0}), VertexDistribution({1, 3}, {0.25, 0.75})},
      TupleDistribution({{0}, {2}}, {0.5, 0.5})};
  const MixedConfiguration restored = from_text(game, to_text(game, config));
  EXPECT_DOUBLE_EQ(restored.attackers[1].prob(3), 0.75);
  EXPECT_DOUBLE_EQ(restored.attackers[1].prob(1), 0.25);
  EXPECT_DOUBLE_EQ(restored.attackers[0].prob(0), 1.0);
}

}  // namespace
}  // namespace defender::core
