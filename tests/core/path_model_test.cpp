#include "core/path_model.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TEST(PathGame, ValidatesParameters) {
  EXPECT_NO_THROW(PathGame(graph::cycle_graph(5), 3, 2));
  EXPECT_THROW(PathGame(graph::cycle_graph(5), 0, 1), ContractViolation);
  EXPECT_THROW(PathGame(graph::cycle_graph(5), 5, 1), ContractViolation);
  EXPECT_THROW(PathGame(graph::cycle_graph(5), 1, 0), ContractViolation);
}

TEST(ValidatePath, EnforcesShape) {
  const PathGame game(graph::path_graph(5), 2, 1);
  EXPECT_NO_THROW(
      validate_path(game, std::vector<graph::Vertex>{0, 1, 2}));
  EXPECT_THROW(validate_path(game, std::vector<graph::Vertex>{0, 1}),
               ContractViolation);  // wrong edge count
  EXPECT_THROW(validate_path(game, std::vector<graph::Vertex>{0, 2, 3}),
               ContractViolation);  // not a path
}

TEST(IsPureNe, CoverAllCriterion) {
  const PathGame game(graph::path_graph(4), 3, 2);
  EXPECT_TRUE(is_pure_ne(
      game, PurePathConfiguration{{0, 0}, {0, 1, 2, 3}}));
  const PathGame partial(graph::path_graph(4), 2, 2);
  EXPECT_FALSE(is_pure_ne(
      partial, PurePathConfiguration{{0, 0}, {0, 1, 2}}));
}

TEST(PureNeExists, RequiresHamiltonianPathAndFullLength) {
  // P5: Hamiltonian path exists, so pure NE iff k = n-1 = 4.
  EXPECT_TRUE(pure_ne_exists(PathGame(graph::path_graph(5), 4, 1)));
  EXPECT_FALSE(pure_ne_exists(PathGame(graph::path_graph(5), 3, 1)));
  // Stars have no Hamiltonian path.
  EXPECT_FALSE(pure_ne_exists(PathGame(graph::star_graph(4), 4, 1)));
}

TEST(FindPureNe, ProducesVerifiedWitness) {
  const PathGame game(graph::grid_graph(3, 3), 8, 3);
  const auto config = find_pure_ne(game);
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(is_pure_ne(game, *config));
  EXPECT_FALSE(
      find_pure_ne(PathGame(graph::star_graph(5), 5, 1)).has_value());
}

TEST(IsCycle, DetectsCyclesOnly) {
  EXPECT_TRUE(is_cycle(graph::cycle_graph(5)));
  EXPECT_TRUE(is_cycle(graph::cycle_graph(12)));
  EXPECT_FALSE(is_cycle(graph::path_graph(5)));
  EXPECT_FALSE(is_cycle(graph::wheel_graph(4)));
  EXPECT_FALSE(is_cycle(graph::complete_graph(4)));
}

TEST(CycleRotation, SupportEnumeratesAllArcs) {
  const PathGame game(graph::cycle_graph(7), 3, 2);
  const auto support = cycle_rotation_support(game);
  EXPECT_EQ(support.size(), 7u);
  for (const auto& arc : support) {
    EXPECT_EQ(arc.size(), 4u);
    EXPECT_NO_THROW(validate_path(game, arc));
  }
}

TEST(CycleRotation, HitProbabilityIsUniformKPlus1OverN) {
  const PathGame game(graph::cycle_graph(8), 3, 4);
  const auto support = cycle_rotation_support(game);
  // Each vertex appears in exactly k+1 of the n arcs.
  std::vector<std::size_t> appearances(8, 0);
  for (const auto& arc : support)
    for (graph::Vertex v : arc) ++appearances[v];
  for (std::size_t a : appearances) EXPECT_EQ(a, 4u);  // k+1
  EXPECT_DOUBLE_EQ(cycle_rotation_hit_probability(game), 0.5);
  EXPECT_DOUBLE_EQ(cycle_rotation_defender_profit(game), 2.0);
}

TEST(CycleRotation, RotationMixIsAMutualBestResponse) {
  // Verify the equilibrium property directly: with uniform attackers,
  // every k-arc has the same covered mass (k+1)*nu/n, and no simple path
  // of k edges can cover more than k+1 vertices, so every arc is optimal;
  // with uniform arcs, every vertex has the same hit probability, so every
  // vertex is an attacker best response.
  const PathGame game(graph::cycle_graph(9), 2, 3);
  const auto support = cycle_rotation_support(game);
  const double mass_per_vertex = 3.0 / 9.0;
  for (const auto& arc : support)
    EXPECT_DOUBLE_EQ(static_cast<double>(arc.size()) * mass_per_vertex,
                     3.0 * 3.0 / 9.0);
}

TEST(CycleRotation, RejectsNonCyclesAndOversizedArcs) {
  EXPECT_THROW(cycle_rotation_support(PathGame(graph::path_graph(5), 2, 1)),
               ContractViolation);
  EXPECT_THROW(cycle_rotation_support(PathGame(graph::cycle_graph(5), 4, 1)),
               ContractViolation);
}

class CycleRotationSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CycleRotationSweep, EveryVertexInExactlyKPlus1Arcs) {
  const auto [n, k] = GetParam();
  if (k > n - 2) GTEST_SKIP();
  const PathGame game(graph::cycle_graph(n), k, 1);
  const auto support = cycle_rotation_support(game);
  std::vector<std::size_t> appearances(n, 0);
  for (const auto& arc : support)
    for (graph::Vertex v : arc) ++appearances[v];
  for (std::size_t a : appearances) EXPECT_EQ(a, k + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Cycles, CycleRotationSweep,
    ::testing::Combine(::testing::Values<std::size_t>(5, 8, 11, 16),
                       ::testing::Values<std::size_t>(1, 2, 3, 6)));

}  // namespace
}  // namespace defender::core
