// Every non-kOk status path of the budgeted solvers: iteration limits,
// deadlines, oracle-node truncation, and input rejection. The common
// contract under test: budget exhaustion NEVER throws, and the returned
// bounds always bracket the true game value.
#include <gtest/gtest.h>

#include <vector>

#include "core/best_response.hpp"
#include "core/budget.hpp"
#include "core/double_oracle.hpp"
#include "core/status.hpp"
#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "sim/fictitious_play.hpp"
#include "sim/multiplicative_weights.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TupleGame petersen_game() { return TupleGame(graph::petersen_graph(), 2, 2); }

double petersen_value() {
  static const double value = solve_zero_sum(petersen_game()).value;
  return value;
}

TEST(DoubleOracleBudget, IterationLimitReturnsCertifiedBracket) {
  const TupleGame game = petersen_game();
  Solved<DoubleOracleResult> solved;
  EXPECT_NO_THROW(solved = solve_double_oracle_budgeted(
                      game, 1e-9, SolveBudget::iterations(1)));
  EXPECT_EQ(solved.status.code, StatusCode::kIterationLimit);
  EXPECT_FALSE(solved.status.message.empty());
  EXPECT_TRUE(solved.result.approximate);
  EXPECT_LE(solved.result.lower_bound, petersen_value() + 1e-9);
  EXPECT_GE(solved.result.upper_bound, petersen_value() - 1e-9);
  EXPECT_GE(solved.result.value, solved.result.lower_bound);
  EXPECT_LE(solved.result.value, solved.result.upper_bound);
  // The partial mixes must still be valid distributions.
  EXPECT_FALSE(solved.result.defender.support().empty());
  EXPECT_FALSE(solved.result.attacker.support().empty());
}

TEST(DoubleOracleBudget, DeadlineExpiryMidSolve) {
  const TupleGame game = petersen_game();
  Solved<DoubleOracleResult> solved;
  EXPECT_NO_THROW(solved = solve_double_oracle_budgeted(
                      game, 1e-9, SolveBudget::deadline(1e-9)));
  EXPECT_EQ(solved.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_LE(solved.result.lower_bound, petersen_value() + 1e-9);
  EXPECT_GE(solved.result.upper_bound, petersen_value() - 1e-9);
}

TEST(DoubleOracleBudget, UnlimitedBudgetStillSolvesExactly) {
  const TupleGame game = petersen_game();
  const Solved<DoubleOracleResult> solved = solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::unlimited_budget());
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.result.value, petersen_value(), 1e-6);
  EXPECT_NEAR(solved.result.lower_bound, solved.result.upper_bound, 1e-4);
  EXPECT_FALSE(solved.result.approximate);
}

TEST(DoubleOracleBudget, OracleNodeBudgetTruncationKeepsBoundsSound) {
  // A star makes every edge share the center, so the top-k edge-mass bound
  // overcounts and the branch-and-bound cannot finish at the root: a node
  // budget of 1 genuinely truncates the oracle (on vertex-transitive boards
  // like Petersen the greedy incumbent meets the bound and the search
  // completes within one node, budget or not).
  const TupleGame game(graph::star_graph(5), 2, 2);
  const double exact = solve_zero_sum(game).value;
  SolveBudget budget;
  budget.max_iterations = 50;
  budget.oracle_node_budget = 1;  // truncate every branch-and-bound call
  Solved<DoubleOracleResult> solved;
  EXPECT_NO_THROW(solved = solve_double_oracle_budgeted(game, 1e-9, budget));
  EXPECT_TRUE(solved.result.approximate);
  EXPECT_LE(solved.result.lower_bound, exact + 1e-9);
  EXPECT_GE(solved.result.upper_bound, exact - 1e-9);
}

TEST(WeightedDoubleOracleBudget, IterationLimitBracketsWeightedValue) {
  const TupleGame game = petersen_game();
  const std::vector<double> weights(game.graph().num_vertices(), 2.0);
  const double exact =
      solve_weighted_double_oracle(game, weights).value;
  Solved<DoubleOracleResult> solved;
  EXPECT_NO_THROW(solved = solve_weighted_double_oracle_budgeted(
                      game, weights, 1e-9, SolveBudget::iterations(1)));
  EXPECT_EQ(solved.status.code, StatusCode::kIterationLimit);
  EXPECT_LE(solved.result.lower_bound, exact + 1e-9);
  EXPECT_GE(solved.result.upper_bound, exact - 1e-9);
  EXPECT_GE(solved.result.value, solved.result.lower_bound);
  EXPECT_LE(solved.result.value, solved.result.upper_bound);
}

TEST(BestResponseBudget, NodeBudgetTruncationReportsCompletionBound) {
  // Heavy center + diffuse leaves: the two heaviest edges overlap on the
  // center, so greedy (0.7) sits strictly below the completion bound
  // (min(1.2, total) = 1.0) and the search must branch — guaranteeing a
  // node budget of 1 truncates instead of finishing at the root.
  const TupleGame game(graph::star_graph(5), 2, 2);
  const std::vector<double> masses{0.5, 0.1, 0.1, 0.1, 0.1, 0.1};
  const BestTupleSearch full =
      best_tuple_branch_and_bound_budgeted(game, masses, 0);
  EXPECT_FALSE(full.truncated);
  EXPECT_DOUBLE_EQ(full.upper_bound, full.best.mass);

  const BestTupleSearch truncated =
      best_tuple_branch_and_bound_budgeted(game, masses, 1);
  EXPECT_TRUE(truncated.truncated);
  // The incumbent is feasible (a lower bound) and the completion bound
  // must dominate the true optimum.
  EXPECT_LE(truncated.best.mass, full.best.mass + 1e-12);
  EXPECT_GE(truncated.upper_bound, full.best.mass - 1e-12);
}

TEST(FictitiousPlayBudget, IterationLimitWithOpenGap) {
  const TupleGame game = petersen_game();
  Solved<sim::FictitiousPlayResult> solved;
  EXPECT_NO_THROW(solved = sim::fictitious_play_budgeted(
                      game, SolveBudget::iterations(3), 1e-12));
  EXPECT_EQ(solved.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(solved.result.rounds, 3u);
  ASSERT_FALSE(solved.result.trace.empty());
  const auto& last = solved.result.trace.back();
  EXPECT_LE(last.lower, petersen_value() + 1e-9);
  EXPECT_GE(last.upper, petersen_value() - 1e-9);
}

TEST(FictitiousPlayBudget, DeadlineExpiryStillPlaysOneRound) {
  const TupleGame game = petersen_game();
  SolveBudget budget;
  budget.wall_clock_seconds = 1e-9;
  Solved<sim::FictitiousPlayResult> solved;
  EXPECT_NO_THROW(solved = sim::fictitious_play_budgeted(game, budget, 1e-12));
  EXPECT_EQ(solved.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_GE(solved.result.rounds, 1u);
  EXPECT_FALSE(solved.result.trace.empty());
}

TEST(FictitiousPlayBudget, LooseGapTargetConvergesOk) {
  const TupleGame game = petersen_game();
  const Solved<sim::FictitiousPlayResult> solved =
      sim::fictitious_play_budgeted(game, SolveBudget::iterations(5000), 0.5);
  EXPECT_TRUE(solved.ok());
  EXPECT_LE(solved.result.gap, 0.5 + 1e-12);
}

TEST(FictitiousPlayBudget, RequiresSomeBound) {
  const TupleGame game = petersen_game();
  EXPECT_THROW(sim::fictitious_play_budgeted(
                   game, SolveBudget::unlimited_budget(), 0),
               ContractViolation);
}

TEST(WeightedFictitiousPlayBudget, IterationLimitBracketsWeightedValue) {
  const TupleGame game = petersen_game();
  const std::vector<double> weights(game.graph().num_vertices(), 1.5);
  const double exact =
      solve_weighted_double_oracle(game, weights).value;
  Solved<sim::FictitiousPlayResult> solved;
  EXPECT_NO_THROW(solved = sim::weighted_fictitious_play_budgeted(
                      game, weights, SolveBudget::iterations(3), 1e-12));
  EXPECT_EQ(solved.status.code, StatusCode::kIterationLimit);
  const auto& last = solved.result.trace.back();
  EXPECT_LE(last.lower, exact + 1e-9);
  EXPECT_GE(last.upper, exact - 1e-9);
}

TEST(HedgeBudget, IterationLimitWithOpenGap) {
  const TupleGame game = petersen_game();
  Solved<sim::HedgeResult> solved;
  EXPECT_NO_THROW(solved = sim::hedge_dynamics_budgeted(
                      game, SolveBudget::iterations(2), 1e-12));
  EXPECT_EQ(solved.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(solved.result.rounds, 2u);
  const auto& last = solved.result.trace.back();
  EXPECT_LE(last.lower, petersen_value() + 1e-9);
  EXPECT_GE(last.upper, petersen_value() - 1e-9);
}

TEST(HedgeBudget, DeadlineExpiryStillPlaysOneRound) {
  const TupleGame game = petersen_game();
  SolveBudget budget;
  budget.max_iterations = 100000;
  budget.wall_clock_seconds = 1e-9;
  Solved<sim::HedgeResult> solved;
  EXPECT_NO_THROW(solved = sim::hedge_dynamics_budgeted(game, budget, 1e-12));
  EXPECT_EQ(solved.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_GE(solved.result.rounds, 1u);
}

TEST(HedgeBudget, RequiresRoundHorizon) {
  const TupleGame game = petersen_game();
  EXPECT_THROW(
      sim::hedge_dynamics_budgeted(game, SolveBudget::deadline(1.0), 1e-6),
      ContractViolation);
}

TEST(ZeroSumBudget, PivotLimitReturnsSecurityLevelBracket) {
  const TupleGame game = petersen_game();
  Solved<lp::MatrixGameSolution> solved;
  EXPECT_NO_THROW(
      solved = solve_zero_sum_budgeted(game, SolveBudget::iterations(1)));
  EXPECT_FALSE(solved.ok());
  EXPECT_LE(solved.result.lower_bound, petersen_value() + 1e-9);
  EXPECT_GE(solved.result.upper_bound, petersen_value() - 1e-9);
  EXPECT_GE(solved.result.value, solved.result.lower_bound - 1e-12);
  EXPECT_LE(solved.result.value, solved.result.upper_bound + 1e-12);
}

TEST(ZeroSumBudget, OversizedInstanceIsInvalidInputNotACrash) {
  const TupleGame game = petersen_game();  // C(15,2) = 105 tuples
  Solved<lp::MatrixGameSolution> solved;
  EXPECT_NO_THROW(solved = solve_zero_sum_budgeted(
                      game, SolveBudget::unlimited_budget(), 10));
  EXPECT_EQ(solved.status.code, StatusCode::kInvalidInput);
  EXPECT_NE(solved.status.message.find("double-oracle"), std::string::npos);
}

TEST(ZeroSumBudget, UnlimitedBudgetMatchesLegacySolver) {
  const TupleGame game = petersen_game();
  const Solved<lp::MatrixGameSolution> solved =
      solve_zero_sum_budgeted(game, SolveBudget::unlimited_budget());
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.result.value, petersen_value(), 1e-9);
  EXPECT_NEAR(solved.result.lower_bound, solved.result.upper_bound, 1e-7);
}

TEST(StatusDescribe, CarriesCodeAndContext) {
  const Status s = Status::make(StatusCode::kIterationLimit, "budget gone",
                                7, 0.25, 0.5);
  const std::string text = s.describe();
  EXPECT_NE(text.find("iteration-limit"), std::string::npos);
  EXPECT_NE(text.find("budget gone"), std::string::npos);
  EXPECT_NE(text.find("iterations=7"), std::string::npos);
}

TEST(SolvedValueOrThrow, ThrowsTheDescribedStatus) {
  Solved<int> solved;
  solved.result = 42;
  solved.status = Status::make(StatusCode::kDeadlineExceeded, "too slow");
  EXPECT_THROW(solved.value_or_throw(), ContractViolation);
  solved.status = Status::make_ok();
  EXPECT_EQ(solved.value_or_throw(), 42);
}

}  // namespace
}  // namespace defender::core
