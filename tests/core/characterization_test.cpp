#include "core/characterization.hpp"

#include <gtest/gtest.h>

#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

// C6 edge ids: 0:(0,1) 1:(0,5) 2:(1,2) 3:(2,3) 4:(3,4) 5:(4,5).
TupleGame c6(std::size_t k, std::size_t nu = 2) {
  return TupleGame(graph::cycle_graph(6), k, nu);
}

// The alternating equilibrium of C6 for k = 1: attackers uniform on
// {0, 2, 4}, defender uniform on the three disjoint covering edges
// (0,1), (2,3), (4,5) = ids {0, 3, 5}.
MixedConfiguration c6_equilibrium(const TupleGame& game) {
  return symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution::uniform({{0}, {3}, {5}}));
}

TEST(VerifyMixedNe, AcceptsTheAlternatingCycleEquilibrium) {
  const TupleGame game = c6(1);
  const CharacterizationReport r =
      verify_mixed_ne(game, c6_equilibrium(game), Oracle::kExhaustive);
  EXPECT_TRUE(r.edge_cover);
  EXPECT_TRUE(r.vertex_cover_of_support);
  EXPECT_TRUE(r.hits_uniform_minimum);
  EXPECT_TRUE(r.defender_probs_sum_to_one);
  EXPECT_TRUE(r.support_tuples_maximal);
  EXPECT_TRUE(r.support_mass_is_nu);
  EXPECT_TRUE(r.is_ne());
  EXPECT_NEAR(r.min_hit, 1.0 / 3, 1e-12);
}

TEST(VerifyMixedNe, RejectsWhenSupportIsNotAnEdgeCover) {
  const TupleGame game = c6(1);
  // Defender only ever plays edge (0,1): vertices 2..5 are uncovered.
  const MixedConfiguration bad = symmetric_configuration(
      game, VertexDistribution::uniform({3}),
      TupleDistribution::uniform({{0}}));
  const CharacterizationReport r =
      verify_mixed_ne(game, bad, Oracle::kExhaustive);
  EXPECT_FALSE(r.edge_cover);
  EXPECT_FALSE(r.is_ne());
}

TEST(VerifyMixedNe, RejectsSkewedDefenderProbabilities) {
  const TupleGame game = c6(1);
  // Same support as the equilibrium but non-uniform defender probabilities:
  // hit probabilities on the attacker support stop being minimal-uniform.
  const MixedConfiguration skew = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution({{0}, {3}, {5}}, {0.6, 0.2, 0.2}));
  const CharacterizationReport r =
      verify_mixed_ne(game, skew, Oracle::kExhaustive);
  EXPECT_FALSE(r.hits_uniform_minimum);
  EXPECT_FALSE(r.is_ne());
}

TEST(VerifyMixedNe, RejectsAttackerMassOutsideBestTuples) {
  const TupleGame game = c6(1, 3);
  // Attackers pile on a single vertex; the defender's uniform support
  // includes tuples that miss it, so support tuples are not all maximal.
  const MixedConfiguration bad = symmetric_configuration(
      game, VertexDistribution::uniform({0}),
      TupleDistribution::uniform({{0}, {3}, {5}}));
  const CharacterizationReport r =
      verify_mixed_ne(game, bad, Oracle::kExhaustive);
  EXPECT_FALSE(r.support_tuples_maximal);
  EXPECT_FALSE(r.is_ne());
}

TEST(VerifyMixedNe, ReportDescribesEveryClause) {
  const TupleGame game = c6(1);
  const CharacterizationReport r =
      verify_mixed_ne(game, c6_equilibrium(game), Oracle::kExhaustive);
  const std::string text = r.describe();
  EXPECT_NE(text.find("edge cover"), std::string::npos);
  EXPECT_NE(text.find("2a."), std::string::npos);
  EXPECT_NE(text.find("3b."), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST(BestResponseCheck, AgreesWithCharacterizationOnEquilibria) {
  const TupleGame game = c6(1);
  EXPECT_TRUE(is_mixed_ne_by_best_response(game, c6_equilibrium(game),
                                           Oracle::kExhaustive));
}

TEST(BestResponseCheck, RejectsNonEquilibria) {
  const TupleGame game = c6(1);
  const MixedConfiguration bad = symmetric_configuration(
      game, VertexDistribution::uniform({0, 1}),
      TupleDistribution::uniform({{0}}));
  EXPECT_FALSE(is_mixed_ne_by_best_response(game, bad, Oracle::kExhaustive));
}

TEST(VerifyMixedNe, OraclesAgree) {
  const TupleGame game = c6(2);
  // Lift of the alternating equilibrium to k = 2 (three cyclic windows).
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution::uniform({{0, 3}, {3, 5}, {0, 5}}));
  const auto ex = verify_mixed_ne(game, config, Oracle::kExhaustive);
  const auto bb = verify_mixed_ne(game, config, Oracle::kBranchAndBound);
  EXPECT_EQ(ex.is_ne(), bb.is_ne());
  EXPECT_NEAR(ex.max_tuple_mass, bb.max_tuple_mass, 1e-9);
  EXPECT_TRUE(ex.is_ne());
}

TEST(VerifyMixedNe, FullCoverTupleIsANashButFailsCondition1) {
  // A single tuple that covers every vertex is a mutual best response for
  // any attacker placement, yet Theorem 3.4's condition 1 (D(VP) a vertex
  // cover of the defended subgraph) can fail — the Claim 3.6 edge case
  // documented in DESIGN.md.
  const TupleGame game = c6(3, 2);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({1}),
      TupleDistribution::uniform({{0, 3, 5}}));  // disjoint perfect cover
  EXPECT_TRUE(is_mixed_ne_by_best_response(game, config, Oracle::kExhaustive));
  const CharacterizationReport r =
      verify_mixed_ne(game, config, Oracle::kExhaustive);
  EXPECT_FALSE(r.vertex_cover_of_support);
  EXPECT_TRUE(r.edge_cover);
  EXPECT_TRUE(r.hits_uniform_minimum);
  EXPECT_TRUE(r.support_tuples_maximal);
}

}  // namespace
}  // namespace defender::core
