// Boundary cases of the Lemma 4.8 cyclic lift: the gcd arithmetic at its
// extremes (k | E, k = E, gcd = 1, E prime), where delta and alpha collapse
// or blow up to their limits.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "util/combinatorics.hpp"

namespace defender::core {
namespace {

MatchingNe base_ne(const graph::Graph& g) {
  const auto partition = find_partition_bipartite(g);
  EXPECT_TRUE(partition.has_value());
  const auto ne = compute_matching_ne(g, *partition);
  EXPECT_TRUE(ne.has_value());
  return *ne;
}

TEST(LiftBoundaries, KDividesE) {
  // E = 6 (star S6 gives |IS| = 6 edges), k = 3: delta = 2 disjoint-window
  // tuples, alpha = 1 (each edge in exactly one tuple).
  const graph::Graph g = graph::star_graph(6);
  const MatchingNe base = base_ne(g);
  ASSERT_EQ(base.tp_support.size(), 6u);
  const TupleGame game(g, 3, 1);
  const KMatchingNe lifted = lift_to_k_matching(game, base);
  EXPECT_EQ(lifted.tp_support.size(), 2u);
  EXPECT_EQ(tuples_per_edge(game, lifted.tp_support), 1u);
  EXPECT_TRUE(verify_mixed_ne(game, to_configuration(game, lifted),
                              Oracle::kExhaustive)
                  .is_ne());
}

TEST(LiftBoundaries, KEqualsE) {
  // k = E: a single tuple holding the whole defended edge set; delta = 1.
  const graph::Graph g = graph::star_graph(5);
  const MatchingNe base = base_ne(g);
  const TupleGame game(g, base.tp_support.size(), 1);
  const KMatchingNe lifted = lift_to_k_matching(game, base);
  ASSERT_EQ(lifted.tp_support.size(), 1u);
  EXPECT_EQ(lifted.tp_support.front().size(), base.tp_support.size());
  // The single tuple covers every vertex -> hit probability 1 everywhere.
  const auto config = to_configuration(game, lifted);
  EXPECT_TRUE(
      is_mixed_ne_by_best_response(game, config, Oracle::kBranchAndBound));
}

TEST(LiftBoundaries, CoprimeKWrapsThroughEveryOffset) {
  // E = 6, k = 5 (coprime): delta = 6 tuples, alpha = 5 — the maximal
  // wrap-around case where every window straddles the seam.
  const graph::Graph g = graph::star_graph(6);
  const MatchingNe base = base_ne(g);
  const TupleGame game(g, 5, 1);
  const KMatchingNe lifted = lift_to_k_matching(game, base);
  EXPECT_EQ(lifted.tp_support.size(), 6u);
  EXPECT_EQ(tuples_per_edge(game, lifted.tp_support), 5u);
  EXPECT_TRUE(verify_mixed_ne(game, to_configuration(game, lifted),
                              Oracle::kBranchAndBound)
                  .is_ne());
}

TEST(LiftBoundaries, PrimeEExercisesAllGcdClasses) {
  // E = 7 (star S7): gcd(7, k) = 1 for every k in 2..6, so delta = 7 and
  // alpha = k throughout; k = 7 collapses to one tuple.
  const graph::Graph g = graph::star_graph(7);
  const MatchingNe base = base_ne(g);
  for (std::size_t k = 2; k <= 7; ++k) {
    const TupleGame game(g, k, 1);
    const KMatchingNe lifted = lift_to_k_matching(game, base);
    EXPECT_EQ(lifted.tp_support.size(), k == 7 ? 1u : 7u) << "k=" << k;
    EXPECT_EQ(tuples_per_edge(game, lifted.tp_support), k == 7 ? 1u : k)
        << "k=" << k;
  }
}

TEST(LiftBoundaries, DeltaTimesKIsAlwaysLcm) {
  for (std::size_t e = 1; e <= 20; ++e)
    for (std::size_t k = 1; k <= e; ++k) {
      EXPECT_EQ(lifted_support_size(e, k) * k, util::lcm(e, k));
      EXPECT_EQ(lifted_tuples_per_edge(e, k) * e, util::lcm(e, k));
    }
}

}  // namespace
}  // namespace defender::core
