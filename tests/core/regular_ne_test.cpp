#include "core/regular_ne.hpp"

#include <gtest/gtest.h>

#include "core/analytics.hpp"
#include "core/characterization.hpp"
#include "core/expander_partition.hpp"
#include "core/payoff.hpp"
#include "core/perfect_matching_ne.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TEST(Regularity, DetectsRegularBoards) {
  EXPECT_EQ(regularity(graph::cycle_graph(7)), 2u);
  EXPECT_EQ(regularity(graph::complete_graph(5)), 4u);
  EXPECT_EQ(regularity(graph::petersen_graph()), 3u);
  EXPECT_EQ(regularity(graph::hypercube_graph(4)), 4u);
  EXPECT_FALSE(regularity(graph::path_graph(4)).has_value());
  EXPECT_FALSE(regularity(graph::star_graph(3)).has_value());
}

TEST(EdgeUniformNe, NulloptOnIrregularBoards) {
  const TupleGame game(graph::path_graph(5), 1, 1);
  EXPECT_FALSE(edge_uniform_ne(game).has_value());
}

TEST(EdgeUniformNe, RequiresEdgeModel) {
  const TupleGame game(graph::cycle_graph(6), 2, 1);
  EXPECT_THROW(edge_uniform_ne(game), ContractViolation);
}

TEST(EdgeUniformNe, IsANashEquilibriumOnRegularFamilies) {
  for (const auto& g :
       {graph::cycle_graph(7), graph::cycle_graph(10),
        graph::complete_graph(5), graph::petersen_graph(),
        graph::hypercube_graph(3)}) {
    const TupleGame game(g, 1, 4);
    const auto config = edge_uniform_ne(game);
    ASSERT_TRUE(config.has_value());
    EXPECT_TRUE(is_mixed_ne_by_best_response(game, *config,
                                             Oracle::kExhaustive))
        << "n=" << g.num_vertices();
  }
}

TEST(EdgeUniformNe, HitProbabilityIsTwoOverN) {
  const TupleGame game(graph::cycle_graph(9), 1, 3);
  const auto config = edge_uniform_ne(game);
  ASSERT_TRUE(config.has_value());
  const auto hit = hit_probabilities(game, *config);
  for (double h : hit) EXPECT_NEAR(h, 2.0 / 9, 1e-12);
  EXPECT_NEAR(edge_uniform_hit_probability(game), 2.0 / 9, 1e-12);
  EXPECT_NEAR(defense_optimality(game, 2.0 / 9), 1.0, 1e-12);
}

TEST(EdgeUniformNe, CoversOddCyclesWhereOtherFamiliesFail) {
  // C9: no perfect matching (odd n), no expander partition (max IS 4 < 5),
  // yet the edge-uniform family still delivers a defense-optimal NE.
  const graph::Graph g = graph::cycle_graph(9);
  EXPECT_FALSE(has_perfect_matching(g));
  EXPECT_FALSE(find_partition_exhaustive(g).has_value());
  const TupleGame game(g, 1, 2);
  const auto config = edge_uniform_ne(game);
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(
      is_mixed_ne_by_best_response(game, *config, Oracle::kExhaustive));
  EXPECT_NEAR(defender_profit(game, *config), 2.0 * 2 / 9, 1e-12);
}

TEST(EdgeUniformNe, HitProbabilityHelperRejectsIrregular) {
  const TupleGame game(graph::star_graph(4), 1, 1);
  EXPECT_THROW(edge_uniform_hit_probability(game), ContractViolation);
}

}  // namespace
}  // namespace defender::core
