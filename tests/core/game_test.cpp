#include "core/game.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

TEST(TupleGame, StoresParameters) {
  const TupleGame game(graph::cycle_graph(6), 2, 5);
  EXPECT_EQ(game.graph().num_vertices(), 6u);
  EXPECT_EQ(game.k(), 2u);
  EXPECT_EQ(game.num_attackers(), 5u);
}

TEST(TupleGame, RejectsIsolatedVertices) {
  const graph::Graph g = graph::GraphBuilder(3).add_edge(0, 1).build();
  EXPECT_THROW(TupleGame(g, 1, 1), ContractViolation);
}

TEST(TupleGame, RejectsOutOfRangeK) {
  EXPECT_THROW(TupleGame(graph::path_graph(3), 0, 1), ContractViolation);
  EXPECT_THROW(TupleGame(graph::path_graph(3), 3, 1), ContractViolation);
  EXPECT_NO_THROW(TupleGame(graph::path_graph(3), 2, 1));
}

TEST(TupleGame, RejectsZeroAttackers) {
  EXPECT_THROW(TupleGame(graph::path_graph(3), 1, 0), ContractViolation);
}

TEST(TupleGame, RejectsEmptyGraph) {
  EXPECT_THROW(TupleGame(graph::Graph{}, 1, 1), ContractViolation);
}

TEST(TupleGame, CountsTuples) {
  const TupleGame game(graph::complete_graph(5), 3, 1);  // C(10, 3)
  EXPECT_EQ(game.num_tuples(), 120u);
}

TEST(TupleGame, EdgeModelInstanceHasKOne) {
  const TupleGame game(graph::cycle_graph(6), 3, 4);
  const TupleGame edge = game.edge_model_instance();
  EXPECT_EQ(edge.k(), 1u);
  EXPECT_EQ(edge.num_attackers(), 4u);
  EXPECT_EQ(edge.graph(), game.graph());
}

}  // namespace
}  // namespace defender::core
