#include "core/matching_ne.hpp"

#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

void expect_valid_matching_ne(const graph::Graph& g, const MatchingNe& ne) {
  EXPECT_TRUE(is_matching_configuration(g, ne.vp_support, ne.tp_support));
  EXPECT_TRUE(satisfies_cover_conditions(g, ne.vp_support, ne.tp_support));
  EXPECT_EQ(ne.vp_support.size(), ne.tp_support.size());
}

TEST(IsMatchingConfiguration, Definition22OnExamples) {
  const graph::Graph g = graph::cycle_graph(6);
  // IS {0,2,4} with the three disjoint edges (0,1),(2,3),(4,5).
  const graph::EdgeSet edges{*g.edge_id(0, 1), *g.edge_id(2, 3),
                             *g.edge_id(4, 5)};
  EXPECT_TRUE(is_matching_configuration(g, {0, 2, 4}, edges));
  // Dependent support fails condition (1).
  EXPECT_FALSE(is_matching_configuration(g, {0, 1}, edges));
  // Vertex 0 incident to two support edges fails condition (2).
  const graph::EdgeSet doubled{*g.edge_id(0, 1), *g.edge_id(0, 5)};
  EXPECT_FALSE(is_matching_configuration(g, {0}, doubled));
}

TEST(ComputeMatchingNe, AlternatingCycle) {
  const graph::Graph g = graph::cycle_graph(8);
  const auto ne =
      compute_matching_ne(g, make_partition(g, {0, 2, 4, 6}));
  ASSERT_TRUE(ne.has_value());
  expect_valid_matching_ne(g, *ne);
  EXPECT_EQ(ne->vp_support, (graph::VertexSet{0, 2, 4, 6}));
}

TEST(ComputeMatchingNe, StarDefendsEveryEdge) {
  const graph::Graph g = graph::star_graph(5);
  graph::VertexSet leaves{1, 2, 3, 4, 5};
  const auto ne = compute_matching_ne(g, make_partition(g, leaves));
  ASSERT_TRUE(ne.has_value());
  expect_valid_matching_ne(g, *ne);
  EXPECT_EQ(ne->tp_support.size(), 5u);  // all spokes
}

TEST(ComputeMatchingNe, FailsOnNonExpanderPartition) {
  const graph::Graph g = graph::complete_graph(3);
  EXPECT_FALSE(compute_matching_ne(g, make_partition(g, {0})).has_value());
}

TEST(ComputeMatchingNe, UnmatchedIsVerticesGetArbitraryNeighbour) {
  // K_{1,4}: VC = {0}, IS = 4 leaves; only one leaf is matched, the rest
  // attach through their only edge — all spokes end up defended.
  const graph::Graph g = graph::complete_bipartite(1, 4);
  const auto ne = compute_matching_ne(g, make_partition(g, {1, 2, 3, 4}));
  ASSERT_TRUE(ne.has_value());
  EXPECT_EQ(ne->tp_support.size(), 4u);
}

TEST(FindMatchingNe, BipartiteFamiliesAlwaysSucceed) {
  for (const auto& g :
       {graph::path_graph(9), graph::grid_graph(3, 5),
        graph::hypercube_graph(3), graph::complete_bipartite(3, 6)}) {
    const auto ne = find_matching_ne(g);
    ASSERT_TRUE(ne.has_value());
    expect_valid_matching_ne(g, *ne);
  }
}

TEST(FindMatchingNe, NoneOnCompleteGraphs) {
  EXPECT_FALSE(find_matching_ne(graph::complete_graph(5)).has_value());
}

TEST(ToConfiguration, UniformDistributionsAndNashProperty) {
  const graph::Graph g = graph::cycle_graph(6);
  const TupleGame game(g, 1, 3);
  const auto ne = compute_matching_ne(g, make_partition(g, {0, 2, 4}));
  ASSERT_TRUE(ne.has_value());
  const MixedConfiguration config = to_configuration(game, *ne);
  EXPECT_EQ(config.attackers.size(), 3u);
  for (double p : config.defender.probs()) EXPECT_DOUBLE_EQ(p, 1.0 / 3);
  // Lemma 2.1: the uniform profile is a mixed NE of Pi_1(G).
  EXPECT_TRUE(verify_mixed_ne(game, config, Oracle::kExhaustive).is_ne());
}

TEST(ToConfiguration, RequiresEdgeModel) {
  const graph::Graph g = graph::cycle_graph(6);
  const TupleGame game(g, 2, 1);
  const auto ne = compute_matching_ne(g, make_partition(g, {0, 2, 4}));
  ASSERT_TRUE(ne.has_value());
  EXPECT_THROW(to_configuration(game, *ne), ContractViolation);
}

TEST(MatchingNe, RandomBipartiteSweepIsAlwaysANashEquilibrium) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_bipartite(4, 5, 0.35, rng);
    const auto ne = find_matching_ne(g);
    ASSERT_TRUE(ne.has_value()) << "seed " << seed;
    expect_valid_matching_ne(g, *ne);
    const TupleGame game(g, 1, 2);
    EXPECT_TRUE(verify_mixed_ne(game, to_configuration(game, *ne),
                                Oracle::kExhaustive)
                    .is_ne())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace defender::core
