#include "core/pure_ne.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/edge_cover.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(PureNeExists, MatchesMinEdgeCoverThreshold) {
  const graph::Graph g = graph::path_graph(4);  // min edge cover = 2
  EXPECT_FALSE(pure_ne_exists(TupleGame(g, 1, 1)));
  EXPECT_TRUE(pure_ne_exists(TupleGame(g, 2, 1)));
  EXPECT_TRUE(pure_ne_exists(TupleGame(g, 3, 1)));
}

TEST(PureNeExists, StarNeedsAllEdges) {
  const graph::Graph g = graph::star_graph(4);  // min edge cover = 4 = m
  for (std::size_t k = 1; k <= 3; ++k)
    EXPECT_FALSE(pure_ne_exists(TupleGame(g, k, 1)));
  EXPECT_TRUE(pure_ne_exists(TupleGame(g, 4, 1)));
}

TEST(FindPureNe, ProducesACoveringTuple) {
  const TupleGame game(graph::cycle_graph(6), 4, 3);
  const auto config = find_pure_ne(game);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->defender_tuple.size(), 4u);
  EXPECT_TRUE(graph::is_edge_cover(game.graph(), config->defender_tuple));
  EXPECT_TRUE(is_pure_ne(game, *config));
}

TEST(FindPureNe, PadsCoverUpToExactlyK) {
  const TupleGame game(graph::cycle_graph(6), 5, 1);  // min cover = 3
  const auto config = find_pure_ne(game);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->defender_tuple.size(), 5u);
  EXPECT_TRUE(is_pure_ne(game, *config));
}

TEST(FindPureNe, ReturnsNulloptBelowThreshold) {
  const TupleGame game(graph::cycle_graph(6), 2, 1);  // min cover = 3
  EXPECT_FALSE(find_pure_ne(game).has_value());
}

TEST(IsPureNe, ExactlyWhenTupleCoversAllVertices) {
  const TupleGame game(graph::path_graph(4), 2, 2);
  // Edges 0:(0,1) 2:(2,3) cover everything; 0:(0,1) 1:(1,2) leave vertex 3.
  EXPECT_TRUE(is_pure_ne(game, PureConfiguration{{0, 2}, {0, 2}}));
  EXPECT_FALSE(is_pure_ne(game, PureConfiguration{{3, 3}, {0, 1}}));
}

TEST(IsPureNeByDeviation, AgreesWithCoverCriterion) {
  // Exhaustive deviation checking validates the proof of Theorem 3.1 on
  // random small instances and arbitrary pure configurations.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp_graph(6, 0.45, rng);
    if (g.num_edges() < 2 || g.num_edges() > 12) continue;
    const std::size_t k = 1 + rng.below(std::min<std::size_t>(3, g.num_edges()));
    const TupleGame game(g, k, 2);
    // Random pure configuration.
    PureConfiguration config;
    config.attacker_vertices = {
        static_cast<graph::Vertex>(rng.below(g.num_vertices())),
        static_cast<graph::Vertex>(rng.below(g.num_vertices()))};
    auto edges = util::sample_without_replacement(g.num_edges(), k, rng);
    for (std::size_t e : edges)
      config.defender_tuple.push_back(static_cast<graph::EdgeId>(e));
    EXPECT_EQ(is_pure_ne(game, config), is_pure_ne_by_deviation(game, config))
        << "seed " << seed;
  }
}

TEST(Corollary32, ExistenceIsPolynomialAndConstructive) {
  // For every graph in a mixed family, existence agrees with the
  // constructed witness.
  util::Rng rng(7);
  const std::vector<graph::Graph> boards = {
      graph::path_graph(9),    graph::cycle_graph(10),
      graph::star_graph(6),    graph::complete_graph(6),
      graph::petersen_graph(), graph::gnp_graph(12, 0.3, rng)};
  for (const auto& g : boards) {
    for (std::size_t k = 1; k <= g.num_edges(); ++k) {
      const TupleGame game(g, k, 1);
      EXPECT_EQ(pure_ne_exists(game), find_pure_ne(game).has_value());
    }
  }
}

class Corollary33Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Corollary33Sweep, NoPureNeWhenNAtLeast2kPlus1) {
  // Corollary 3.3: |V| >= 2k + 1 rules out pure NE.
  const std::size_t n = GetParam();
  const graph::Graph g = graph::cycle_graph(n);
  for (std::size_t k = 1; k <= g.num_edges(); ++k) {
    const TupleGame game(g, k, 1);
    if (n >= 2 * k + 1)
      EXPECT_FALSE(pure_ne_exists(game)) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Cycles, Corollary33Sweep,
                         ::testing::Values<std::size_t>(3, 4, 5, 6, 9, 12));

}  // namespace
}  // namespace defender::core
