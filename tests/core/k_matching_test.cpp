#include "core/k_matching.hpp"

#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::core {
namespace {

// C6 edge ids: 0:(0,1) 1:(0,5) 2:(1,2) 3:(2,3) 4:(3,4) 5:(4,5).
// The lifted alternating equilibrium for k = 2 on the defended edge set
// {0, 3, 5}: cyclic windows {0,3}, {5,0}, {3,5}.
KMatchingNe c6_k2_ne() {
  return KMatchingNe{{0, 2, 4}, {{0, 3}, {0, 5}, {3, 5}}};
}

TEST(IsKMatchingConfiguration, AcceptsTheLiftedEquilibrium) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  const KMatchingNe ne = c6_k2_ne();
  EXPECT_TRUE(is_k_matching_configuration(game, ne.vp_support, ne.tp_support));
}

TEST(IsKMatchingConfiguration, RejectsDependentSupport) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  EXPECT_FALSE(
      is_k_matching_configuration(game, {0, 1}, c6_k2_ne().tp_support));
}

TEST(IsKMatchingConfiguration, RejectsDoubleIncidence) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  // Vertex 0 is incident to edges 0:(0,1) and 1:(0,5) of the union.
  EXPECT_FALSE(is_k_matching_configuration(game, {0}, {{0, 1}}));
}

TEST(IsKMatchingConfiguration, RejectsNonUniformEdgeMultiplicity) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  // Edge 0 appears twice, edges 3 and 5 once each.
  const std::vector<Tuple> uneven{{0, 3}, {0, 5}};
  EXPECT_FALSE(is_k_matching_configuration(game, {0, 2, 4}, uneven));
}

TEST(TuplesPerEdge, ComputesAlpha) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  EXPECT_EQ(tuples_per_edge(game, c6_k2_ne().tp_support), 2u);
  const std::vector<Tuple> uneven{{0, 3}, {0, 5}};
  EXPECT_FALSE(tuples_per_edge(game, uneven).has_value());
  EXPECT_THROW(tuples_per_edge(game, {}), ContractViolation);
}

TEST(CoverConditions, HoldForTheLiftedEquilibrium) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  EXPECT_TRUE(satisfies_cover_conditions(game, c6_k2_ne()));
}

TEST(CoverConditions, FailWhenEdgesMissVertices) {
  const TupleGame game(graph::cycle_graph(6), 2, 2);
  const KMatchingNe partial{{0, 2}, {{0, 3}}};
  EXPECT_FALSE(satisfies_cover_conditions(game, partial));
}

TEST(ToConfiguration, Lemma41UniformProfileIsANashEquilibrium) {
  const TupleGame game(graph::cycle_graph(6), 2, 4);
  const MixedConfiguration config = to_configuration(game, c6_k2_ne());
  EXPECT_TRUE(verify_mixed_ne(game, config, Oracle::kExhaustive).is_ne());
}

TEST(AnalyticHitProbability, Claim43Formula) {
  const TupleGame game(graph::cycle_graph(6), 2, 4);
  const KMatchingNe ne = c6_k2_ne();
  // k / |E(D(tp))| = 2 / 3.
  EXPECT_NEAR(analytic_hit_probability(game, ne), 2.0 / 3, 1e-12);
  // And it matches the measured hit probabilities on the support.
  const MixedConfiguration config = to_configuration(game, ne);
  const std::vector<double> hit = hit_probabilities(game, config);
  for (graph::Vertex v : ne.vp_support)
    EXPECT_NEAR(hit[v], 2.0 / 3, 1e-12);
}

TEST(AnalyticDefenderProfit, Corollary410Formula) {
  const TupleGame game(graph::cycle_graph(6), 2, 4);
  const KMatchingNe ne = c6_k2_ne();
  // k * nu / |D(VP)| = 2 * 4 / 3.
  EXPECT_NEAR(analytic_defender_profit(game, ne), 8.0 / 3, 1e-12);
  EXPECT_NEAR(defender_profit(game, to_configuration(game, ne)), 8.0 / 3,
              1e-12);
}

TEST(Observation41, OneMatchingConfigurationsCoincideWithMatchingOnes) {
  // For k = 1, a 1-matching configuration is exactly a matching
  // configuration (Observation 4.1).
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const KMatchingNe ne{{0, 2, 4}, {{0}, {3}, {5}}};
  EXPECT_TRUE(is_k_matching_configuration(game, ne.vp_support, ne.tp_support));
  EXPECT_EQ(tuples_per_edge(game, ne.tp_support), 1u);
}

}  // namespace
}  // namespace defender::core
