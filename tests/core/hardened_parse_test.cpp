// Table-driven malformed-input rejection for the hardened parsers: the
// edge-list reader (graph/io) and the configuration reader
// (core/serialization). Every rejection must be a structured kInvalidInput
// with a line number — no exception, no silent wrap, no large allocation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/atuple.hpp"
#include "core/serialization.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/assert.hpp"

namespace defender {
namespace {

struct BadInput {
  const char* name;
  std::string text;
  /// Substring expected somewhere in the error message.
  std::string expect;
};

class EdgeListRejection : public ::testing::TestWithParam<BadInput> {};

TEST_P(EdgeListRejection, ReturnsInvalidInputWithLineNumber) {
  const BadInput& param = GetParam();
  Solved<graph::Graph> solved;
  EXPECT_NO_THROW(solved = graph::try_parse_edge_list(param.text));
  EXPECT_EQ(solved.status.code, StatusCode::kInvalidInput) << param.name;
  EXPECT_NE(solved.status.message.find("line "), std::string::npos)
      << param.name << ": " << solved.status.message;
  EXPECT_NE(solved.status.message.find(param.expect), std::string::npos)
      << param.name << ": " << solved.status.message;
  // The legacy throwing entry point must reject the same input.
  EXPECT_THROW(graph::parse_edge_list(param.text), ContractViolation)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    MalformedEdgeLists, EdgeListRejection,
    ::testing::Values(
        BadInput{"empty", "", "empty input"},
        BadInput{"junk_header", "junk", "header"},
        BadInput{"non_numeric_n", "x 1\n0 1\n", "not an integer"},
        BadInput{"negative_n", "-3 2\n0 1\n1 2\n", "not an integer"},
        BadInput{"negative_m", "3 -2\n0 1\n1 2\n", "not an integer"},
        BadInput{"overflowing_n", "99999999999999999999 1\n0 1\n",
                 "not an integer"},
        BadInput{"n_above_cap", "999999999 1\n0 1\n", "not an integer"},
        BadInput{"m_above_simple_max", "3 4\n0 1\n1 2\n0 2\n0 1\n",
                 "n(n-1)/2"},
        BadInput{"edges_without_vertices", "0 1\n0 1\n", "0 vertices"},
        BadInput{"truncated", "3 2\n0 1\n", "ended before"},
        BadInput{"trailing_garbage", "3 1\n0 1\n9 9\n", "trailing"},
        BadInput{"endpoint_out_of_range", "2 1\n0 5\n", "not a vertex"},
        BadInput{"negative_endpoint", "3 1\n0 -1\n", "not a vertex"},
        BadInput{"self_loop", "3 1\n1 1\n", "self-loop"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(EdgeListParse, AcceptsValidAndRoundTrips) {
  const Solved<graph::Graph> solved =
      graph::try_parse_edge_list("3 2\n0 1\n1 2\n");
  ASSERT_TRUE(solved.ok());
  EXPECT_EQ(solved.result.num_vertices(), 3u);
  EXPECT_EQ(solved.result.num_edges(), 2u);
  const graph::Graph g = graph::petersen_graph();
  const Solved<graph::Graph> reparsed =
      graph::try_parse_edge_list(graph::to_edge_list(g));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.result, g);
}

TEST(EdgeListParse, ToleratesFreeFormWhitespace) {
  const Solved<graph::Graph> solved =
      graph::try_parse_edge_list("  3\t2\r\n\n0 1 1\t2\n");
  ASSERT_TRUE(solved.ok());
  EXPECT_EQ(solved.result.num_edges(), 2u);
}

class ConfigRejection : public ::testing::TestWithParam<BadInput> {};

core::TupleGame c6_game() {
  return core::TupleGame(graph::cycle_graph(6), 2, 3);
}

std::string valid_config_text() {
  const core::TupleGame game = c6_game();
  const auto result = core::a_tuple_bipartite(game);
  EXPECT_TRUE(result.has_value());
  return core::to_text(game, result->configuration);
}

TEST_P(ConfigRejection, ReturnsInvalidInputWithLineNumber) {
  const BadInput& param = GetParam();
  const core::TupleGame game = c6_game();
  Solved<core::MixedConfiguration> solved;
  EXPECT_NO_THROW(solved = core::try_from_text(game, param.text));
  EXPECT_EQ(solved.status.code, StatusCode::kInvalidInput) << param.name;
  EXPECT_NE(solved.status.message.find("line "), std::string::npos)
      << param.name << ": " << solved.status.message;
  EXPECT_NE(solved.status.message.find(param.expect), std::string::npos)
      << param.name << ": " << solved.status.message;
  EXPECT_THROW(core::from_text(game, param.text), ContractViolation)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    MalformedConfigs, ConfigRejection,
    ::testing::Values(
        BadInput{"empty", "", "header"},
        BadInput{"wrong_header", "bogus v9\n", "header"},
        BadInput{"missing_game_line", "defender-configuration v1\n",
                 "game line"},
        BadInput{"game_mismatch",
                 "defender-configuration v1\ngame 9 9 2 3\n",
                 "different game"},
        BadInput{"negative_support_size",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 -1\n",
                 "attacker"},
        BadInput{"oversized_support",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 9999999999\n",
                 "attacker"},
        BadInput{"vertex_out_of_range",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 1 17 1.0\n",
                 "vertex"},
        BadInput{"bad_probability",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 1 0 nope\n",
                 "probability"},
        BadInput{"oversized_defender_count",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 1 0 1.0\nattacker 1 1 0 1.0\n"
                 "attacker 2 1 0 1.0\ndefender 99999999999\n",
                 "defender"},
        BadInput{"truncated_defender",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 1 0 1.0\nattacker 1 1 0 1.0\n"
                 "attacker 2 1 0 1.0\ndefender 2\ntuple 0.5 0 1\n",
                 "truncated"},
        BadInput{"edge_out_of_range",
                 "defender-configuration v1\ngame 6 6 2 3\n"
                 "attacker 0 1 0 1.0\nattacker 1 1 0 1.0\n"
                 "attacker 2 1 0 1.0\ndefender 1\ntuple 1.0 0 42\n",
                 "edge id"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ConfigParse, ValidTextStillRoundTrips) {
  const core::TupleGame game = c6_game();
  const std::string text = valid_config_text();
  const Solved<core::MixedConfiguration> solved =
      core::try_from_text(game, text);
  ASSERT_TRUE(solved.ok()) << solved.status.describe();
  EXPECT_EQ(core::to_text(game, solved.result), text);
}

TEST(ConfigParse, RejectsTrailingGarbage) {
  const core::TupleGame game = c6_game();
  const std::string text = valid_config_text() + "extra junk\n";
  const Solved<core::MixedConfiguration> solved =
      core::try_from_text(game, text);
  EXPECT_EQ(solved.status.code, StatusCode::kInvalidInput);
  EXPECT_NE(solved.status.message.find("trailing"), std::string::npos);
}

}  // namespace
}  // namespace defender
