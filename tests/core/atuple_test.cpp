#include "core/atuple.hpp"

#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(ATuple, ComputesAKMatchingNeOnAGivenPartition) {
  const graph::Graph g = graph::cycle_graph(8);
  const TupleGame game(g, 3, 2);
  const auto result = a_tuple(game, make_partition(g, {0, 2, 4, 6}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(is_k_matching_configuration(game, result->k_matching_ne.vp_support,
                                          result->k_matching_ne.tp_support));
  EXPECT_TRUE(verify_mixed_ne(game, result->configuration,
                              Oracle::kExhaustive)
                  .is_ne());
  EXPECT_EQ(result->support_size, 4u);       // 4 / gcd(4,3)
  EXPECT_EQ(result->tuples_per_edge, 3u);    // 3 / gcd(4,3)
}

TEST(ATuple, FailsGracefullyOnBadPartition) {
  const graph::Graph g = graph::complete_graph(3);
  const TupleGame game(g, 1, 1);
  EXPECT_FALSE(a_tuple(game, make_partition(g, {0})).has_value());
}

TEST(ATupleBipartite, Theorem51EndToEnd) {
  for (const auto& g :
       {graph::path_graph(8), graph::grid_graph(3, 4),
        graph::complete_bipartite(3, 5), graph::hypercube_graph(3)}) {
    const std::size_t kmax = std::min<std::size_t>(3, g.num_edges());
    for (std::size_t k = 1; k <= kmax; ++k) {
      const TupleGame game(g, k, 2);
      const auto result = a_tuple_bipartite(game);
      ASSERT_TRUE(result.has_value()) << "k=" << k;
      EXPECT_TRUE(verify_mixed_ne(game, result->configuration,
                                  Oracle::kBranchAndBound)
                      .is_ne())
          << "k=" << k;
    }
  }
}

TEST(ATupleBipartite, RefusesNonBipartiteBoards) {
  const TupleGame game(graph::petersen_graph(), 2, 1);
  EXPECT_FALSE(a_tuple_bipartite(game).has_value());
}

TEST(FindKMatchingNe, DispatchFindsEquilibriaBeyondBipartite) {
  // C9 is non-bipartite; greedy/exhaustive partition discovery must still
  // find nothing (|IS| <= 4 < |VC|), while stars succeed.
  const TupleGame star_game(graph::star_graph(7), 3, 1);
  const auto star = find_k_matching_ne(star_game);
  ASSERT_TRUE(star.has_value());
  EXPECT_TRUE(verify_mixed_ne(star_game, star->configuration,
                              Oracle::kBranchAndBound)
                  .is_ne());

  const TupleGame c9_game(graph::cycle_graph(9), 2, 1);
  EXPECT_FALSE(find_k_matching_ne(c9_game).has_value());
}

TEST(ATuple, EdgeModelResultMatchesAlgorithmA) {
  const graph::Graph g = graph::cycle_graph(8);
  const TupleGame game(g, 2, 1);
  const Partition p = make_partition(g, {0, 2, 4, 6});
  const auto result = a_tuple(game, p);
  const auto direct = compute_matching_ne(g, p);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(result->edge_model_ne.vp_support, direct->vp_support);
  EXPECT_EQ(result->edge_model_ne.tp_support, direct->tp_support);
}

TEST(ATuple, SupportTuplesAreDistinctForEveryKE) {
  const graph::Graph g = graph::complete_bipartite(4, 6);
  const auto partition = find_partition_bipartite(g);
  ASSERT_TRUE(partition.has_value());
  const std::size_t e_num = partition->independent_set.size();
  for (std::size_t k = 1; k <= e_num; ++k) {
    const TupleGame game(g, k, 1);
    const auto result = a_tuple(game, *partition);
    ASSERT_TRUE(result.has_value()) << "k=" << k;
    auto tuples = result->k_matching_ne.tp_support;
    std::sort(tuples.begin(), tuples.end());
    EXPECT_EQ(std::adjacent_find(tuples.begin(), tuples.end()), tuples.end())
        << "duplicate tuples at k=" << k;
  }
}

}  // namespace
}  // namespace defender::core
