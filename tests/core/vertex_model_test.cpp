#include "core/vertex_model.hpp"

#include <gtest/gtest.h>

#include "core/path_model.hpp"
#include "core/perfect_matching_ne.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(VertexGame, ValidatesParameters) {
  EXPECT_NO_THROW(VertexGame(graph::cycle_graph(5), 5, 1));
  EXPECT_THROW(VertexGame(graph::cycle_graph(5), 0, 1), ContractViolation);
  EXPECT_THROW(VertexGame(graph::cycle_graph(5), 6, 1), ContractViolation);
  EXPECT_THROW(VertexGame(graph::cycle_graph(5), 1, 0), ContractViolation);
}

TEST(RotationScan, SupportHasNWindowsOfSizeK) {
  const VertexGame game(graph::petersen_graph(), 3, 2);
  const auto support = rotation_scan_support(game);
  EXPECT_EQ(support.size(), 10u);
  for (const auto& window : support) EXPECT_EQ(window.size(), 3u);
}

TEST(RotationScan, EveryVertexScannedExactlyKTimes) {
  const VertexGame game(graph::grid_graph(3, 4), 5, 1);
  const auto support = rotation_scan_support(game);
  std::vector<std::size_t> scans(12, 0);
  for (const auto& window : support)
    for (graph::Vertex v : window) ++scans[v];
  for (std::size_t s : scans) EXPECT_EQ(s, 5u);
}

TEST(RotationScan, IsEquilibriumOnAnyBoard) {
  util::Rng rng(33);
  EXPECT_TRUE(rotation_scan_is_equilibrium(
      VertexGame(graph::cycle_graph(9), 2, 3)));
  EXPECT_TRUE(rotation_scan_is_equilibrium(
      VertexGame(graph::complete_graph(6), 4, 1)));
  EXPECT_TRUE(rotation_scan_is_equilibrium(
      VertexGame(graph::gnp_graph(15, 0.3, rng), 7, 2)));
}

TEST(VertexScan, ClosedForms) {
  const VertexGame game(graph::cycle_graph(8), 2, 6);
  EXPECT_DOUBLE_EQ(vertex_scan_hit_probability(game), 0.25);
  EXPECT_DOUBLE_EQ(vertex_scan_defender_profit(game), 1.5);
}

TEST(DefenderTechnologies, TupleBeatsPathBeatsVertexOnCycles) {
  // Same budget k: vertex scan k/n < path scan (k+1)/n < tuple scan 2k/n
  // (strict for k >= 2).
  const graph::Graph g = graph::cycle_graph(12);
  for (std::size_t k = 2; k <= 4; ++k) {
    const double vertex =
        vertex_scan_hit_probability(VertexGame(g, k, 1));
    const double path =
        cycle_rotation_hit_probability(PathGame(g, k, 1));
    const auto pm = find_perfect_matching_ne(TupleGame(g, k, 1));
    ASSERT_TRUE(pm.has_value());
    const double tuple =
        analytic_hit_probability(TupleGame(g, k, 1), *pm);
    EXPECT_LT(vertex, path) << "k=" << k;
    EXPECT_LT(path, tuple) << "k=" << k;
    EXPECT_DOUBLE_EQ(tuple, 2.0 * vertex);
  }
}

class VertexScanSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(VertexScanSweep, EquilibriumAcrossSizes) {
  const auto [n, k] = GetParam();
  if (k > n) GTEST_SKIP();
  EXPECT_TRUE(
      rotation_scan_is_equilibrium(VertexGame(graph::cycle_graph(n), k, 2)));
}

INSTANTIATE_TEST_SUITE_P(
    Cycles, VertexScanSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 7, 12),
                       ::testing::Values<std::size_t>(1, 3, 6, 12)));

}  // namespace
}  // namespace defender::core
