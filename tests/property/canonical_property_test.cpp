// Metamorphic properties of the canonical-form cache (docs/CACHE.md).
//
// For a random board G and a random permutation π, solving G and solving
// π(G) must be indistinguishable:
//
//   * canonical_form(G) and canonical_form(π(G)) produce the SAME
//     canonical edge list, so the derived cache keys are equal;
//   * the equilibrium values agree to 1e-9;
//   * a profile cached from solving G, transported through π(G)'s
//     canonical form, is a valid equilibrium on π(G)'s labeling
//     (best-response regret within tolerance).
//
// Together with the collision guard these are the cache's whole
// correctness story: a hit can only ever return what a fresh solve of the
// probe would have returned.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/canonical.hpp"
#include "core/best_response.hpp"
#include "core/budget.hpp"
#include "core/configuration.hpp"
#include "core/double_oracle.hpp"
#include "core/game.hpp"
#include "core/payoff.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/operations.hpp"
#include "util/random.hpp"

namespace defender::cache {
namespace {

// A small zoo mixing rigid and highly symmetric boards — symmetry is where
// naive canonical labeling blows up and where permutation bugs hide.
graph::Graph random_board(util::Rng& rng) {
  switch (rng.below(10)) {
    case 0: return graph::path_graph(4 + rng.below(6));
    case 1: return graph::cycle_graph(4 + rng.below(6));
    case 2: return graph::complete_graph(4 + rng.below(3));
    case 3: return graph::complete_bipartite(2 + rng.below(3), 2 + rng.below(4));
    case 4: return graph::grid_graph(2 + rng.below(2), 3 + rng.below(2));
    case 5: return graph::wheel_graph(4 + rng.below(4));
    case 6: return graph::star_graph(3 + rng.below(6));
    case 7: return graph::ladder_graph(3 + rng.below(3));
    case 8: return graph::random_tree(5 + rng.below(6), rng);
    default: return graph::random_connected(6 + rng.below(4), 0.4, rng);
  }
}

std::vector<graph::Vertex> random_permutation(std::size_t n, util::Rng& rng) {
  std::vector<graph::Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), graph::Vertex{0});
  util::shuffle(perm, rng);
  return perm;
}

// Sorted canonical edge list as comparable pairs.
std::vector<std::pair<graph::Vertex, graph::Vertex>> edge_pairs(
    const std::vector<graph::Edge>& edges) {
  std::vector<std::pair<graph::Vertex, graph::Vertex>> pairs;
  pairs.reserve(edges.size());
  for (const graph::Edge& e : edges) pairs.emplace_back(e.u, e.v);
  return pairs;
}

TEST(CanonicalFormProperty, LabelingIsABijectionThatRelabelsTheEdgeList) {
  util::Rng rng(0xCAFE01);
  for (int trial = 0; trial < 50; ++trial) {
    const graph::Graph g = random_board(rng);
    const CanonicalForm form = canonical_form(g);
    ASSERT_EQ(form.n, g.num_vertices());
    ASSERT_EQ(form.edges.size(), g.num_edges());
    ASSERT_TRUE(form.exact);

    // to_canonical / from_canonical are mutually inverse bijections.
    std::vector<bool> seen(form.n, false);
    for (graph::Vertex v = 0; v < form.n; ++v) {
      const graph::Vertex c = form.to_canonical[v];
      ASSERT_LT(c, form.n);
      EXPECT_FALSE(seen[c]);
      seen[c] = true;
      EXPECT_EQ(form.from_canonical[c], v);
    }

    // form.edges is exactly the original edge list pushed through the
    // labeling (normalized and sorted).
    std::vector<std::pair<graph::Vertex, graph::Vertex>> relabeled;
    for (const graph::Edge& e : g.edges()) {
      graph::Vertex u = form.to_canonical[e.u];
      graph::Vertex v = form.to_canonical[e.v];
      if (u > v) std::swap(u, v);
      relabeled.emplace_back(u, v);
    }
    std::sort(relabeled.begin(), relabeled.end());
    EXPECT_EQ(relabeled, edge_pairs(form.edges));
  }
}

TEST(CanonicalFormProperty, KeyIsInvariantUnderRandomPermutations) {
  util::Rng rng(0xCAFE02);
  const SolveBudget budget = SolveBudget::iterations(60);
  for (int trial = 0; trial < 300; ++trial) {
    const graph::Graph g = random_board(rng);
    const std::size_t n = g.num_vertices();
    const std::vector<graph::Vertex> perm = random_permutation(n, rng);
    const graph::Graph pg = graph::permute(g, perm);

    const bool weighted = trial % 3 == 0;
    std::vector<double> w, pw;
    std::vector<std::uint32_t> colors, pcolors;
    if (weighted) {
      w.resize(n);
      pw.resize(n);
      // Few distinct values so weight classes are non-trivial cells.
      for (std::size_t v = 0; v < n; ++v) w[v] = 1.0 + rng.below(3) * 0.5;
      for (std::size_t v = 0; v < n; ++v) pw[perm[v]] = w[v];
      colors = weight_color_classes(w);
      pcolors = weight_color_classes(pw);
    }

    const CanonicalForm fg = canonical_form(g, colors);
    const CanonicalForm fp = canonical_form(pg, pcolors);
    ASSERT_TRUE(fg.exact) << "trial " << trial;
    ASSERT_TRUE(fp.exact) << "trial " << trial;
    EXPECT_EQ(edge_pairs(fg.edges), edge_pairs(fp.edges)) << "trial " << trial;

    const std::vector<double> cw =
        weighted ? to_canonical_weights(fg, w) : std::vector<double>{};
    const std::vector<double> cpw =
        weighted ? to_canonical_weights(fp, pw) : std::vector<double>{};
    EXPECT_EQ(cw, cpw) << "trial " << trial;

    const CacheKey kg = SolveCache::make_key(
        fg, cw, 2, 1, weighted ? "weighted-double-oracle" : "double-oracle",
        1e-9, budget);
    const CacheKey kp = SolveCache::make_key(
        fp, cpw, 2, 1, weighted ? "weighted-double-oracle" : "double-oracle",
        1e-9, budget);
    EXPECT_EQ(kg.structural, kp.structural) << "trial " << trial;
    EXPECT_EQ(kg.params, kp.params) << "trial " << trial;
    EXPECT_EQ(kg.hash, kp.hash) << "trial " << trial;
  }
}

TEST(CanonicalFormProperty, KeySeparatesBoardsParametersAndWeights) {
  const SolveBudget budget = SolveBudget::iterations(60);
  const graph::Graph path = graph::path_graph(6);
  const graph::Graph cycle = graph::cycle_graph(6);
  const CanonicalForm fpath = canonical_form(path);
  const CanonicalForm fcycle = canonical_form(cycle);

  const CacheKey base =
      SolveCache::make_key(fpath, {}, 2, 1, "double-oracle", 1e-9, budget);
  EXPECT_NE(base.structural,
            SolveCache::make_key(fcycle, {}, 2, 1, "double-oracle", 1e-9,
                                 budget)
                .structural);
  EXPECT_NE(base.structural,
            SolveCache::make_key(fpath, {}, 3, 1, "double-oracle", 1e-9, budget)
                .structural);
  EXPECT_NE(base.structural,
            SolveCache::make_key(fpath, {}, 2, 2, "double-oracle", 1e-9, budget)
                .structural);
  EXPECT_NE(base.structural,
            SolveCache::make_key(fpath, {}, 2, 1, "fictitious-play", 1e-9,
                                 budget)
                .structural);
  // Same structure, different params: structural equal, params differ —
  // exactly the warm-start near-miss shape.
  const CacheKey loose =
      SolveCache::make_key(fpath, {}, 2, 1, "double-oracle", 1e-2, budget);
  EXPECT_EQ(base.structural, loose.structural);
  EXPECT_NE(base.params, loose.params);
  // Weights are part of the structural key.
  std::vector<double> w(path.num_vertices(), 1.0);
  w[0] = 2.0;
  const std::vector<double> cw = to_canonical_weights(fpath, w);
  EXPECT_NE(base.structural,
            SolveCache::make_key(fpath, cw, 2, 1, "double-oracle", 1e-9, budget)
                .structural);
}

TEST(SolveProperty, EquilibriumValueAgreesUnderPermutation) {
  util::Rng rng(0xCAFE03);
  const SolveBudget budget = SolveBudget::iterations(500);
  for (int trial = 0; trial < 100; ++trial) {
    const graph::Graph g = random_board(rng);
    const std::vector<graph::Vertex> perm =
        random_permutation(g.num_vertices(), rng);
    const graph::Graph pg = graph::permute(g, perm);

    const core::TupleGame game(g, 2, 1);
    const core::TupleGame pgame(pg, 2, 1);
    const auto a = core::solve_double_oracle_budgeted(game, 1e-10, budget);
    const auto b = core::solve_double_oracle_budgeted(pgame, 1e-10, budget);
    ASSERT_TRUE(a.ok()) << "trial " << trial << ": " << a.status.describe();
    ASSERT_TRUE(b.ok()) << "trial " << trial << ": " << b.status.describe();
    EXPECT_NEAR(a.result.value, b.result.value, 1e-9) << "trial " << trial;
  }
}

// Best-response regret of a symmetric profile (attacker mix, defender mix)
// on `game`: how much either side could gain by deviating. A profile is an
// equilibrium within ε iff both regrets are <= ε.
struct Regret {
  double defender = 0;
  double attacker = 0;
};

Regret profile_regret(const core::TupleGame& game,
                      const core::VertexDistribution& attacker,
                      const core::TupleDistribution& defender) {
  const core::MixedConfiguration config =
      core::symmetric_configuration(game, attacker, defender);
  core::validate(game, config);
  const std::vector<double> masses = core::vertex_mass(game, config);
  const std::vector<double> hit = core::hit_probabilities(game, config);
  Regret r;
  r.defender = core::best_tuple(game, masses).mass -
               core::defender_profit(game, config);
  r.attacker = (1.0 - *std::min_element(hit.begin(), hit.end())) -
               core::attacker_profit(game, config, 0);
  return r;
}

// Solves G through the engine (which populates the cache), probes with
// π(G), and checks the transported profile is an equilibrium ON π(G).
void check_transport_equilibrium(engine::JobSolver solver,
                                 std::uint64_t seed, int trials) {
  util::Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = random_board(rng);
    if (solver == engine::JobSolver::kZeroSumLp && g.num_edges() > 14)
      continue;  // keep the exact-LP enumeration tiny
    const std::vector<graph::Vertex> perm =
        random_permutation(g.num_vertices(), rng);
    const graph::Graph pg = graph::permute(g, perm);

    SolveCache cache;
    engine::EngineConfig config;
    config.cache = &cache;
    engine::SolveEngine engine(config);
    engine::SolveJob job{core::TupleGame(g, 2, 1)};
    job.solver = solver;
    job.tolerance = 1e-9;
    job.budget = SolveBudget::iterations(500);
    const engine::BatchReport report = engine.run({job});
    ASSERT_TRUE(report.results.at(0).ok())
        << "trial " << trial << ": " << report.results.at(0).status.describe();
    ASSERT_EQ(cache.stats().stores, 1u) << "trial " << trial;

    engine::SolveJob probe{core::TupleGame(pg, 2, 1)};
    probe.solver = solver;
    probe.tolerance = 1e-9;
    probe.budget = SolveBudget::iterations(500);
    const engine::CanonicalJobKey probe_key =
        engine::canonical_key_for_job(probe);
    std::optional<CachedSolve> hit = cache.lookup(probe_key.key);
    ASSERT_TRUE(hit.has_value()) << "trial " << trial;
    ASSERT_TRUE(hit->has_profiles) << "trial " << trial;

    const Solved<TransportedProfiles> transported =
        cache.transport(*hit, probe_key.form, pg);
    ASSERT_TRUE(transported.ok())
        << "trial " << trial << ": " << transported.status.describe();

    // 1e-6 leaves headroom over the 1e-9 solve tolerance for the
    // restricted simplex's numerical floor; transport itself is exact.
    const Regret regret =
        profile_regret(probe.game, transported.result.attacker,
                       transported.result.defender);
    EXPECT_LE(regret.defender, 1e-6) << "trial " << trial;
    EXPECT_LE(regret.attacker, 1e-6) << "trial " << trial;

    // The transported value must match the cached one: the profile's
    // defender profit equals the hit probability value scaled by ν = 1.
    EXPECT_NEAR(hit->value, report.results.at(0).value, 0) << "trial " << trial;
  }
}

TEST(TransportProperty, DoubleOracleProfileIsEquilibriumAfterTransport) {
  check_transport_equilibrium(engine::JobSolver::kDoubleOracle, 0xCAFE04, 100);
}

TEST(TransportProperty, ZeroSumLpProfileIsEquilibriumAfterTransport) {
  check_transport_equilibrium(engine::JobSolver::kZeroSumLp, 0xCAFE05, 20);
}

}  // namespace
}  // namespace defender::cache
