// Property suite for the flat simplex tableau (lp/tableau.hpp).
//
// Three invariants, fuzzed over 10k random tableaus each:
//   * pivot-then-unpivot restores the ENTIRE allocation bit-for-bit —
//     tableau doubles, pad lanes, and both basis index arrays. The fuzzer
//     draws dyadic-rational instances (integer entries, power-of-two pivot
//     elements) so every floating-point operation in both pivots is exact
//     and the restore claim is algebra, not tolerance;
//   * the basis index arrays stay a (partial) permutation under arbitrary
//     legal pivot sequences: basic_var and var_row remain mutual inverses
//     with no duplicated basic column;
//   * managed -> unmanaged demotion aliases the owner's storage: the core's
//     rows live inside the one allocation, writes through either view are
//     visible through the other, and demotion copies zero bytes.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "lp/tableau.hpp"
#include "util/random.hpp"

namespace {

using namespace defender;

/// A random dyadic-rational tableau: integer entries in [-8, 8] everywhere,
/// columns [0, rows) forming an identity basic set, and every prospective
/// pivot element forced to +/- 2^k for k in {0, 1, 2}. All pivot arithmetic
/// on such an instance is exact in double precision.
lp::Simplex random_dyadic_tableau(util::Rng& rng, std::size_t rows,
                                  std::size_t width) {
  lp::Simplex s(rows, width);
  lp::SimplexCore core = s.core();
  for (std::size_t i = 0; i <= rows; ++i) {
    double* row = core.row(i);
    for (std::size_t j = 0; j < width; ++j)
      row[j] = static_cast<double>(rng.range(-8, 8));
  }
  // Identity basic columns 0..rows-1 (z-row entry zero, like a priced-out
  // basis).
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t r = 0; r <= rows; ++r) core.at(r, i) = 0.0;
    core.at(i, i) = 1.0;
    core.set_basis(i, i);
  }
  return s;
}

TEST(TableauPropertyTest, PivotThenUnpivotRestoresBitForBit) {
  util::Rng rng(0xd1ad1c);
  for (int iter = 0; iter < 10'000; ++iter) {
    const std::size_t rows = static_cast<std::size_t>(rng.range(1, 6));
    const std::size_t width =
        rows + 1 + static_cast<std::size_t>(rng.range(1, 6));
    lp::Simplex s = random_dyadic_tableau(rng, rows, width);
    lp::SimplexCore core = s.core();

    const std::size_t r = static_cast<std::size_t>(rng.range(
        0, static_cast<std::int64_t>(rows) - 1));
    // Entering column: any nonbasic column, with a power-of-two pivot
    // element so the normalization divide is exact.
    const std::size_t c = rows + static_cast<std::size_t>(rng.range(
        0, static_cast<std::int64_t>(width - rows) - 1));
    const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    core.at(r, c) = sign * static_cast<double>(1 << rng.range(0, 2));

    std::vector<std::byte> snapshot(s.allocation_bytes());
    std::memcpy(snapshot.data(), s.memory(), snapshot.size());

    // Forward pivot brings column c into the basis in row r; the reverse
    // pivot on (r, r) — the column that just left — undoes it. With dyadic
    // data both are exact, so the whole allocation (doubles, pad lanes, and
    // both index arrays) must come back byte-identical.
    core.pivot(r, c, /*zero_eps=*/1e-9);
    EXPECT_NE(0, std::memcmp(snapshot.data(), s.memory(), snapshot.size()))
        << "iter " << iter << ": forward pivot was a no-op";
    core.pivot(r, r, /*zero_eps=*/1e-9);
    EXPECT_EQ(0, std::memcmp(snapshot.data(), s.memory(), snapshot.size()))
        << "iter " << iter << ": pivot/unpivot did not restore the tableau "
        << "(rows=" << rows << ", width=" << width << ", r=" << r
        << ", c=" << c << ")";
  }
}

/// basic_var and var_row must stay mutual inverses — no column basic in two
/// rows, no stale var_row entry — under arbitrary legal pivot sequences,
/// including dropped rows.
TEST(TableauPropertyTest, BasisArraysStayAPermutation) {
  util::Rng rng(0xba515);
  for (int iter = 0; iter < 10'000; ++iter) {
    const std::size_t rows = static_cast<std::size_t>(rng.range(1, 5));
    const std::size_t width =
        rows + 1 + static_cast<std::size_t>(rng.range(1, 5));
    lp::Simplex s = random_dyadic_tableau(rng, rows, width);
    lp::SimplexCore core = s.core();

    const int pivots = static_cast<int>(rng.range(0, 6));
    for (int p = 0; p < pivots; ++p) {
      const std::size_t r = static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(rows) - 1));
      if (rng.bernoulli(0.1)) {
        core.drop_row(r);
        continue;
      }
      if (core.is_dropped(r)) continue;
      // Pick a column with a safely large pivot element; regenerate one if
      // the row has none.
      const std::size_t c = static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(width) - 1));
      // A column basic in a different row never enters (its reduced cost is
      // exactly zero in the real algorithm); honor that precondition here.
      if (core.var_row(c) != lp::kTableauNone &&
          core.var_row(c) != static_cast<lp::TableauIndex>(r))
        continue;
      if (std::abs(core.at(r, c)) < 0.5) core.at(r, c) = 2.0;
      core.pivot(r, c, 1e-9);
    }

    // Invariant: the two arrays are mutual inverses.
    std::vector<int> seen(width, 0);
    for (std::size_t i = 0; i < rows; ++i) {
      const lp::TableauIndex b = core.basic_var(i);
      if (b == lp::kTableauNone) continue;  // dropped row
      ASSERT_GE(b, 0);
      ASSERT_LT(static_cast<std::size_t>(b), width);
      ++seen[static_cast<std::size_t>(b)];
      EXPECT_EQ(core.var_row(static_cast<std::size_t>(b)),
                static_cast<lp::TableauIndex>(i))
          << "iter " << iter << ": var_row out of sync for basic column "
          << b;
    }
    for (std::size_t j = 0; j < width; ++j) {
      EXPECT_LE(seen[j], 1) << "iter " << iter << ": column " << j
                            << " basic in two rows";
      const lp::TableauIndex vr = core.var_row(j);
      if (vr == lp::kTableauNone) {
        EXPECT_EQ(seen[j], 0);
      } else {
        ASSERT_GE(vr, 0);
        ASSERT_LT(static_cast<std::size_t>(vr), rows);
        EXPECT_EQ(core.basic_var(static_cast<std::size_t>(vr)),
                  static_cast<lp::TableauIndex>(j))
            << "iter " << iter << ": basic_var out of sync for column " << j;
      }
    }
  }
}

TEST(TableauPropertyTest, DemotionAliasesTheSameStorage) {
  util::Rng rng(0xa11a5);
  for (int iter = 0; iter < 10'000; ++iter) {
    const std::size_t rows = static_cast<std::size_t>(rng.range(1, 6));
    const std::size_t width =
        rows + 1 + static_cast<std::size_t>(rng.range(1, 8));
    lp::Simplex s(rows, width);
    lp::SimplexCore core = s.core();

    // Geometry: one allocation, tableau doubles right after the (aligned)
    // index block, rows `stride` apart with stride >= width.
    EXPECT_GE(s.stride(), width);
    EXPECT_EQ(s.stride() % lp::Simplex::kRowAlignDoubles, 0u);
    const std::byte* base = s.memory();
    const auto* tableau =
        reinterpret_cast<const double*>(base + s.tableau_offset());
    EXPECT_EQ(core.row(0), tableau) << "core does not alias the allocation";
    for (std::size_t i = 0; i <= rows; ++i) {
      const auto* row_bytes = reinterpret_cast<const std::byte*>(core.row(i));
      EXPECT_GE(row_bytes, base);
      EXPECT_LE(row_bytes + width * sizeof(double),
                base + s.allocation_bytes())
          << "row " << i << " escapes the single allocation";
      EXPECT_EQ(core.row(i), core.row(0) + i * s.stride());
    }

    // Writes through one demoted view are visible through another and
    // through a copied view: they are all the same bytes.
    const std::size_t i = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(rows)));
    const std::size_t j = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(width) - 1));
    const double v = static_cast<double>(iter) + 0.25;
    core.at(i, j) = v;
    lp::SimplexCore again = s.core();
    EXPECT_EQ(again.at(i, j), v);
    lp::SimplexCore copy = again;  // copies the view, not the data
    copy.at(i, j) = v + 1.0;
    EXPECT_EQ(core.at(i, j), v + 1.0)
        << "copied view did not alias the same storage";
  }
}

/// The release-mode checking policy is a compile-time fact; pin it so a
/// build-system change that silently turns asserts on in Release (or off
/// under sanitizers) fails loudly.
TEST(TableauPropertyTest, BoundsCheckFlagTracksNdebug) {
#ifdef NDEBUG
  EXPECT_FALSE(lp::kTableauBoundsChecked);
#else
  EXPECT_TRUE(lp::kTableauBoundsChecked);
#endif
}

}  // namespace
