// The "defender-cache v1" persistent store: a golden-file pin of the
// serialization (so accidental format drift is loud), plus hostile-input
// parsing with exact 1-based line numbers (hardened-parse discipline,
// PR 1 / docs/CACHE.md).
//
// Regenerating the golden after an INTENTIONAL format change:
//   DEFENDER_REGEN_GOLDEN=1 ./cache_store_test
#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "graph/graph.hpp"

namespace defender::cache {
namespace {

const char* golden_path() {
  return DEFENDER_TEST_DATA_DIR "/cache_v1.golden.txt";
}

// Two handcrafted entries covering every optional block: entry A is
// unweighted with a checkpoint and no profiles, entry B is weighted with
// profiles and no checkpoint. Edge lists are hand-written (the golden
// pins the FORMAT, not the canonical labeling algorithm).
std::vector<CachedSolve> golden_entries() {
  CachedSolve a;
  a.n = 4;
  a.k = 2;
  a.num_attackers = 1;
  a.exact_form = true;
  a.solver = "double-oracle";
  a.tolerance = 1e-9;
  a.max_iterations = 60;
  a.edges = {{0, 1}, {0, 2}, {1, 3}};
  a.message = "converged";
  a.iterations = 9;
  a.residual = 0.0;
  a.value = a.lower = a.upper = 0.25;
  a.attempt_value = a.attempt_lower = a.attempt_upper = 0.25;
  a.checkpoint_text = "defender-checkpoint v1\nkind double-oracle\n";

  CachedSolve b;
  b.n = 4;
  b.k = 2;
  b.num_attackers = 2;
  b.exact_form = true;
  b.solver = "weighted-double-oracle";
  b.tolerance = 1e-6;
  b.max_iterations = 200;
  b.wall_clock_seconds = 1.5;
  b.oracle_node_budget = 5000;
  b.edges = {{0, 1}, {1, 2}, {2, 3}};
  b.weights = {2.0, 1.5, 1.5, 1.0};
  b.message = "converged after oracle silence";
  b.iterations = 12;
  b.residual = 1e-7;
  b.value = b.lower = b.upper = 0.375;
  b.attempt_value = b.attempt_lower = b.attempt_upper = 0.375;
  b.has_profiles = true;
  b.defender_support = {{0, 2}, {1, 2}};
  b.defender_probs = {0.625, 0.375};
  b.attacker_support = {0, 3};
  b.attacker_probs = {0.5, 0.5};

  return {a, b};
}

// SolveCache owns a mutex and cannot move; callers pass one in.
void fill_golden(SolveCache& cache) {
  for (const CachedSolve& e : golden_entries()) cache.store(key_from_entry(e), e);
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CacheGolden, SerializationMatchesGoldenByteForByte) {
  SolveCache cache;
  fill_golden(cache);
  const std::string text = cache.to_text();
  if (std::getenv("DEFENDER_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }
  EXPECT_EQ(text, read_file(golden_path()));
}

TEST(CacheGolden, GoldenReloadsAndReserializesIdentically) {
  const std::string golden = read_file(golden_path());
  SolveCache cache;
  const Status merged = cache.merge_text(golden);
  ASSERT_TRUE(merged.ok()) << merged.describe();
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.to_text(), golden);

  // The original keys hit the reloaded cache, payloads intact.
  for (const CachedSolve& e : golden_entries()) {
    const std::optional<CachedSolve> hit = cache.lookup(key_from_entry(e));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->solver, e.solver);
    EXPECT_EQ(hit->value, e.value);
    EXPECT_EQ(hit->weights, e.weights);
    EXPECT_EQ(hit->defender_probs, e.defender_probs);
    EXPECT_EQ(hit->checkpoint_text, e.checkpoint_text);
  }
}

// A minimal valid single-entry store, line-numbered for the hostile tests:
//  1 defender-cache v1      6 params ...     11 value ...
//  2 entries 1              7 edges ...      12 attempt ...
//  3 entry                  8 weights 0      13 profiles 0
//  4 board 3 2 1 1 1        9 status 5 0     14 checkpoint 0
//  5 solver double-oracle  10 message ok     15 end
std::vector<std::string> base_lines() {
  return {
      "defender-cache v1", "entries 1",     "entry",
      "board 3 2 1 1 1",   "solver double-oracle",
      "params 1e-09 60 0 0", "edges 0 1 1 2", "weights 0",
      "status 5 0",        "message ok",    "value 0.5 0.5 0.5",
      "attempt 0.5 0.5 0.5", "profiles 0",  "checkpoint 0",
      "end",
  };
}

std::string join(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& l : lines) {
    text += l;
    text += '\n';
  }
  return text;
}

void expect_rejected(const std::string& text, std::size_t line,
                     const std::string& what) {
  SolveCache cache;
  const Status status = cache.merge_text(text);
  EXPECT_EQ(status.code, StatusCode::kInvalidInput);
  EXPECT_NE(status.message.find("cache line " + std::to_string(line)),
            std::string::npos)
      << status.message;
  EXPECT_NE(status.message.find(what), std::string::npos) << status.message;
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheParsing, AcceptsTheMinimalValidStore) {
  SolveCache cache;
  const Status merged = cache.merge_text(join(base_lines()));
  ASSERT_TRUE(merged.ok()) << merged.describe();
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheParsing, RejectsHostileInputWithExactLineNumbers) {
  expect_rejected("", 1, "empty input");
  expect_rejected("defender-cache v2\nentries 0\n", 1,
                  "unsupported cache version 2");
  expect_rejected("defender-cache vX\n", 1, "malformed version");
  expect_rejected("checkpoint v1\n", 1, "missing 'defender-cache v1' header");
  // Declared counts beyond the allocation cap are refused up front.
  expect_rejected("defender-cache v1\nentries 1000001\n", 2,
                  "expected 'entries <count>'");
  expect_rejected("defender-cache v1\nentries 1\n", 3,
                  "missing 'entry' marker");

  std::vector<std::string> lines = base_lines();
  lines[6] = "edges 1 0 1 2";  // u >= v: not a normalized canonical edge
  expect_rejected(join(lines), 7, "malformed canonical edge list");

  lines = base_lines();
  lines[6] = "edges 0 1 1 3";  // endpoint out of range for n = 3
  expect_rejected(join(lines), 7, "malformed canonical edge list");

  lines = base_lines();
  lines[7] = "weights 2 1 1";  // n = 3 but two weights
  expect_rejected(join(lines), 8, "weights must be empty or one per vertex");

  lines = base_lines();
  lines[10] = "value nan 0.5 0.5";  // non-finite payloads never load
  expect_rejected(join(lines), 11, "expected 'value <v> <lower> <upper>'");

  lines = base_lines();
  // Declares more checkpoint lines than the block has: the raw reader
  // swallows the "end" trailer as checkpoint payload and hits EOF.
  lines[13] = "checkpoint 3";
  expect_rejected(join(lines), 16, "truncated checkpoint block");

  lines = base_lines();
  lines.pop_back();  // drop the end trailer
  expect_rejected(join(lines), 15, "missing 'end' trailer");
}

TEST(CacheParsing, KeepsEarlierEntriesWhenALaterOneIsMalformed) {
  std::vector<std::string> lines = base_lines();
  lines[1] = "entries 2";
  lines.push_back("entry");
  lines.push_back("board not-a-number");
  SolveCache cache;
  const Status status = cache.merge_text(join(lines));
  EXPECT_EQ(status.code, StatusCode::kInvalidInput);
  EXPECT_EQ(cache.size(), 1u);  // the valid first entry survives
}

TEST(CacheParsing, MessageLineRoundTripsVerbatim) {
  std::vector<std::string> lines = base_lines();
  lines[9] = "message iteration limit: gap 3.2e-04 > tol  (degraded)";
  SolveCache cache;
  ASSERT_TRUE(cache.merge_text(join(lines)).ok());
  EXPECT_NE(cache.to_text().find(lines[9]), std::string::npos);
}

}  // namespace
}  // namespace defender::cache
