// SolveCache unit properties: LRU discipline, the hash-collision guard,
// warm-checkpoint near-miss lookups, transport hardening, metrics
// mirroring, and text round-trips of engine-produced entries
// (docs/CACHE.md).
#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cache/canonical.hpp"
#include "core/budget.hpp"
#include "core/game.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace defender::cache {
namespace {

// A minimal self-consistent entry for a path board of `n` vertices; the
// key is rebuilt from the entry itself so store/lookup agree by
// construction.
CachedSolve path_entry(std::size_t n, double tolerance = 1e-9) {
  const CanonicalForm form = canonical_form(graph::path_graph(n));
  CachedSolve entry;
  entry.n = form.n;
  entry.k = 2;
  entry.num_attackers = 1;
  entry.exact_form = form.exact;
  entry.solver = "double-oracle";
  entry.tolerance = tolerance;
  entry.max_iterations = 60;
  entry.edges = form.edges;
  entry.message = "converged";
  entry.iterations = 7;
  entry.residual = 0.0;
  entry.value = 1.0 / static_cast<double>(n);
  entry.lower = entry.value;
  entry.upper = entry.value;
  entry.attempt_value = entry.value;
  entry.attempt_lower = entry.lower;
  entry.attempt_upper = entry.upper;
  return entry;
}

TEST(SolveCache, LruEvictsLeastRecentlyUsed) {
  SolveCache cache(CacheConfig{.capacity = 2});
  const CachedSolve a = path_entry(4), b = path_entry(5), c = path_entry(6);
  const CacheKey ka = key_from_entry(a), kb = key_from_entry(b),
                 kc = key_from_entry(c);
  cache.store(ka, a);
  cache.store(kb, b);
  ASSERT_TRUE(cache.lookup(ka).has_value());  // touch: a is now MRU
  cache.store(kc, c);                         // evicts b, the LRU entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(kb).has_value());
  EXPECT_TRUE(cache.lookup(ka).has_value());
  EXPECT_TRUE(cache.lookup(kc).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SolveCache, StoreRefreshesExistingKeyInPlace) {
  SolveCache cache(CacheConfig{.capacity = 4});
  CachedSolve a = path_entry(4);
  const CacheKey ka = key_from_entry(a);
  cache.store(ka, a);
  a.iterations = 99;
  cache.store(ka, a);
  EXPECT_EQ(cache.size(), 1u);
  const std::optional<CachedSolve> hit = cache.lookup(ka);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->iterations, 99u);
}

TEST(SolveCache, CollisionGuardRefusesFoldedHashNeighbours) {
  // hash_mask 0 funnels EVERY key into one bucket: all lookups scan
  // colliding neighbours and must tell them apart by full key text.
  SolveCache cache(CacheConfig{.capacity = 16, .hash_mask = 0});
  const CachedSolve a = path_entry(4), b = path_entry(5), c = path_entry(6);
  cache.store(key_from_entry(a), a);
  cache.store(key_from_entry(b), b);
  cache.store(key_from_entry(c), c);
  for (const CachedSolve* e : {&a, &b, &c}) {
    const std::optional<CachedSolve> hit = cache.lookup(key_from_entry(*e));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->n, e->n);  // never a colliding neighbour's payload
  }
  EXPECT_GT(cache.stats().collisions, 0u);
  // A probe that matches no entry is a miss even though the bucket is full.
  EXPECT_FALSE(cache.lookup(key_from_entry(path_entry(9))).has_value());
}

TEST(SolveCache, WarmCheckpointMatchesStructuralKeyAcrossParams) {
  SolveCache cache;
  CachedSolve loose = path_entry(6, /*tolerance=*/1e-2);
  loose.checkpoint_text = "defender-checkpoint v1\nfake payload\n";
  cache.store(key_from_entry(loose), loose);

  // Same board + solver at a tighter tolerance: exact lookup misses, the
  // warm probe finds the structural twin's checkpoint.
  const CacheKey tight = key_from_entry(path_entry(6, /*tolerance=*/1e-9));
  EXPECT_FALSE(cache.lookup(tight).has_value());
  const std::optional<std::string> warm = cache.warm_checkpoint(tight);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(*warm, loose.checkpoint_text);
  EXPECT_EQ(cache.stats().warm_hits, 1u);

  // A different board has no structural twin.
  EXPECT_FALSE(cache.warm_checkpoint(key_from_entry(path_entry(7))).has_value());

  // Entries without a checkpoint never serve warm starts.
  SolveCache bare;
  const CachedSolve plain = path_entry(6, 1e-2);
  bare.store(key_from_entry(plain), plain);
  EXPECT_FALSE(bare.warm_checkpoint(tight).has_value());
}

TEST(SolveCache, WarmSnapshotIsImmuneToLaterStores) {
  SolveCache cache;
  CachedSolve loose = path_entry(6, 1e-2);
  loose.checkpoint_text = "defender-checkpoint v1\nold\n";
  cache.store(key_from_entry(loose), loose);
  const WarmSnapshot snapshot = cache.warm_snapshot();

  CachedSolve newer = path_entry(6, 1e-3);
  newer.checkpoint_text = "defender-checkpoint v1\nnew\n";
  cache.store(key_from_entry(newer), newer);

  const auto it = snapshot.find(key_from_entry(loose).structural);
  ASSERT_NE(it, snapshot.end());
  EXPECT_EQ(it->second, loose.checkpoint_text);
}

TEST(SolveCache, RejectsNonFinitePayloads) {
  SolveCache cache;
  CachedSolve bad = path_entry(5);
  bad.value = std::numeric_limits<double>::quiet_NaN();
  cache.store(key_from_entry(bad), bad);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolveCache, TransportRejectsTamperedProfiles) {
  const graph::Graph g = graph::path_graph(5);
  const CanonicalForm form = canonical_form(g);
  SolveCache cache;

  CachedSolve entry = path_entry(5);
  // No profiles at all: transport must refuse, not fabricate.
  EXPECT_EQ(cache.transport(entry, form, g).status.code,
            StatusCode::kInvalidInput);

  // Canonical edge id out of range (as a tampered store could carry).
  entry.has_profiles = true;
  entry.defender_support = {{0, 99}};
  entry.defender_probs = {1.0};
  entry.attacker_support = {0};
  entry.attacker_probs = {1.0};
  EXPECT_EQ(cache.transport(entry, form, g).status.code,
            StatusCode::kInvalidInput);

  // Probabilities that do not sum to 1 fail distribution validation.
  entry.defender_support = {{0, 1}};
  entry.defender_probs = {0.25};
  EXPECT_EQ(cache.transport(entry, form, g).status.code,
            StatusCode::kInvalidInput);
}

TEST(SolveCache, MirrorsCountersIntoMetricsRegistry) {
  obs::MetricsRegistry metrics;
  SolveCache cache(CacheConfig{.capacity = 1, .metrics = &metrics});
  const CachedSolve a = path_entry(4), b = path_entry(5);
  cache.store(key_from_entry(a), a);
  cache.store(key_from_entry(b), b);  // evicts a
  EXPECT_TRUE(cache.lookup(key_from_entry(b)).has_value());
  EXPECT_FALSE(cache.lookup(key_from_entry(a)).has_value());
  EXPECT_EQ(metrics.counter("cache.stores").value(), 2u);
  EXPECT_EQ(metrics.counter("cache.evictions").value(), 1u);
  EXPECT_EQ(metrics.counter("cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("cache.misses").value(), 1u);
}

// Populates a cache through the real engine (profiles, checkpoints,
// weighted entries included) and round-trips it through the persistent
// text format: byte-identical re-serialization and hit-for-hit equality.
TEST(SolveCachePersistence, EngineProducedEntriesRoundTripByteExactly) {
  SolveCache cache;
  engine::EngineConfig config;
  config.cache = &cache;
  engine::SolveEngine engine(config);

  std::vector<engine::SolveJob> jobs;
  const graph::Graph boards[] = {graph::path_graph(6), graph::cycle_graph(7),
                                 graph::complete_bipartite(3, 3),
                                 graph::grid_graph(2, 4)};
  const engine::JobSolver solvers[] = {
      engine::JobSolver::kDoubleOracle,
      engine::JobSolver::kWeightedDoubleOracle,
      engine::JobSolver::kZeroSumLp,
      engine::JobSolver::kFictitiousPlay,
  };
  for (std::size_t i = 0; i < 4; ++i) {
    engine::SolveJob job{core::TupleGame(boards[i], 2, 1)};
    job.solver = solvers[i];
    job.tolerance =
        job.solver == engine::JobSolver::kFictitiousPlay ? 1e-2 : 1e-9;
    job.budget = SolveBudget::iterations(
        job.solver == engine::JobSolver::kFictitiousPlay ? 4000 : 400);
    if (engine::is_weighted(job.solver)) {
      job.weights.assign(boards[i].num_vertices(), 1.0);
      job.weights[0] = 2.5;
    }
    jobs.push_back(std::move(job));
  }
  const engine::BatchReport report = engine.run(jobs);
  for (const engine::JobResult& r : report.results)
    ASSERT_TRUE(r.ok()) << r.status.describe();
  ASSERT_EQ(cache.size(), jobs.size());

  const std::string text = cache.to_text();
  SolveCache reloaded;
  const Status merged = reloaded.merge_text(text);
  ASSERT_TRUE(merged.ok()) << merged.describe();
  EXPECT_EQ(reloaded.size(), cache.size());
  EXPECT_EQ(reloaded.to_text(), text);

  // Every key the engine would derive for these jobs hits the reload.
  for (const engine::SolveJob& job : jobs) {
    const engine::CanonicalJobKey key = engine::canonical_key_for_job(job);
    EXPECT_TRUE(reloaded.lookup(key.key).has_value());
  }
}

}  // namespace
}  // namespace defender::cache
