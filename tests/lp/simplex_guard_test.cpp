// Numerical guards and budgets of the hardened simplex: pivot caps,
// deadlines, post-solve residual verification, and the lp_residuals
// certificate itself.
#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lp/dense_matrix.hpp"

namespace defender::lp {
namespace {

/// maximize x0 + x1 s.t. x0 <= 2, x1 <= 3, x0 + x1 <= 4 -> optimum 4.
struct SmallLp {
  Matrix a{3, 2};
  std::vector<double> b{2, 3, 4};
  std::vector<double> c{1, 1};
  SmallLp() {
    a.at(0, 0) = 1;
    a.at(1, 1) = 1;
    a.at(2, 0) = 1;
    a.at(2, 1) = 1;
  }
};

TEST(SimplexGuards, VerificationPassesOnCleanLp) {
  const SmallLp lp;
  const LpSolution s = solve_max(lp.a, lp.b, lp.c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
  EXPECT_LE(s.max_primal_residual, 1e-7);
  EXPECT_LE(s.duality_gap, 1e-7);
  EXPECT_FALSE(s.resolved_after_instability);
  EXPECT_GT(s.pivots, 0u);
}

TEST(SimplexGuards, PivotBudgetSurfacesIterationLimit) {
  const SmallLp lp;
  SimplexOptions options;
  options.max_pivots = 1;
  const LpSolution s = solve_max(lp.a, lp.b, lp.c, options);
  EXPECT_EQ(s.status, LpStatus::kIterationLimit);
  EXPECT_LE(s.pivots, 1u);
  // Best-effort state is still extracted, sized like a real solution.
  EXPECT_EQ(s.x.size(), 2u);
  EXPECT_EQ(s.duals.size(), 3u);
}

TEST(SimplexGuards, DeadlineSurfacesIterationLimit) {
  // A deadline that expired before the solve started: the loop must stop
  // at its first poll, not spin.
  const SmallLp lp;
  SimplexOptions options;
  options.deadline_seconds = 1e-12;
  const LpSolution s = solve_max(lp.a, lp.b, lp.c, options);
  // Deadline polling is amortized (every 16 pivots), so a tiny LP may
  // finish first; either outcome is sound, a hang or throw is not.
  EXPECT_TRUE(s.status == LpStatus::kIterationLimit ||
              s.status == LpStatus::kOptimal);
}

TEST(SimplexGuards, VerifyOffSkipsCertificates) {
  const SmallLp lp;
  SimplexOptions options;
  options.verify = false;
  const LpSolution s = solve_max(lp.a, lp.b, lp.c, options);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.max_primal_residual, 0.0);
  EXPECT_EQ(s.duality_gap, 0.0);
}

TEST(SimplexGuards, InfeasibleStillDetected) {
  // x0 <= 1 and -x0 <= -2 (i.e. x0 >= 2): empty feasible region.
  Matrix a(2, 1);
  a.at(0, 0) = 1;
  a.at(1, 0) = -1;
  const std::vector<double> b{1, -2};
  const std::vector<double> c{1};
  const LpSolution s = solve_max(a, b, c);
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SimplexGuards, UnboundedStillDetected) {
  // maximize x0, only constraint -x0 <= 0: unbounded above.
  Matrix a(1, 1);
  a.at(0, 0) = -1;
  const std::vector<double> b{0};
  const std::vector<double> c{1};
  const LpSolution s = solve_max(a, b, c);
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(LpResiduals, FlagsCorruptedPrimalPoint) {
  const SmallLp lp;
  const LpSolution s = solve_max(lp.a, lp.b, lp.c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  const LpResiduals clean = lp_residuals(lp.a, lp.b, lp.c, s.x, s.duals);
  EXPECT_LE(clean.max_primal_residual, 1e-9);
  EXPECT_LE(clean.duality_gap, 1e-9);

  // Push the point outside the feasible region.
  std::vector<double> corrupted = s.x;
  corrupted[0] += 10.0;
  const LpResiduals broken =
      lp_residuals(lp.a, lp.b, lp.c, corrupted, s.duals);
  EXPECT_GE(broken.max_primal_residual, 9.0);

  // A negative coordinate is an infeasibility too.
  std::vector<double> negative = s.x;
  negative[1] = -1.0;
  const LpResiduals neg =
      lp_residuals(lp.a, lp.b, lp.c, negative, s.duals);
  EXPECT_GE(neg.max_primal_residual, 1.0 - 1e-12);

  // Corrupted duals show up in the duality gap.
  std::vector<double> bad_duals = s.duals;
  bad_duals[0] += 5.0;
  const LpResiduals gap = lp_residuals(lp.a, lp.b, lp.c, s.x, bad_duals);
  EXPECT_GE(gap.duality_gap, 1.0);
}

TEST(LpStatusNames, AllCovered) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(LpStatus::kNumericallyUnstable),
               "numerically-unstable");
}

}  // namespace
}  // namespace defender::lp
