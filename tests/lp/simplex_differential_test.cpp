// Differential bit-compatibility suite: the flat-tableau simplex
// (lp/tableau.hpp + lp/simplex.cpp) against the preserved original
// implementation (lp::reference::solve_max, src/lp/simplex_reference.cpp).
//
// "Bit-equal" here is literal: objective, solution vector, duals, residual
// fields, pivot counts, and statuses are compared through
// std::bit_cast<uint64_t>, not within a tolerance. The flat core performs
// the same floating-point operations in the same order as the original —
// only the storage layout changed — so any divergence, on any platform or
// sanitizer CI runs, is a real behavioural change and fails the build.
//
// Corpus: the stress-harness board zoo (tests/common/board_corpus.hpp)
// pushed through core::coverage_matrix and the matrix-game shift — exactly
// the LPs the production solvers generate — plus handcrafted degenerate,
// unbounded, and infeasible programs, budget/cancel truncations
// (kill-at-pivot-i), and armed lp-* fault plans.
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/board_corpus.hpp"
#include "core/budget.hpp"
#include "core/zero_sum.hpp"
#include "fault/fault.hpp"
#include "lp/dense_matrix.hpp"
#include "lp/matrix_game.hpp"
#include "lp/simplex.hpp"
#include "lp/simplex_reference.hpp"
#include "lp/tableau.hpp"
#include "util/random.hpp"

namespace {

using namespace defender;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Bitwise equality that treats every NaN payload as distinct too — the two
/// paths must produce the SAME bytes, not just the same value class.
void expect_bit_equal(double got, double want, const std::string& what) {
  EXPECT_EQ(bits(got), bits(want))
      << what << ": flat " << got << " vs reference " << want;
}

void expect_solutions_bit_equal(const lp::LpSolution& flat,
                                const lp::LpSolution& ref,
                                const std::string& tag) {
  EXPECT_EQ(flat.status, ref.status) << tag << ": status diverged ("
                                     << to_string(flat.status) << " vs "
                                     << to_string(ref.status) << ")";
  EXPECT_EQ(flat.pivots, ref.pivots) << tag << ": pivot count diverged";
  EXPECT_EQ(flat.resolved_after_instability, ref.resolved_after_instability)
      << tag << ": guard-retry flag diverged";
  expect_bit_equal(flat.objective, ref.objective, tag + ": objective");
  expect_bit_equal(flat.max_primal_residual, ref.max_primal_residual,
                   tag + ": max_primal_residual");
  expect_bit_equal(flat.duality_gap, ref.duality_gap, tag + ": duality_gap");
  ASSERT_EQ(flat.x.size(), ref.x.size()) << tag << ": x length diverged";
  for (std::size_t j = 0; j < flat.x.size(); ++j)
    expect_bit_equal(flat.x[j], ref.x[j],
                     tag + ": x[" + std::to_string(j) + "]");
  ASSERT_EQ(flat.duals.size(), ref.duals.size())
      << tag << ": duals length diverged";
  for (std::size_t i = 0; i < flat.duals.size(); ++i)
    expect_bit_equal(flat.duals[i], ref.duals[i],
                     tag + ": duals[" + std::to_string(i) + "]");
}

void expect_games_bit_equal(const Solved<lp::MatrixGameSolution>& flat,
                            const Solved<lp::MatrixGameSolution>& ref,
                            const std::string& tag) {
  EXPECT_EQ(flat.status.code, ref.status.code) << tag << ": status code";
  EXPECT_EQ(flat.status.iterations, ref.status.iterations)
      << tag << ": status iterations";
  expect_bit_equal(flat.result.value, ref.result.value, tag + ": value");
  expect_bit_equal(flat.result.lower_bound, ref.result.lower_bound,
                   tag + ": lower bound");
  expect_bit_equal(flat.result.upper_bound, ref.result.upper_bound,
                   tag + ": upper bound");
  ASSERT_EQ(flat.result.row_strategy.size(), ref.result.row_strategy.size());
  for (std::size_t i = 0; i < flat.result.row_strategy.size(); ++i)
    expect_bit_equal(flat.result.row_strategy[i], ref.result.row_strategy[i],
                     tag + ": row_strategy[" + std::to_string(i) + "]");
  ASSERT_EQ(flat.result.col_strategy.size(), ref.result.col_strategy.size());
  for (std::size_t j = 0; j < flat.result.col_strategy.size(); ++j)
    expect_bit_equal(flat.result.col_strategy[j], ref.result.col_strategy[j],
                     tag + ": col_strategy[" + std::to_string(j) + "]");
}

/// The matrix-game LP exactly as solve_matrix_game_budgeted builds it:
/// shifted payoff, unit rhs and objective.
struct GameLp {
  lp::Matrix a;
  std::vector<double> b;
  std::vector<double> c;
};

GameLp game_lp(const lp::Matrix& payoff) {
  const double shift = 1.0 - payoff.min_entry();
  GameLp out{lp::Matrix(payoff.rows(), payoff.cols()),
             std::vector<double>(payoff.rows(), 1.0),
             std::vector<double>(payoff.cols(), 1.0)};
  for (std::size_t i = 0; i < payoff.rows(); ++i)
    for (std::size_t j = 0; j < payoff.cols(); ++j)
      out.a.at(i, j) = payoff.at(i, j) + shift;
  return out;
}

void compare_backends(const lp::Matrix& a, std::span<const double> b,
                      std::span<const double> c,
                      const lp::SimplexOptions& options,
                      const std::string& tag) {
  const lp::LpSolution flat = lp::solve_max(a, b, c, options);
  const lp::LpSolution ref = lp::reference::solve_max(a, b, c, options);
  expect_solutions_bit_equal(flat, ref, tag);
}

/// Sanity pin for the acceptance criterion "release-mode bounds checks
/// verified compiled out": the constexpr flag must track NDEBUG exactly.
TEST(SimplexDifferentialTest, BoundsCheckFlagMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_FALSE(lp::kTableauBoundsChecked);
#else
  EXPECT_TRUE(lp::kTableauBoundsChecked);
#endif
}

/// The tentpole pin: the full stress-harness board corpus, solved through
/// both substrates, bit-for-bit.
TEST(SimplexDifferentialTest, StressCorpusBitEqual) {
  util::Rng rng(20260808);
  for (std::size_t i = 0; i < 48; ++i) {
    const core::TupleGame game = test_corpus::random_game(rng);
    const GameLp lp_in = game_lp(core::coverage_matrix(game));
    compare_backends(lp_in.a, lp_in.b, lp_in.c, lp::SimplexOptions{},
                     "corpus instance " + std::to_string(i) + " (n=" +
                         std::to_string(game.graph().num_vertices()) + ", k=" +
                         std::to_string(game.k()) + ")");
  }
}

/// Complete matrix-game brackets — shift, LP, strategy cleaning, security
/// levels, status mapping — through solve_matrix_game_budgeted_with on both
/// backends.
TEST(SimplexDifferentialTest, MatrixGameBracketsBitEqual) {
  util::Rng rng(777001);
  for (std::size_t i = 0; i < 24; ++i) {
    const core::TupleGame game = test_corpus::random_game(rng);
    const lp::Matrix payoff = core::coverage_matrix(game);
    const auto flat = lp::solve_matrix_game_budgeted_with(
        &lp::solve_max, payoff, SolveBudget::unlimited_budget());
    const auto ref = lp::solve_matrix_game_budgeted_with(
        &lp::reference::solve_max, payoff, SolveBudget::unlimited_budget());
    expect_games_bit_equal(flat, ref, "game " + std::to_string(i));
  }
}

TEST(SimplexDifferentialTest, DegenerateLpBitEqual) {
  // Heavily degenerate: duplicated rows and a zero rhs put many basic
  // variables at level zero, driving the Bland fallback path.
  const lp::Matrix a{{1, 1, 0}, {1, 1, 0}, {1, 0, 1}, {1, 0, 1}, {0, 1, 1}};
  const std::vector<double> b{1, 1, 1, 1, 0};
  const std::vector<double> c{1, 1, 1};
  compare_backends(a, b, c, lp::SimplexOptions{}, "degenerate");
}

TEST(SimplexDifferentialTest, NegativeRhsPhase1BitEqual) {
  // Negative rhs rows force artificials, exercising phase 1 and the
  // pivot-out-artificials sweep on both substrates.
  const lp::Matrix a{{-1, -1}, {1, -1}, {1, 3}};
  const std::vector<double> b{-1, 1, 7};
  const std::vector<double> c{1, 1};
  compare_backends(a, b, c, lp::SimplexOptions{}, "phase1");
}

TEST(SimplexDifferentialTest, RedundantRowDropBitEqual) {
  // Row 2 = row 0 + row 1 with b matching: phase 1 discovers a redundant
  // row and must drop it identically on both substrates.
  const lp::Matrix a{{-1, 0}, {0, -1}, {-1, -1}};
  const std::vector<double> b{-1, -1, -2};
  const std::vector<double> c{-1, -1};
  compare_backends(a, b, c, lp::SimplexOptions{}, "redundant-row");
}

TEST(SimplexDifferentialTest, InfeasibleLpBitEqual) {
  const lp::Matrix a{{1, 1}, {-1, -1}};
  const std::vector<double> b{1, -3};  // x+y <= 1 and x+y >= 3
  const std::vector<double> c{1, 1};
  compare_backends(a, b, c, lp::SimplexOptions{}, "infeasible");
}

TEST(SimplexDifferentialTest, UnboundedLpBitEqual) {
  const lp::Matrix a{{-1, 0}, {0, -1}};
  const std::vector<double> b{0, 0};
  const std::vector<double> c{1, 1};
  compare_backends(a, b, c, lp::SimplexOptions{}, "unbounded");
}

/// Kill-at-pivot-i: truncate both backends at every pivot budget from 1 up
/// to one past the full solve. Partial extracts must match bit-for-bit at
/// every step — the checkpoint/resume story depends on interrupted solves
/// being deterministic.
TEST(SimplexDifferentialTest, KillAtPivotIBitEqual) {
  util::Rng rng(424242);
  const core::TupleGame game = test_corpus::random_game(rng);
  const GameLp lp_in = game_lp(core::coverage_matrix(game));
  const lp::LpSolution full =
      lp::solve_max(lp_in.a, lp_in.b, lp_in.c, lp::SimplexOptions{});
  ASSERT_GT(full.pivots, 0u);
  for (std::size_t i = 1; i <= full.pivots + 1; ++i) {
    lp::SimplexOptions options;
    options.max_pivots = i;
    compare_backends(lp_in.a, lp_in.b, lp_in.c, options,
                     "kill at pivot " + std::to_string(i));
  }
}

/// A pre-cancelled token stops both backends at the same pivot stride.
TEST(SimplexDifferentialTest, CancelledSolveBitEqual) {
  util::Rng rng(99999);
  const core::TupleGame game = test_corpus::random_game(rng);
  const GameLp lp_in = game_lp(core::coverage_matrix(game));
  CancelToken flat_token;
  flat_token.request_cancel();
  lp::SimplexOptions flat_options;
  flat_options.cancel = &flat_token;
  const lp::LpSolution flat =
      lp::solve_max(lp_in.a, lp_in.b, lp_in.c, flat_options);
  CancelToken ref_token;
  ref_token.request_cancel();
  lp::SimplexOptions ref_options;
  ref_options.cancel = &ref_token;
  const lp::LpSolution ref =
      lp::reference::solve_max(lp_in.a, lp_in.b, lp_in.c, ref_options);
  expect_solutions_bit_equal(flat, ref, "pre-cancelled");
  EXPECT_EQ(flat.status, lp::LpStatus::kIterationLimit);
}

/// Both lp-* fault sites, armed at rate 1.0. Fault decisions are pure
/// functions of (plan seed, site, per-site counter), so a fresh context per
/// backend replays the identical schedule and the corrupted/demoted
/// solutions must still agree bit-for-bit.
TEST(SimplexDifferentialTest, FaultSitesBitEqual) {
  for (const fault::FaultSite site : {fault::FaultSite::kLpPivotPerturb,
                                      fault::FaultSite::kLpForceUnstable}) {
    util::Rng rng(31337);
    for (std::size_t i = 0; i < 6; ++i) {
      const core::TupleGame game = test_corpus::random_game(rng);
      const GameLp lp_in = game_lp(core::coverage_matrix(game));
      fault::FaultPlan plan;
      plan.seed = 0xfeed0000 + i;
      plan.rate[static_cast<std::size_t>(site)] = 1.0;

      fault::FaultContext flat_ctx(plan);
      lp::SimplexOptions flat_options;
      flat_options.fault = &flat_ctx;
      const lp::LpSolution flat =
          lp::solve_max(lp_in.a, lp_in.b, lp_in.c, flat_options);

      fault::FaultContext ref_ctx(plan);
      lp::SimplexOptions ref_options;
      ref_options.fault = &ref_ctx;
      const lp::LpSolution ref =
          lp::reference::solve_max(lp_in.a, lp_in.b, lp_in.c, ref_options);

      expect_solutions_bit_equal(
          flat, ref,
          "fault site " + std::to_string(static_cast<int>(site)) +
              " instance " + std::to_string(i));
    }
  }
}

/// Tightened-retry route: a near-singular program whose first solve can
/// trip the residual guard. Whatever route each run takes (accept, retry,
/// demote), the two backends must take the same one.
TEST(SimplexDifferentialTest, GuardRetryRouteBitEqual) {
  const double tiny = 1e-12;
  const lp::Matrix a{{1.0, 1.0}, {1.0, 1.0 + tiny}};
  const std::vector<double> b{1.0, 1.0};
  const std::vector<double> c{1.0, 1.0};
  lp::SimplexOptions options;
  options.residual_tolerance = 1e-16;  // force the guard to be picky
  compare_backends(a, b, c, options, "guard-retry");
}

}  // namespace
