#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace defender::lp {
namespace {

TEST(Simplex, TextbookTwoVariableProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2,6).
  const Matrix a{{1, 0}, {0, 2}, {3, 2}};
  const std::vector<double> b{4, 12, 18};
  const std::vector<double> c{3, 5};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(Simplex, DualPricesSatisfyStrongDuality) {
  const Matrix a{{1, 0}, {0, 2}, {3, 2}};
  const std::vector<double> b{4, 12, 18};
  const std::vector<double> c{3, 5};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  double dual_obj = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_GE(s.duals[i], -1e-9);
    dual_obj += s.duals[i] * b[i];
  }
  EXPECT_NEAR(dual_obj, s.objective, 1e-9);
  // Dual feasibility: y^T A >= c.
  for (std::size_t j = 0; j < c.size(); ++j) {
    double lhs = 0;
    for (std::size_t i = 0; i < b.size(); ++i) lhs += s.duals[i] * a.at(i, j);
    EXPECT_GE(lhs, c[j] - 1e-9);
  }
}

TEST(Simplex, DetectsUnboundedness) {
  // max x with only -x <= 1: x can grow without bound.
  const Matrix a{{-1.0}};
  const std::vector<double> b{1};
  const std::vector<double> c{1};
  EXPECT_EQ(solve_max(a, b, c).status, LpStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= -1 with x >= 0 is empty.
  const Matrix a{{1.0}};
  const std::vector<double> b{-1};
  const std::vector<double> c{1};
  EXPECT_EQ(solve_max(a, b, c).status, LpStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsFeasibleViaPhase1) {
  // max -x - y s.t. -x - y <= -4 (i.e. x + y >= 4): optimum -4.
  const Matrix a{{-1, -1}};
  const std::vector<double> b{-4};
  const std::vector<double> c{-1, -1};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-9);
}

TEST(Simplex, MixedSignRhs) {
  // max x + y s.t. x + y <= 6, -x <= -1 (x >= 1), -y <= -2 (y >= 2).
  const Matrix a{{1, 1}, {-1, 0}, {0, -1}};
  const std::vector<double> b{6, -1, -2};
  const std::vector<double> c{1, 1};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-9);
  EXPECT_GE(s.x[0], 1.0 - 1e-9);
  EXPECT_GE(s.x[1], 2.0 - 1e-9);
}

TEST(Simplex, ZeroObjectiveReturnsFeasiblePoint) {
  const Matrix a{{1, 1}};
  const std::vector<double> b{5};
  const std::vector<double> c{0, 0};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-12);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Degenerate vertex (multiple constraints active at the optimum): Bland's
  // rule must still terminate.
  const Matrix a{{1, 0}, {1, 0}, {1, 1}};
  const std::vector<double> b{2, 2, 3};
  const std::vector<double> c{2, 1};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, RedundantEqualLikeConstraints) {
  // x >= 3 expressed twice plus x <= 3 pins x to exactly 3.
  const Matrix a{{-1}, {-1}, {1}};
  const std::vector<double> b{-3, -3, 3};
  const std::vector<double> c{5};
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 15.0, 1e-9);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, RejectsDimensionMismatch) {
  const Matrix a{{1, 2}};
  const std::vector<double> b{1, 2};
  const std::vector<double> c{1, 1};
  EXPECT_THROW(solve_max(a, b, c), ContractViolation);
}

TEST(Simplex, LargerDiagonalProblem) {
  constexpr std::size_t kN = 20;
  Matrix a(kN, kN);
  std::vector<double> b(kN), c(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a.at(i, i) = 1.0;
    b[i] = static_cast<double>(i + 1);
    c[i] = 1.0;
  }
  const LpSolution s = solve_max(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, kN * (kN + 1) / 2.0, 1e-6);
}

TEST(LpStatusNames, AreStable) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
}

}  // namespace
}  // namespace defender::lp
