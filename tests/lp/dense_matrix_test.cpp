#include "lp/dense_matrix.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace defender::lp {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.at(r, c), 0.0);
}

TEST(Matrix, InitializerListLayout) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
}

TEST(Matrix, RejectsRaggedRows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), ContractViolation);
}

TEST(Matrix, RejectsEmptyDimensions) {
  EXPECT_THROW(Matrix(0, 2), ContractViolation);
  EXPECT_THROW(Matrix(2, 0), ContractViolation);
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, 2), ContractViolation);
}

TEST(Matrix, WriteThroughAt) {
  Matrix m(2, 2);
  m.at(1, 0) = 7.5;
  EXPECT_DOUBLE_EQ(m.at(1, 0), 7.5);
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(t.at(c, r), m.at(r, c));
}

TEST(Matrix, Extremes) {
  const Matrix m{{3, -1}, {0, 9}};
  EXPECT_DOUBLE_EQ(m.min_entry(), -1.0);
  EXPECT_DOUBLE_EQ(m.max_entry(), 9.0);
}

}  // namespace
}  // namespace defender::lp
