#include "lp/matrix_game.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::lp {
namespace {

void expect_equilibrium(const Matrix& payoff, const MatrixGameSolution& s,
                        double tol = 1e-7) {
  // Security levels certify optimality: the row strategy guarantees at
  // least the value, the column strategy concedes at most the value.
  EXPECT_GE(row_security_level(payoff, s.row_strategy), s.value - tol);
  EXPECT_LE(col_security_level(payoff, s.col_strategy), s.value + tol);
  double rs = 0, cs = 0;
  for (double p : s.row_strategy) rs += p;
  for (double p : s.col_strategy) cs += p;
  EXPECT_NEAR(rs, 1.0, 1e-9);
  EXPECT_NEAR(cs, 1.0, 1e-9);
}

TEST(MatrixGame, MatchingPennies) {
  const Matrix payoff{{1, -1}, {-1, 1}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_NEAR(s.value, 0.0, 1e-9);
  EXPECT_NEAR(s.row_strategy[0], 0.5, 1e-7);
  EXPECT_NEAR(s.col_strategy[0], 0.5, 1e-7);
  expect_equilibrium(payoff, s);
}

TEST(MatrixGame, RockPaperScissors) {
  const Matrix payoff{{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_NEAR(s.value, 0.0, 1e-9);
  for (double p : s.row_strategy) EXPECT_NEAR(p, 1.0 / 3, 1e-7);
  for (double p : s.col_strategy) EXPECT_NEAR(p, 1.0 / 3, 1e-7);
  expect_equilibrium(payoff, s);
}

TEST(MatrixGame, SaddlePointGame) {
  // Row 1 dominates; the saddle value is 2 at (row 1, col 0).
  const Matrix payoff{{1, 0}, {2, 3}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_NEAR(s.value, 2.0, 1e-9);
  EXPECT_NEAR(s.row_strategy[1], 1.0, 1e-7);
  EXPECT_NEAR(s.col_strategy[0], 1.0, 1e-7);
  expect_equilibrium(payoff, s);
}

TEST(MatrixGame, NonSquareGame) {
  const Matrix payoff{{2, 1, 0}, {0, 1, 2}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_NEAR(s.value, 1.0, 1e-7);
  expect_equilibrium(payoff, s);
}

TEST(MatrixGame, AllNegativeEntriesHandledByShift) {
  const Matrix payoff{{-3, -5}, {-4, -2}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_LT(s.value, 0);
  expect_equilibrium(payoff, s);
}

TEST(MatrixGame, ConstantGameHasConstantValue) {
  const Matrix payoff{{4, 4}, {4, 4}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_NEAR(s.value, 4.0, 1e-9);
}

TEST(MatrixGame, SingleRowIsPureMinimization) {
  const Matrix payoff{{3, 1, 2}};
  const MatrixGameSolution s = solve_matrix_game(payoff);
  EXPECT_NEAR(s.value, 1.0, 1e-9);
  EXPECT_NEAR(s.col_strategy[1], 1.0, 1e-7);
}

TEST(MatrixGame, RandomGamesSatisfyMinimaxWithinTolerance) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t rows = 2 + rng.below(5);
    const std::size_t cols = 2 + rng.below(5);
    Matrix payoff(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        payoff.at(r, c) = rng.uniform(-5.0, 5.0);
    const MatrixGameSolution s = solve_matrix_game(payoff);
    expect_equilibrium(payoff, s, 1e-6);
  }
}

TEST(SecurityLevels, RejectMismatchedStrategySizes) {
  const Matrix payoff{{1, 2}, {3, 4}};
  EXPECT_THROW(row_security_level(payoff, {1.0}),
               defender::ContractViolation);
  EXPECT_THROW(col_security_level(payoff, {1.0}),
               defender::ContractViolation);
}

}  // namespace
}  // namespace defender::lp
