#include "lp/brute_force.hpp"

#include <gtest/gtest.h>

#include "lp/simplex.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::lp {
namespace {

TEST(BruteForceLp, TextbookProblem) {
  const Matrix a{{1, 0}, {0, 2}, {3, 2}};
  const std::vector<double> b{4, 12, 18};
  const std::vector<double> c{3, 5};
  const auto best = brute_force::max_objective(a, b, c);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(*best, 36.0, 1e-9);
}

TEST(BruteForceLp, InfeasibleReturnsNullopt) {
  const Matrix a{{1.0}};
  const std::vector<double> b{-1};
  const std::vector<double> c{1};
  EXPECT_FALSE(brute_force::max_objective(a, b, c).has_value());
}

TEST(BruteForceLp, RejectsOversizedInstances) {
  const Matrix a(10, 6);
  const std::vector<double> b(10, 1.0);
  const std::vector<double> c(6, 1.0);
  EXPECT_THROW(brute_force::max_objective(a, b, c), ContractViolation);
}

TEST(BruteForceLp, SimplexAgreesOnRandomBoundedPrograms) {
  // Random programs with explicit box constraints x_j <= U so the feasible
  // region is bounded; the simplex and vertex enumeration must agree on
  // optimal value and feasibility across the sweep.
  util::Rng rng(7777);
  std::size_t optimal_cases = 0, infeasible_cases = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.below(2);       // 2..3 variables
    const std::size_t extra = 1 + rng.below(4);   // 1..4 general rows
    Matrix a(extra + n, n);
    std::vector<double> b(extra + n);
    for (std::size_t i = 0; i < extra; ++i) {
      for (std::size_t j = 0; j < n; ++j)
        a.at(i, j) = rng.uniform(-2.0, 2.0);
      b[i] = rng.uniform(-1.0, 3.0);
    }
    for (std::size_t j = 0; j < n; ++j) {  // box rows x_j <= U
      a.at(extra + j, j) = 1.0;
      b[extra + j] = rng.uniform(0.5, 4.0);
    }
    std::vector<double> c(n);
    for (double& v : c) v = rng.uniform(-3.0, 3.0);

    const LpSolution s = solve_max(a, b, c);
    const auto truth = brute_force::max_objective(a, b, c);
    if (truth.has_value()) {
      ASSERT_EQ(s.status, LpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(s.objective, *truth, 1e-6) << "trial " << trial;
      ++optimal_cases;
    } else {
      EXPECT_EQ(s.status, LpStatus::kInfeasible) << "trial " << trial;
      ++infeasible_cases;
    }
  }
  EXPECT_GT(optimal_cases, 100u);
  EXPECT_GT(infeasible_cases, 5u);
}

TEST(BruteForceLp, DegenerateVertexHandled) {
  // Three constraints meeting at one point in 2D (degenerate vertex).
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<double> b{1, 1, 2};
  const std::vector<double> c{1, 1};
  const auto best = brute_force::max_objective(a, b, c);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(*best, 2.0, 1e-9);
  EXPECT_NEAR(solve_max(a, b, c).objective, 2.0, 1e-9);
}

}  // namespace
}  // namespace defender::lp
