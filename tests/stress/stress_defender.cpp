// Differential stress harness (standalone binary; `stress_smoke` in ctest).
//
// Two independent defenses against wrong answers and crashes:
//
//  1. Differential solver cross-check: randomized instances across the
//     generator zoo, solved four ways — exact LP (solve_zero_sum), the
//     double oracle, fictitious play, and Hedge — plus the Lemma 4.1
//     combinatorial value k/|E(D(tp))| whenever A_tuple finds a k-matching
//     NE. All routes must agree on the game value within 1e-6 (the
//     learning dynamics via their certified brackets), and budget-starved
//     solves must still return sound bounds without throwing.
//
//  2. Mutational fuzzing of the hardened parsers: valid edge lists and
//     configuration documents mutated by byte flips, truncations, token
//     swaps, and hostile-count injection, fed to try_parse_edge_list /
//     try_from_text. Any outcome is acceptable except a crash, an
//     uncaught non-ContractViolation exception, or an outsized
//     allocation.
//
// With --trace FILE.jsonl every differential solve runs with a global
// ObsContext (JSONL tracing + metrics); CI uploads the resulting trace as
// an artifact so failures come with a full solver narrative attached.
//
// Chaos mode (--fault-rate R, 0 < R <= 1): every instance additionally
// runs the budgeted solvers under a deterministic fault schedule
// (fault::FaultPlan seeded per instance from --fault-seed) arming every
// injection site at rate R. The acceptance bar: no solver crashes, every
// returned bracket still contains the fault-free LP value (certified by
// independent re-evaluation), and every Status stays truthful (kOk implies
// a closed bracket). A failing instance prints its replayable fault-plan
// text; --fault-plans DIR additionally writes it to
// DIR/fault-plan-<instance>.txt so CI can upload the plans as artifacts.
//
// Engine chaos mode (--engine-jobs N, N >= 1): 200 random boards run
// through the SolveEngine pool with N workers, every third job under an
// armed fault schedule. The acceptance bar is batch ISOLATION: every
// non-faulted job's JobResult must be bit-for-bit identical to a serial
// solve of the same job, every bracket sound, every status truthful. On
// failure --engine-report FILE dumps the whole BatchReport as JobReport
// JSONL so CI can upload it as an artifact.
//
// --engine-cache additionally arms a canonical-form SolveCache
// (docs/CACHE.md) on the chaos batch and raises the bar twice over: every
// JobResult must stay bit-identical to a cache-less canonicalized run of
// the same batch, and no ARMED-fault job may ever populate the cache (a
// key present in the cache must be owned by a clean unfaulted job).
//
// The parser fuzz stage also feeds mutated "defender-cache v1" documents
// to SolveCache::merge_text: any outcome but a crash/throw is fine, and
// whatever loads must re-serialize and re-parse losslessly.
//
// Serve fuzz mode (--serve-fuzz N): N mutated request lines and drain
// manifests through the hardened serve parsers (parse_json,
// try_parse_request + to_job, try_parse_drain_manifest). No crashes, no
// exceptions, and every ACCEPTED manifest is a to_text/parse fixed point.
//
// Io chaos mode (--io-chaos): crash-durability sweep over the three
// artifact save paths (checkpoint, cache store, drain manifest). A
// simulated SIGKILL at every byte offset of each wrapped image plus the
// rename-window stages, then armed io-* fault plans over dozens of
// alternating saves, reloading through the real consumer loaders after
// every attempt. Invariant: the reload is always the previous durable
// generation or the complete attempted one, bit for bit — never garbage
// — and for the record-framed cache store a torn sole generation always
// salvages a byte-exact record prefix. --io-artifacts DIR keeps the
// on-disk debris in DIR for CI upload (docs/DURABILITY.md).
//
// Serve soak mode (--serve-soak SECONDS): a live SolveService under
// sustained three-client overload — truthful kOverloaded rejections with
// retry hints, exactly-once delivery accounting against the final drain
// manifest, weighted-fair throughput, gauges zero after drain. On
// failure --serve-report FILE captures metrics + per-client tallies as a
// JSONL artifact for CI upload.
//
// Usage: stress_defender [--instances N] [--fuzz-iters N] [--seed S]
//                        [--trace FILE.jsonl] [--fault-rate R]
//                        [--fault-seed S] [--fault-plans DIR]
//                        [--engine-jobs N] [--engine-report FILE]
//                        [--engine-cache] [--serve-fuzz N]
//                        [--serve-soak SECONDS] [--serve-report FILE]
//                        [--supervise-chaos] [--supervise-report FILE]
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "common/board_corpus.hpp"
#include "core/atuple.hpp"
#include "core/checkpoint.hpp"
#include "core/double_oracle.hpp"
#include "fault/fault.hpp"
#include "core/k_matching.hpp"
#include "core/serialization.hpp"
#include "core/zero_sum.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "io/atomic_file.hpp"
#include "io/durable.hpp"
#include "io/envelope.hpp"
#include "lp/matrix_game.hpp"
#include "lp/simplex_reference.hpp"
#include "obs/context.hpp"
#include "serve/drain.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "sim/fictitious_play.hpp"
#include "sim/multiplicative_weights.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/worker.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace {

using namespace defender;

/// Installed by --trace; null keeps every solver on its zero-cost path.
obs::ObsContext* g_obs = nullptr;

constexpr double kValueTolerance = 1e-6;
/// Keep C(m, k) at most this, so the exact LP stays small and fast.
constexpr std::uint64_t kMaxLpTuples = test_corpus::kMaxLpTuples;
/// Fuzz inputs are length-limited to keep each iteration O(small).
constexpr std::size_t kMaxFuzzBytes = 2'048;

int failures = 0;

void fail(const std::string& what) {
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

// The board zoo lives in tests/common/board_corpus.hpp now, shared with the
// differential simplex suite so "the stress corpus" means one thing.
using test_corpus::pick_k;
using test_corpus::random_board;

/// Flat-vs-reference LP bit-equality on this instance's coverage matrix:
/// the stress-harness arm of the differential simplex suite (tests/lp),
/// re-checked here on every sweep so corpus drift cannot open a gap the
/// unit suite no longer covers.
void check_simplex_differential(const core::TupleGame& game,
                                const std::string& tag,
                                fault::FaultContext* flat_fault = nullptr,
                                fault::FaultContext* ref_fault = nullptr) {
  const lp::Matrix payoff = core::coverage_matrix(game);
  const auto flat = lp::solve_matrix_game_budgeted_with(
      &lp::solve_max, payoff, SolveBudget::unlimited_budget(), g_obs,
      flat_fault);
  const auto ref = lp::solve_matrix_game_budgeted_with(
      &lp::reference::solve_max, payoff, SolveBudget::unlimited_budget(),
      g_obs, ref_fault);
  check(flat.status.code == ref.status.code,
        tag + ": flat/reference simplex status diverged (" +
            flat.status.describe() + " vs " + ref.status.describe() + ")");
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  check(bits(flat.result.value) == bits(ref.result.value) &&
            bits(flat.result.lower_bound) == bits(ref.result.lower_bound) &&
            bits(flat.result.upper_bound) == bits(ref.result.upper_bound),
        tag + ": flat/reference simplex bracket diverged ([" +
            std::to_string(flat.result.lower_bound) + ", " +
            std::to_string(flat.result.upper_bound) + "] vs [" +
            std::to_string(ref.result.lower_bound) + ", " +
            std::to_string(ref.result.upper_bound) + "])");
}

void differential_instance(util::Rng& rng, std::size_t index) {
  const graph::Graph g = random_board(rng);
  const std::size_t nu = static_cast<std::size_t>(rng.range(1, 3));
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 4)),
                            g.num_edges());
  const core::TupleGame game(g, pick_k(g, want, nu), nu);
  const std::string tag = "instance " + std::to_string(index) + " (n=" +
                          std::to_string(g.num_vertices()) + ", m=" +
                          std::to_string(g.num_edges()) + ", k=" +
                          std::to_string(game.k()) + ")";

  // Route 0: flat-tableau simplex vs the preserved reference substrate,
  // bit for bit (docs/SIMPLEX.md).
  check_simplex_differential(game, tag);

  // Route 1: exact LP over the enumerated tuple space.
  const double lp_value = core::solve_zero_sum(game).value;

  // Route 2: double oracle (exact, without enumeration).
  const Solved<core::DoubleOracleResult> oracle =
      core::solve_double_oracle_budgeted(game, 1e-9,
                                         SolveBudget::iterations(400), g_obs);
  check(oracle.ok(), tag + ": double oracle did not converge: " +
                         oracle.status.describe());
  check(std::abs(oracle.result.value - lp_value) <= kValueTolerance,
        tag + ": LP value " + std::to_string(lp_value) +
            " vs double oracle " + std::to_string(oracle.result.value));

  // Route 3: fictitious play's certified bracket must contain the value.
  const Solved<sim::FictitiousPlayResult> fp = sim::fictitious_play_budgeted(
      game, SolveBudget::iterations(400), 1e-7, g_obs);
  check(fp.result.trace.back().lower <= lp_value + kValueTolerance &&
            fp.result.trace.back().upper >= lp_value - kValueTolerance,
        tag + ": FP bracket [" +
            std::to_string(fp.result.trace.back().lower) + ", " +
            std::to_string(fp.result.trace.back().upper) +
            "] misses LP value " + std::to_string(lp_value));

  // Route 4: Hedge's certified bracket must contain the value too.
  const Solved<sim::HedgeResult> hedge =
      sim::hedge_dynamics_budgeted(game, SolveBudget::iterations(400), 1e-7,
                                   g_obs);
  check(hedge.result.trace.back().lower <= lp_value + kValueTolerance &&
            hedge.result.trace.back().upper >= lp_value - kValueTolerance,
        tag + ": Hedge bracket misses LP value " + std::to_string(lp_value));

  // Route 5: the Lemma 4.1 combinatorial value, when a k-matching NE
  // exists: P(Hit) = k / |E(D(tp))|.
  if (const auto ne = core::find_k_matching_ne(game)) {
    const double analytic =
        core::analytic_hit_probability(game, ne->k_matching_ne);
    check(std::abs(analytic - lp_value) <= kValueTolerance,
          tag + ": Lemma 4.1 value " + std::to_string(analytic) +
              " vs LP " + std::to_string(lp_value));
  }

  // Graceful degradation: a starved solve must return sound bounds, not
  // throw.
  if (index % 10 == 0) {
    try {
      const Solved<core::DoubleOracleResult> starved =
          core::solve_double_oracle_budgeted(game, 1e-9,
                                             SolveBudget::iterations(1),
                                             g_obs);
      // kOk after one iteration is legitimate (the seed working set can
      // already be an equilibrium) but then the value must be exact.
      if (starved.ok())
        check(std::abs(starved.result.value - lp_value) <= kValueTolerance,
              tag + ": 1-iteration kOk value " +
                  std::to_string(starved.result.value) + " vs LP " +
                  std::to_string(lp_value));
      check(starved.result.lower_bound <= lp_value + kValueTolerance &&
                starved.result.upper_bound >= lp_value - kValueTolerance,
            tag + ": starved bracket [" +
                std::to_string(starved.result.lower_bound) + ", " +
                std::to_string(starved.result.upper_bound) +
                "] misses LP value " + std::to_string(lp_value));
    } catch (const std::exception& e) {
      fail(tag + ": starved solve threw: " + e.what());
    }
  }
}

/// One chaos instance: a random board solved under a deterministic fault
/// schedule. The soundness bar is checked against the fault-free exact LP
/// value (independent re-evaluation): no crash, every bracket contains the
/// true value, every status truthful. On failure the instance's fault plan
/// is printed (and optionally dumped) so the exact schedule can be
/// replayed from its text alone.
void chaos_instance(util::Rng& rng, std::size_t index, double fault_rate,
                    std::uint64_t fault_seed,
                    const std::string& plan_dir) {
  const graph::Graph g = random_board(rng);
  const std::size_t nu = static_cast<std::size_t>(rng.range(1, 3));
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 4)),
                            g.num_edges());
  const core::TupleGame game(g, pick_k(g, want, nu), nu);
  const std::string tag = "chaos instance " + std::to_string(index) +
                          " (n=" + std::to_string(g.num_vertices()) +
                          ", m=" + std::to_string(g.num_edges()) +
                          ", k=" + std::to_string(game.k()) + ")";

  // Ground truth, computed fault-free.
  const double lp_value = core::solve_zero_sum(game).value;

  fault::FaultPlan plan;
  plan.seed = fault_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  plan.set_all(fault_rate);

  // Armed differential: under the same plan (fresh contexts replay the
  // identical per-site schedule), the flat and reference simplex substrates
  // must produce bit-equal brackets even while the lp-* sites fire.
  {
    fault::FaultContext flat_ctx(plan);
    fault::FaultContext ref_ctx(plan);
    check_simplex_differential(game, tag + " [armed]", &flat_ctx, &ref_ctx);
  }

  const int failures_before = failures;
  fault::FaultContext do_ctx(plan);
  try {
    // Double oracle with a wall-clock deadline in the budget, so the
    // kDeadlineStarve site has something to starve.
    SolveBudget budget;
    budget.max_iterations = 400;
    budget.wall_clock_seconds = 60.0;
    core::SolverCheckpoint cp;
    core::ResumeHooks hooks;
    hooks.capture = &cp;
    const Solved<core::DoubleOracleResult> solved =
        core::solve_double_oracle_resumable(game, 1e-9, budget, hooks,
                                            g_obs, &do_ctx);
    check(std::isfinite(solved.result.lower_bound) &&
              std::isfinite(solved.result.upper_bound),
          tag + ": non-finite bracket under faults");
    check(solved.result.lower_bound <= lp_value + kValueTolerance &&
              solved.result.upper_bound >= lp_value - kValueTolerance,
          tag + ": faulted DO bracket [" +
              std::to_string(solved.result.lower_bound) + ", " +
              std::to_string(solved.result.upper_bound) +
              "] misses LP value " + std::to_string(lp_value));
    if (solved.ok())
      check(std::abs(solved.result.value - lp_value) <= 1e-4,
            tag + ": kOk under faults but value " +
                std::to_string(solved.result.value) + " vs LP " +
                std::to_string(lp_value));
    // The captured checkpoint must survive a text round trip and resume
    // cleanly — chaos must not corrupt the serialized state either.
    const auto reparsed = core::try_parse_checkpoint(core::to_text(cp));
    check(reparsed.ok(), tag + ": checkpoint captured under faults does "
                               "not reparse: " + reparsed.status.describe());
    if (reparsed.ok()) {
      core::ResumeHooks resume;
      resume.resume = &reparsed.result;
      const auto resumed = core::solve_double_oracle_resumable(
          game, 1e-9, SolveBudget::iterations(50), resume);
      check(resumed.status.code != StatusCode::kInvalidInput,
            tag + ": chaos checkpoint rejected on resume: " +
                resumed.status.describe());
      check(resumed.result.lower_bound <= lp_value + kValueTolerance &&
                resumed.result.upper_bound >= lp_value - kValueTolerance,
            tag + ": resumed-after-chaos bracket misses LP value");
    }
  } catch (const std::exception& e) {
    fail(tag + ": double oracle crashed under faults: " + e.what());
  }

  try {
    fault::FaultContext fp_ctx(plan);
    const Solved<sim::FictitiousPlayResult> fp =
        sim::fictitious_play_budgeted(game, SolveBudget::iterations(200),
                                      1e-7, g_obs, &fp_ctx);
    check(fp.result.trace.back().lower <= lp_value + kValueTolerance &&
              fp.result.trace.back().upper >= lp_value - kValueTolerance,
          tag + ": faulted FP bracket misses LP value " +
              std::to_string(lp_value));
  } catch (const std::exception& e) {
    fail(tag + ": fictitious play crashed under faults: " + e.what());
  }

  try {
    fault::FaultContext hg_ctx(plan);
    const Solved<sim::HedgeResult> hedge = sim::hedge_dynamics_budgeted(
        game, SolveBudget::iterations(200), 1e-7, g_obs, &hg_ctx);
    check(hedge.result.trace.back().lower <= lp_value + kValueTolerance &&
              hedge.result.trace.back().upper >= lp_value - kValueTolerance,
          tag + ": faulted Hedge bracket misses LP value " +
              std::to_string(lp_value));
  } catch (const std::exception& e) {
    fail(tag + ": Hedge crashed under faults: " + e.what());
  }

  if (failures > failures_before) {
    std::fprintf(stderr, "replayable fault plan for %s:\n%s(%s)\n",
                 tag.c_str(), plan.to_text().c_str(),
                 do_ctx.summary().c_str());
    if (!plan_dir.empty()) {
      const std::string path =
          plan_dir + "/fault-plan-" + std::to_string(index) + ".txt";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        const std::string text = plan.to_text();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
      }
    }
  }
}

/// Applies one random mutation to `text` in place.
void mutate(std::string& text, util::Rng& rng) {
  static const char* kHostile[] = {"-1",  "4294967295", "999999999999999",
                                   "1e9", "NaN",        "--",
                                   "\x00", "2147483648"};
  if (text.empty()) {
    text = kHostile[rng.range(0, 7)];
    return;
  }
  switch (rng.range(0, 4)) {
    case 0:  // byte flip
      text[static_cast<std::size_t>(rng.range(0, static_cast<std::int64_t>(text.size()) - 1))] =
          static_cast<char>(rng.range(32, 126));
      break;
    case 1:  // truncate
      text.resize(static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(text.size()) - 1)));
      break;
    case 2: {  // inject a hostile token at a random position
      const std::size_t pos = static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(text.size())));
      text.insert(pos, kHostile[rng.range(0, 7)]);
      break;
    }
    case 3:  // duplicate a slice
      text += text.substr(text.size() / 2);
      break;
    default:  // whitespace churn
      text.insert(static_cast<std::size_t>(
                      rng.range(0, static_cast<std::int64_t>(text.size()))),
                  " \t\n");
      break;
  }
  if (text.size() > kMaxFuzzBytes) text.resize(kMaxFuzzBytes);
}

/// A small but block-complete "defender-cache v1" document (weights,
/// profiles, checkpoint) as the fuzz seed for SolveCache::merge_text.
std::string cache_seed_document() {
  cache::SolveCache seed;
  cache::CachedSolve e;
  e.n = 4;
  e.k = 2;
  e.num_attackers = 1;
  e.solver = "weighted-double-oracle";
  e.tolerance = 1e-9;
  e.max_iterations = 60;
  e.edges = {{0, 1}, {1, 2}, {2, 3}};
  e.weights = {2.0, 1.0, 1.0, 1.5};
  e.message = "converged";
  e.iterations = 6;
  e.value = e.lower = e.upper = 0.5;
  e.attempt_value = e.attempt_lower = e.attempt_upper = 0.5;
  e.has_profiles = true;
  e.defender_support = {{0, 2}, {1, 2}};
  e.defender_probs = {0.5, 0.5};
  e.attacker_support = {0, 3};
  e.attacker_probs = {0.5, 0.5};
  e.checkpoint_text = "defender-checkpoint v1\nkind weighted-double-oracle\n";
  seed.store(cache::key_from_entry(e), e);
  return seed.to_text();
}

void fuzz_parsers(util::Rng& rng, std::size_t iterations) {
  // Seed corpus: valid documents of every hardened format.
  const graph::Graph seed_graph = graph::petersen_graph();
  const core::TupleGame config_game(graph::cycle_graph(6), 2, 3);
  const auto atuple = core::a_tuple_bipartite(config_game);
  std::vector<std::string> corpus = {
      graph::to_edge_list(seed_graph),
      graph::to_edge_list(graph::grid_graph(2, 3)),
      "3 2\n0 1\n1 2\n",
      cache_seed_document(),
  };
  std::string config_text;
  if (atuple) {
    config_text = core::to_text(config_game, atuple->configuration);
    corpus.push_back(config_text);
  }

  for (std::size_t i = 0; i < iterations; ++i) {
    std::string input = corpus[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(corpus.size()) - 1))];
    const int mutations = static_cast<int>(rng.range(1, 4));
    for (int j = 0; j < mutations; ++j) mutate(input, rng);

    try {
      const Solved<graph::Graph> parsed = graph::try_parse_edge_list(input);
      (void)parsed;
    } catch (const std::exception& e) {
      fail("fuzz iter " + std::to_string(i) +
           ": try_parse_edge_list threw: " + e.what());
    }
    try {
      const Solved<core::MixedConfiguration> parsed =
          core::try_from_text(config_game, input);
      (void)parsed;
    } catch (const std::exception& e) {
      fail("fuzz iter " + std::to_string(i) +
           ": try_from_text threw: " + e.what());
    }
    // The legacy throwing parsers may throw ContractViolation, nothing else.
    try {
      (void)graph::parse_edge_list(input);
    } catch (const ContractViolation&) {
    } catch (const std::exception& e) {
      fail("fuzz iter " + std::to_string(i) +
           ": parse_edge_list threw non-contract exception: " + e.what());
    }
    // The persistent cache store: never throws, and anything it accepts
    // must round-trip through to_text losslessly.
    try {
      cache::SolveCache fuzzed;
      const Status merged = fuzzed.merge_text(input);
      if (merged.ok() && fuzzed.size() > 0) {
        const std::string text = fuzzed.to_text();
        cache::SolveCache round;
        const Status again = round.merge_text(text);
        if (!again.ok() || round.size() != fuzzed.size() ||
            round.to_text() != text)
          fail("fuzz iter " + std::to_string(i) +
               ": accepted cache input failed to round-trip: " +
               again.describe());
      }
    } catch (const std::exception& e) {
      fail("fuzz iter " + std::to_string(i) +
           ": SolveCache::merge_text threw: " + e.what());
    }
  }
}

// ---------------------------------------------------------------------------
// Serve fuzz: hostile request lines and drain manifests through the
// hardened serve parsers (docs/SERVE.md). Any outcome but a crash or an
// exception is acceptable; whatever the manifest parser ACCEPTS must be a
// to_text/parse fixed point, and any accepted solve request must build
// (or cleanly reject) through to_job.

/// A valid drain manifest (one plain job, one double-drained job) as a
/// mutation seed, so the fuzzer spends its budget inside the grammar
/// instead of bouncing off the version header.
std::string serve_manifest_seed() {
  serve::DrainManifest manifest;
  serve::DrainedJob job;
  job.client = "fuzz";
  job.request_id = "seed-0";
  job.job_index = 0;
  job.spec.type = serve::RequestType::kSolve;
  job.spec.client = "fuzz";
  job.spec.id = "seed-0";
  job.spec.solver = engine::JobSolver::kDoubleOracle;
  job.spec.n = 4;
  job.spec.k = 2;
  job.spec.attackers = 1;
  job.spec.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  job.spec.max_iterations = 60;
  manifest.jobs.push_back(job);
  job.request_id = "seed-1";
  job.job_index = 1;
  job.spec.id = "seed-1";
  job.spec.solver = engine::JobSolver::kWeightedFictitiousPlay;
  job.spec.weights = {1.0, 2.0, 1.0, 1.5};
  manifest.jobs.push_back(job);
  return serve::to_text(manifest);
}

void serve_fuzz(util::Rng& rng, std::size_t iterations) {
  const std::vector<std::string> corpus = {
      "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\",\"solver\":"
      "\"double-oracle\",\"n\":6,\"k\":2,\"attackers\":1,\"edges\":"
      "[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]],\"iters\":200}",
      "{\"type\":\"solve\",\"id\":\"w\",\"client\":\"c\",\"solver\":"
      "\"weighted-fictitious-play\",\"n\":3,\"k\":1,\"attackers\":1,"
      "\"edges\":[[0,1],[1,2],[2,0]],\"weights\":[1.0,2.5,0.5],"
      "\"tolerance\":1e-6,\"iters\":1000,\"wall_seconds\":0.5}",
      "{\"type\":\"cancel\",\"id\":\"x\",\"client\":\"c\",\"cancel\":\"a\"}",
      "{\"type\":\"ping\",\"id\":\"p\",\"client\":\"c\"}",
      "{\"type\":\"metrics\",\"id\":\"m\",\"client\":\"c\"}",
      "{\"type\":\"shutdown\",\"id\":\"s\",\"client\":\"c\"}",
      serve_manifest_seed(),
  };
  // Serve-grammar tokens worth splicing into random positions: header
  // words the manifest parser keys on, JSON structure, and boundary
  // numerals for the count fields.
  static const char* kServeHostile[] = {
      "job 0 c id",     "spec double-oracle 4 2 1 1e-9 60 0 0",
      "edges 4 0 1",    "weights 2 1.0 2.0",
      "checkpoint 1",   "defender-drain v1",
      "end",            "\"type\":\"solve\"",
      "[[0,1]",         "1e309",
      "-1",             "18446744073709551616",
  };

  for (std::size_t i = 0; i < iterations; ++i) {
    std::string input = corpus[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(corpus.size()) - 1))];
    const int mutations = static_cast<int>(rng.range(1, 4));
    for (int j = 0; j < mutations; ++j) {
      if (rng.range(0, 3) == 0 && !input.empty()) {
        const std::size_t pos = static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(input.size())));
        input.insert(pos, kServeHostile[rng.range(0, 11)]);
        if (input.size() > kMaxFuzzBytes) input.resize(kMaxFuzzBytes);
      } else {
        mutate(input, rng);
      }
    }

    try {
      (void)serve::parse_json(input);
    } catch (const std::exception& e) {
      fail("serve fuzz iter " + std::to_string(i) +
           ": parse_json threw: " + e.what());
    }
    try {
      const Solved<serve::Request> parsed = serve::try_parse_request(input);
      if (parsed.ok() && parsed.result.type == serve::RequestType::kSolve) {
        std::optional<engine::SolveJob> built;
        (void)serve::to_job(parsed.result, &built);
      }
    } catch (const std::exception& e) {
      fail("serve fuzz iter " + std::to_string(i) +
           ": try_parse_request threw: " + e.what());
    }
    try {
      const Solved<serve::DrainManifest> parsed =
          serve::try_parse_drain_manifest(input);
      if (parsed.ok()) {
        const std::string text = serve::to_text(parsed.result);
        const Solved<serve::DrainManifest> again =
            serve::try_parse_drain_manifest(text);
        if (!again.ok() || serve::to_text(again.result) != text)
          fail("serve fuzz iter " + std::to_string(i) +
               ": accepted manifest is not a to_text/parse fixed point");
      }
    } catch (const std::exception& e) {
      fail("serve fuzz iter " + std::to_string(i) +
           ": try_parse_drain_manifest threw: " + e.what());
    }
  }
}

// ---------------------------------------------------------------------------
// Serve soak: a SolveService under sustained multi-client overload.
//
// Three clients (one carrying fair-queue weight 3) hammer submits against
// a deliberately small queue for the soak duration. The acceptance bar:
// every rejection is a truthful kOverloaded with a positive retry hint,
// every admitted job is delivered exactly once (or swept into the final
// drain manifest), the weighted client's delivered share reflects its
// weight, and every serve gauge reads zero after the drain. On failure
// the metrics registry and per-client tallies are dumped to
// --serve-report as a JSONL artifact.

struct SoakClientTally {
  std::atomic<std::size_t> admitted{0};
  std::atomic<std::size_t> rejected_overload{0};
  std::atomic<std::size_t> delivered{0};
};

void serve_soak(double seconds, const std::string& report_path) {
  obs::MetricsRegistry metrics;
  serve::ServiceConfig config;
  config.workers = 4;
  config.queue_high_watermark = 16;
  config.queue_low_watermark = 8;
  config.max_inflight_per_client = 8;
  config.client_weights["heavy"] = 3.0;
  config.engine.retry = engine::RetryPolicy::none();
  config.engine.metrics = &metrics;
  serve::SolveService service(config);

  const char* kClients[] = {"heavy", "light", "burst"};
  std::map<std::string, SoakClientTally> tallies;
  for (const char* c : kClients) tallies[c];
  std::mutex delivered_mu;
  std::set<std::string> delivered_keys;
  std::atomic<std::size_t> double_deliveries{0};

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::vector<std::thread> submitters;
  for (const char* name : kClients) {
    submitters.emplace_back([&, name] {
      SoakClientTally& tally = tallies[name];
      util::Rng thread_rng(std::hash<std::string>{}(name));
      std::size_t next_id = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        serve::Request req;
        req.type = serve::RequestType::kSolve;
        req.client = name;
        req.id = "soak-" + std::to_string(next_id++);
        // Fictitious play chasing an unreachable tolerance: ~a
        // millisecond per job, so the workers (not the submitters) are
        // the bottleneck and the weighted-fair dequeue governs
        // throughput.
        req.solver = engine::JobSolver::kFictitiousPlay;
        req.n = 6;
        req.k = 2;
        req.attackers = 1;
        for (std::size_t v = 0; v < req.n; ++v)
          req.edges.emplace_back(v, (v + 1) % req.n);
        req.tolerance = 1e-15;
        req.max_iterations =
            static_cast<std::size_t>(5000 + thread_rng.range(0, 5000));
        const std::string key = std::string(name) + "/" + req.id;
        const serve::Admission admission = service.submit(
            req, [&tally, &delivered_mu, &delivered_keys,
                  &double_deliveries, key](const engine::JobResult&) {
              tally.delivered.fetch_add(1);
              std::lock_guard<std::mutex> lock(delivered_mu);
              if (!delivered_keys.insert(key).second)
                double_deliveries.fetch_add(1);
            });
        if (admission.admitted()) {
          tally.admitted.fetch_add(1);
        } else if (admission.code == StatusCode::kOverloaded) {
          tally.rejected_overload.fetch_add(1);
          if (admission.retry_after_ms <= 0)
            fail("serve soak: overload rejection without a retry hint");
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        } else {
          fail("serve soak: unexpected rejection (" +
               std::string(to_string(admission.code)) +
               "): " + admission.message);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const serve::DrainManifest manifest = service.drain(-1);

  std::size_t total_admitted = 0;
  std::size_t total_delivered = 0;
  for (const char* c : kClients) {
    total_admitted += tallies[c].admitted.load();
    total_delivered += tallies[c].delivered.load();
  }
  if (double_deliveries.load() > 0)
    fail("serve soak: " + std::to_string(double_deliveries.load()) +
         " double deliveries");
  if (total_delivered + manifest.jobs.size() != total_admitted)
    fail("serve soak: delivered " + std::to_string(total_delivered) +
         " + manifested " + std::to_string(manifest.jobs.size()) +
         " != admitted " + std::to_string(total_admitted));
  // Weighted fairness, asserted loosely enough to be timing-robust: the
  // weight-3 client must out-deliver each weight-1 client under
  // saturation (exact WFQ ratios are pinned by serve_service_test).
  const std::size_t heavy = tallies["heavy"].delivered.load();
  const std::size_t light = tallies["light"].delivered.load();
  const std::size_t burst = tallies["burst"].delivered.load();
  if (total_admitted > 100 && (heavy <= light || heavy <= burst))
    fail("serve soak: weight-3 client delivered " + std::to_string(heavy) +
         " vs " + std::to_string(light) + "/" + std::to_string(burst));
  for (const char* gauge :
       {"serve.queue_depth", "serve.inflight", "serve.draining",
        "serve.admitting"}) {
    for (const obs::MetricSnapshot& snap : metrics.snapshot())
      if (snap.name == gauge && snap.value != 0)
        fail(std::string("serve soak: gauge ") + gauge +
             " nonzero after drain");
  }

  const bool failed = failures > 0;
  if (!report_path.empty() && failed) {
    if (std::FILE* f = std::fopen(report_path.c_str(), "w")) {
      const std::string metrics_json = metrics.to_json();
      std::fprintf(f, "{\"metrics\":%s}\n", metrics_json.c_str());
      for (const char* c : kClients)
        std::fprintf(f,
                     "{\"client\":\"%s\",\"admitted\":%zu,"
                     "\"rejected_overload\":%zu,\"delivered\":%zu}\n",
                     c, tallies[c].admitted.load(),
                     tallies[c].rejected_overload.load(),
                     tallies[c].delivered.load());
      std::fclose(f);
      std::fprintf(stderr, "serve soak artifact -> %s\n",
                   report_path.c_str());
    }
  }
  std::printf(
      "serve soak: %zus, admitted %zu (heavy %zu / light %zu / burst %zu "
      "delivered), %zu manifested\n",
      static_cast<std::size_t>(seconds), total_admitted, heavy, light,
      burst, manifest.jobs.size());
}

// ---------------------------------------------------------------------------
// Engine chaos: batch isolation under concurrency + deterministic faults.

/// Builds the fixed 200-job engine batch: random boards, all six solver
/// kinds, every third job running under an armed per-job fault plan.
/// Budgets are iteration-only — a faulted job can skew the shared
/// obs::Clock, which must never leak into a neighbour's result.
std::vector<engine::SolveJob> build_engine_batch(std::uint64_t seed,
                                                 std::uint64_t fault_seed) {
  util::Rng rng(seed ^ 0xE21u);
  std::vector<engine::SolveJob> jobs;
  constexpr std::size_t kJobs = 200;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    const graph::Graph g = random_board(rng);
    const std::size_t nu = static_cast<std::size_t>(rng.range(1, 3));
    const std::size_t want =
        std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 4)),
                              g.num_edges());
    engine::SolveJob job(core::TupleGame(g, pick_k(g, want, nu), nu));
    job.solver = engine::kAllJobSolvers[i % engine::kJobSolverCount];
    job.budget = SolveBudget::iterations(60);
    job.tolerance = (job.solver == engine::JobSolver::kFictitiousPlay ||
                     job.solver == engine::JobSolver::kWeightedFictitiousPlay ||
                     job.solver == engine::JobSolver::kHedge)
                        ? 1e-2
                        : 1e-9;
    if (engine::is_weighted(job.solver)) {
      const std::size_t n = job.game.graph().num_vertices();
      for (std::size_t v = 0; v < n; ++v)
        job.weights.push_back(1.0 + 0.125 * static_cast<double>(v % 8));
    }
    if (i % 3 == 0) {
      job.fault_plan.seed = engine::derive_job_seed(fault_seed, i);
      job.fault_plan.set_all(0.2);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void engine_chaos(std::size_t workers, std::uint64_t seed,
                  std::uint64_t fault_seed, const std::string& report_path,
                  bool with_cache) {
  const std::vector<engine::SolveJob> jobs =
      build_engine_batch(seed, fault_seed);
  engine::EngineConfig config;
  config.workers = workers;

  // --engine-cache: a cache-less canonicalized pass is the bit-for-bit
  // reference the cached pass must reproduce exactly.
  cache::SolveCache cache;
  std::optional<engine::BatchReport> reference;
  if (with_cache) {
    engine::EngineConfig ref_config;
    ref_config.workers = workers;
    ref_config.canonicalize = true;
    reference.emplace(engine::SolveEngine(ref_config).run(jobs));
    config.cache = &cache;
  }

  engine::SolveEngine eng(config);
  const engine::BatchReport report = eng.run(jobs);
  check(report.results.size() == jobs.size(), "engine: result count");

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const engine::JobResult& r = report.results[i];
    const std::string tag = "engine job " + std::to_string(i);
    check(r.job_index == i, tag + ": index");
    check(r.lower_bound <= r.upper_bound + 1e-12, tag + ": bracket sane");
    check(r.value >= r.lower_bound - 1e-12 &&
              r.value <= r.upper_bound + 1e-12,
          tag + ": value inside bracket");
    if (r.status.code == StatusCode::kOk)
      check(r.upper_bound - r.lower_bound <= 1e-6 + jobs[i].tolerance,
            tag + ": kOk must mean a closed bracket");

    // Isolation: every job WITHOUT an armed plan must come out bit-equal
    // to a serial solve of the same job, no matter what its pool
    // neighbours injected.
    if (jobs[i].fault_plan.armed()) continue;
    const engine::JobResult serial = eng.run_serial(jobs[i], i);
    check(r.status.code == serial.status.code, tag + ": status drifted");
    check(r.status.message == serial.status.message, tag + ": message drifted");
    check(r.status.iterations == serial.status.iterations,
          tag + ": iteration count drifted");
    check(r.value == serial.value, tag + ": value drifted");
    check(r.lower_bound == serial.lower_bound, tag + ": lower drifted");
    check(r.upper_bound == serial.upper_bound, tag + ": upper drifted");
    check(r.attempts.size() == serial.attempts.size(),
          tag + ": attempt history drifted");
    check(r.faults_injected == 0, tag + ": faults on an unarmed job");
  }

  if (with_cache) {
    // 1. The cache must be invisible in results: every job bit-identical
    //    to the cache-less canonicalized reference pass.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const engine::JobResult& r = report.results[i];
      const engine::JobResult& ref = reference->results[i];
      const std::string tag = "engine-cache job " + std::to_string(i);
      check(r.status.code == ref.status.code, tag + ": status drifted");
      check(r.status.message == ref.status.message, tag + ": message drifted");
      check(r.status.iterations == ref.status.iterations,
            tag + ": iterations drifted");
      check(r.value == ref.value, tag + ": value drifted");
      check(r.lower_bound == ref.lower_bound, tag + ": lower drifted");
      check(r.upper_bound == ref.upper_bound, tag + ": upper drifted");
      check(r.faults_injected == ref.faults_injected,
            tag + ": fault count drifted");
    }

    // 2. Faulted jobs must never populate the cache: any key present in
    //    the cache must be owned by a clean unfaulted job.
    std::unordered_set<std::string> clean_keys;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const engine::JobResult& r = report.results[i];
      if (!jobs[i].fault_plan.armed() && r.ok() && r.attempts.size() == 1 &&
          !r.fallback_used)
        clean_keys.insert(engine::canonical_key_for_job(jobs[i]).key.text());
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!jobs[i].fault_plan.armed()) continue;
      const engine::CanonicalJobKey key =
          engine::canonical_key_for_job(jobs[i]);
      if (cache.lookup(key.key).has_value())
        check(clean_keys.count(key.key.text()) > 0,
              "engine-cache job " + std::to_string(i) +
                  ": armed-fault job's key in cache with no clean owner");
    }
    const cache::CacheStats stats = cache.stats();
    std::printf(
        "engine-cache: %zu entries (%llu hits, %llu misses, %llu stores)\n",
        cache.size(), static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.stores));
  }

  if (failures > 0 && !report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    out << report.to_jsonl();
    std::fprintf(stderr, "engine: wrote JobReport JSONL to %s\n",
                 report_path.c_str());
  }
  std::printf(
      "engine: %zu jobs through %zu workers (%zu ok, %zu degraded, %zu "
      "faulted)\n",
      report.results.size(), workers, report.completed, report.degraded,
      report.faulted_jobs);
}

// --------------------------------------------------------------------------
// io chaos (--io-chaos): crash-durability sweep over the three artifact
// save paths (docs/DURABILITY.md).
//
// Two campaigns per artifact (checkpoint, cache store, drain manifest):
//
//  1. Kill sweep: publish gen1 cleanly, then attempt gen2 with a
//     simulated SIGKILL at EVERY byte offset of the wrapped image, plus
//     the three rename-window stages. After every kill the consumer-level
//     reload must yield gen1 or gen2 bit-for-bit (canonical to_text
//     compare), reload again identically (recovery converges), and accept
//     a fresh clean save afterwards (debris never bricks the store).
//
//  2. Armed io-* plans: a deterministic FaultPlan arming io-short-write /
//     io-enospc / io-rename-fail / io-bit-flip over dozens of alternating
//     saves through ONE fault context, reloading after every attempt.
//     Invariant: the reload is either the attempted generation or the
//     last durably-loaded one — never a third artifact, never garbage.
//
// The cache store additionally gets a torn-tail salvage sweep: a torn
// record image planted as the only generation must reload as a byte-exact
// record PREFIX of the attempted store (or fail truthfully) at every cut.

/// One artifact family under io chaos, reduced to what the sweep needs:
/// save/load through the REAL consumer entry points, canonical texts for
/// the bit-for-bit compare, and the wrapped on-disk image (for offsets).
struct IoChaosArtifact {
  std::string name;
  std::string gen1;  ///< canonical to_text of generation 1
  std::string gen2;  ///< canonical to_text of generation 2
  std::string wrapped_gen2;  ///< full on-disk image of gen2
  /// Serializes the generation with canonical text `text` to `path`.
  std::function<Status(const std::string& path, const std::string& text,
                       const io::AtomicWriteOptions&)>
      save;
  /// Loads `path` through the consumer loader, returns canonical text.
  std::function<Solved<std::string>(const std::string& path)> load;
};

core::SolverCheckpoint io_chaos_checkpoint(std::size_t iteration) {
  const std::string text =
      "defender-checkpoint v1\n"
      "solver hedge\n"
      "game 5 6 2\n"
      "progress " +
      std::to_string(iteration) +
      " 100 16 1\n"
      "bracket 0.25 0.5\n"
      "tuples 2\n"
      "tuple 2 0 1\n"
      "tuple 2 2 3\n"
      "vertices 2 0 4\n"
      "attacker 3 0.125 -1.5 2\n"
      "defender 2 0.5 0.75\n"
      "average 2 1 0\n"
      "end\n";
  const Solved<core::SolverCheckpoint> parsed =
      core::try_parse_checkpoint(text);
  if (!parsed.ok()) fail("io chaos: checkpoint seed rejected");
  return parsed.result;
}

/// Fills `store` with `entries` deterministic cache entries.
void io_chaos_fill_cache(cache::SolveCache& store, std::size_t entries) {
  for (std::size_t i = 0; i < entries; ++i) {
    cache::CachedSolve e;
    e.n = 4 + i;
    e.k = 2;
    e.num_attackers = 1;
    e.solver = "double-oracle";
    e.tolerance = 1e-9;
    e.max_iterations = 60 + i;
    e.edges = {{0, 1}, {1, 2}, {2, 3}};
    e.message = "converged";
    e.iterations = 5 + i;
    e.value = e.lower = e.upper = 0.25 + 0.0625 * static_cast<double>(i);
    e.attempt_value = e.attempt_lower = e.attempt_upper = e.value;
    store.store(cache::key_from_entry(e), e);
  }
}

serve::DrainManifest io_chaos_manifest(std::size_t jobs) {
  serve::DrainManifest manifest;
  for (std::size_t i = 0; i < jobs; ++i) {
    serve::DrainedJob job;
    job.client = "iochaos";
    job.request_id = "job-" + std::to_string(i);
    job.job_index = i;
    job.spec.type = serve::RequestType::kSolve;
    job.spec.client = job.client;
    job.spec.id = job.request_id;
    job.spec.solver = engine::JobSolver::kDoubleOracle;
    job.spec.n = 4 + i;
    job.spec.k = 2;
    job.spec.attackers = 1;
    job.spec.edges = {{0, 1}, {1, 2}, {2, 3}};
    job.spec.max_iterations = 60;
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

/// The three artifact families, each bound to its real save/load pair.
std::vector<IoChaosArtifact> io_chaos_artifacts() {
  std::vector<IoChaosArtifact> out;

  {
    IoChaosArtifact a;
    a.name = "checkpoint";
    a.gen1 = core::to_text(io_chaos_checkpoint(7));
    a.gen2 = core::to_text(io_chaos_checkpoint(8));
    a.wrapped_gen2 =
        io::wrap_artifact(core::kCheckpointArtifactFormat, a.gen2);
    a.save = [](const std::string& path, const std::string& text,
                const io::AtomicWriteOptions& opts) {
      const Solved<core::SolverCheckpoint> parsed =
          core::try_parse_checkpoint(text);
      if (!parsed.ok()) return parsed.status;
      return core::save_checkpoint_file(path, parsed.result, opts);
    };
    a.load = [](const std::string& path) {
      Solved<std::string> out_text;
      const Solved<core::SolverCheckpoint> got =
          core::load_checkpoint_file(path);
      if (!got.ok()) {
        out_text.status = got.status;
        return out_text;
      }
      out_text.result = core::to_text(got.result);
      return out_text;
    };
    out.push_back(std::move(a));
  }

  {
    IoChaosArtifact a;
    a.name = "cache";
    cache::SolveCache gen1, gen2;
    io_chaos_fill_cache(gen1, 1);
    io_chaos_fill_cache(gen2, 3);
    a.gen1 = gen1.to_text();
    a.gen2 = gen2.to_text();
    a.wrapped_gen2 = io::wrap_record_artifact(cache::kCacheArtifactFormat,
                                              gen2.to_record_texts());
    a.save = [](const std::string& path, const std::string& text,
                const io::AtomicWriteOptions& opts) {
      cache::SolveCache store;
      const Status merged = store.merge_text(text);
      if (!merged.ok()) return merged;
      return cache::save_cache_file(path, store, opts);
    };
    a.load = [](const std::string& path) {
      Solved<std::string> out_text;
      cache::SolveCache store;
      const Status s = cache::load_cache_file(path, &store);
      if (!s.ok()) {
        out_text.status = s;
        return out_text;
      }
      out_text.result = store.to_text();
      return out_text;
    };
    out.push_back(std::move(a));
  }

  {
    IoChaosArtifact a;
    a.name = "drain";
    a.gen1 = serve::to_text(io_chaos_manifest(1));
    a.gen2 = serve::to_text(io_chaos_manifest(2));
    a.wrapped_gen2 = io::wrap_artifact(serve::kDrainArtifactFormat, a.gen2);
    a.save = [](const std::string& path, const std::string& text,
                const io::AtomicWriteOptions& opts) {
      const Solved<serve::DrainManifest> parsed =
          serve::try_parse_drain_manifest(text);
      if (!parsed.ok()) return parsed.status;
      return serve::save_drain_manifest_file(path, parsed.result, opts);
    };
    a.load = [](const std::string& path) {
      Solved<std::string> out_text;
      const Solved<serve::DrainManifest> got =
          serve::load_drain_manifest_file(path);
      if (!got.ok()) {
        out_text.status = got.status;
        return out_text;
      }
      out_text.result = serve::to_text(got.result);
      return out_text;
    };
    out.push_back(std::move(a));
  }

  return out;
}

/// Clears every generation/debris name of `path`.
void io_chaos_reset(const std::string& path) {
  io::remove_file(path);
  io::remove_file(io::temp_path(path));
  io::remove_file(io::backup_path(path));
  io::remove_file(io::quarantine_path(path));
}

/// Reload after a kill/fault. The result must be EXACTLY one of the two
/// generations; a second reload must agree (recovery converges); and a
/// clean save must still work afterwards (debris never bricks the path).
void io_chaos_check_reload(const IoChaosArtifact& a, const std::string& path,
                           const std::string& what) {
  const Solved<std::string> first = a.load(path);
  if (!first.ok()) {
    fail("io chaos [" + a.name + "] " + what +
         ": reload failed: " + first.status.message);
    return;
  }
  if (first.result != a.gen1 && first.result != a.gen2) {
    fail("io chaos [" + a.name + "] " + what +
         ": reload is neither generation (" +
         std::to_string(first.result.size()) + " bytes)");
    return;
  }
  const Solved<std::string> second = a.load(path);
  if (!second.ok() || second.result != first.result) {
    fail("io chaos [" + a.name + "] " + what +
         ": second reload diverged from the first");
    return;
  }
  io::AtomicWriteOptions clean;
  clean.fsync = false;
  const Status resaved = a.save(path, a.gen2, clean);
  if (!resaved.ok()) {
    fail("io chaos [" + a.name + "] " + what +
         ": clean save after recovery failed: " + resaved.message);
    return;
  }
  const Solved<std::string> after = a.load(path);
  if (!after.ok() || after.result != a.gen2)
    fail("io chaos [" + a.name + "] " + what +
         ": store did not accept a clean save after recovery");
}

/// Campaign 1: gen1 durable, then a simulated kill at every byte offset
/// of gen2's publish, plus the three rename-window stages.
void io_chaos_kill_sweep(const IoChaosArtifact& a, const std::string& dir) {
  const std::string path = dir + "/" + a.name + ".artifact";
  std::size_t kills = 0;
  for (std::size_t cut = 0; cut <= a.wrapped_gen2.size(); ++cut) {
    io_chaos_reset(path);
    io::AtomicWriteOptions clean;
    clean.fsync = false;
    Status s = a.save(path, a.gen1, clean);
    if (!s.ok()) {
      fail("io chaos [" + a.name + "]: clean gen1 save failed: " + s.message);
      return;
    }
    io::AtomicWriteOptions kill = clean;
    kill.crash_point = io::CrashPoint::kDuringTempWrite;
    kill.crash_byte = cut;
    s = a.save(path, a.gen2, kill);
    if (s.ok()) {
      fail("io chaos [" + a.name + "]: kill at byte " + std::to_string(cut) +
           " reported success");
      return;
    }
    ++kills;
    io_chaos_check_reload(a, path, "kill at byte " + std::to_string(cut));
    if (failures > 0) return;  // first broken offset names itself; stop
  }
  for (const io::CrashPoint stage :
       {io::CrashPoint::kAfterTempWrite, io::CrashPoint::kAfterBackupRename,
        io::CrashPoint::kAfterFinalRename}) {
    io_chaos_reset(path);
    io::AtomicWriteOptions clean;
    clean.fsync = false;
    if (!a.save(path, a.gen1, clean).ok()) {
      fail("io chaos [" + a.name + "]: clean gen1 save failed");
      return;
    }
    io::AtomicWriteOptions kill = clean;
    kill.crash_point = stage;
    if (a.save(path, a.gen2, kill).ok()) {
      fail("io chaos [" + a.name + "]: stage kill reported success");
      return;
    }
    ++kills;
    io_chaos_check_reload(
        a, path,
        "stage kill " + std::to_string(static_cast<int>(stage)));
    if (failures > 0) return;
  }
  std::printf("io chaos [%s]: %zu kills survived (image %zu bytes)\n",
              a.name.c_str(), kills, a.wrapped_gen2.size());
}

/// Campaign 2: alternating saves under an armed io-* fault plan, one
/// context across the whole run, reload after every attempt. The reload
/// must equal the attempted generation or the last durably-loaded one.
void io_chaos_fault_plan(const IoChaosArtifact& a, const std::string& dir,
                         std::uint64_t fault_seed) {
  const std::string path = dir + "/" + a.name + ".faulted";
  constexpr std::size_t kSeeds = 5;
  constexpr std::size_t kSavesPerSeed = 40;
  std::uint64_t injected_total = 0;
  std::size_t clean_saves = 0;
  for (std::size_t s = 0; s < kSeeds; ++s) {
    io_chaos_reset(path);
    io::AtomicWriteOptions clean;
    clean.fsync = false;
    if (!a.save(path, a.gen1, clean).ok()) {
      fail("io chaos [" + a.name + "]: base save failed");
      return;
    }
    std::string last_durable = a.gen1;

    fault::FaultPlan plan;
    plan.seed = fault_seed + s;
    plan.rate_of(fault::FaultSite::kIoShortWrite) = 0.2;
    plan.rate_of(fault::FaultSite::kIoEnospc) = 0.1;
    plan.rate_of(fault::FaultSite::kIoRenameFail) = 0.2;
    plan.rate_of(fault::FaultSite::kIoBitFlip) = 0.15;
    fault::FaultContext ctx(plan);

    for (std::size_t i = 0; i < kSavesPerSeed; ++i) {
      const std::string& attempted = (i % 2 == 0) ? a.gen2 : a.gen1;
      io::AtomicWriteOptions faulted;
      faulted.fsync = false;
      faulted.fault = &ctx;
      const std::uint64_t flips_before =
          ctx.injected(fault::FaultSite::kIoBitFlip);
      const Status saved = a.save(path, attempted, faulted);
      if (saved.ok()) ++clean_saves;
      const Solved<std::string> loaded = a.load(path);
      if (!loaded.ok()) {
        fail("io chaos [" + a.name + "] plan seed " + std::to_string(s) +
             " save " + std::to_string(i) +
             ": reload failed: " + loaded.status.message +
             "\n  replay plan:\n" + plan.to_text());
        return;
      }
      if (loaded.result != attempted && loaded.result != last_durable) {
        fail("io chaos [" + a.name + "] plan seed " + std::to_string(s) +
             " save " + std::to_string(i) +
             ": reload is neither the attempted nor the last durable "
             "generation\n  replay plan:\n" +
             plan.to_text());
        return;
      }
      // An acknowledged save MUST be the attempted generation — unless an
      // injected SILENT bit flip corrupted it, in which case the reload
      // legitimately fell back (that is the checksum doing its job).
      if (saved.ok() && loaded.result != attempted &&
          ctx.injected(fault::FaultSite::kIoBitFlip) == flips_before) {
        fail("io chaos [" + a.name + "] plan seed " + std::to_string(s) +
             " save " + std::to_string(i) +
             ": acknowledged save did not survive reload\n  replay plan:\n" +
             plan.to_text());
        return;
      }
      last_durable = loaded.result;
    }
    injected_total += ctx.total_injected();
  }
  std::printf(
      "io chaos [%s]: %zu faulted saves (%zu acknowledged, %llu injections) "
      "never lost a generation\n",
      a.name.c_str(), kSeeds * kSavesPerSeed, clean_saves,
      static_cast<unsigned long long>(injected_total));
}

/// Campaign 3 (cache only): a torn record image as the ONLY generation
/// must salvage a byte-exact record prefix — or fail truthfully — at
/// every cut offset.
void io_chaos_salvage_sweep(const std::string& dir) {
  cache::SolveCache gen2;
  io_chaos_fill_cache(gen2, 3);
  const std::vector<std::string> records = gen2.to_record_texts();
  const std::string wrapped =
      io::wrap_record_artifact(cache::kCacheArtifactFormat, records);
  const std::string path = dir + "/cache.salvage";
  std::size_t salvages = 0, refusals = 0;
  for (std::size_t cut = 0; cut < wrapped.size(); ++cut) {
    io_chaos_reset(path);
    if (!io::write_file_checked(path, wrapped.substr(0, cut)).ok()) {
      fail("io chaos [salvage]: planting torn image failed");
      return;
    }
    cache::SolveCache loaded;
    io::LoadReport report;
    const Status s = cache::load_cache_file(path, &loaded, &report);
    if (!s.ok()) {
      ++refusals;  // nothing salvageable: truthful failure is fine
      continue;
    }
    const std::vector<std::string> got = loaded.to_record_texts();
    if (got.size() > records.size()) {
      fail("io chaos [salvage]: cut " + std::to_string(cut) +
           " salvaged MORE records than were written");
      return;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != records[i]) {
        fail("io chaos [salvage]: cut " + std::to_string(cut) + " record " +
             std::to_string(i) + " is not a byte-exact prefix record");
        return;
      }
    }
    ++salvages;
  }
  std::printf(
      "io chaos [salvage]: %zu cuts -> %zu exact-prefix salvages, %zu "
      "truthful refusals\n",
      wrapped.size(), salvages, refusals);
}

/// Entry point for --io-chaos. `dir` empty = private mkdtemp scratch
/// (removed when everything passes); non-empty = caller-owned directory
/// whose debris CI uploads on failure.
void io_chaos(std::string dir, std::uint64_t fault_seed) {
  bool scratch = false;
  if (dir.empty()) {
    char tmpl[] = "/tmp/defender-io-chaos-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      fail("io chaos: cannot create scratch directory");
      return;
    }
    dir = tmpl;
    scratch = true;
  }
  const std::vector<IoChaosArtifact> artifacts = io_chaos_artifacts();
  for (const IoChaosArtifact& a : artifacts) {
    if (failures > 0) break;
    io_chaos_kill_sweep(a, dir);
    if (failures > 0) break;
    io_chaos_fault_plan(a, dir, fault_seed);
  }
  if (failures == 0) io_chaos_salvage_sweep(dir);
  if (failures > 0) {
    std::fprintf(stderr, "io chaos: on-disk debris kept in %s\n",
                 dir.c_str());
    return;
  }
  if (scratch) {
    for (const IoChaosArtifact& a : artifacts) {
      io_chaos_reset(dir + "/" + a.name + ".artifact");
      io_chaos_reset(dir + "/" + a.name + ".faulted");
    }
    io_chaos_reset(dir + "/cache.salvage");
    rmdir(dir.c_str());
  }
}

// --------------------------------------------------------------------------
// Supervise chaos (--supervise-chaos): the subprocess worker pool under
// worker kills landing at arbitrary instants (docs/SUPERVISION.md).
//
// Three phases:
//
//  1. Armed sweep: a mixed batch where jobs carry worker-crash /
//     worker-hang plans. Whether a dispatch dies is a pure function of
//     the plan (FaultContext::scheduled), so the harness computes the
//     expected fate of every job up front: a job whose first
//     max_job_crashes dispatches all die must be quarantined with a
//     truthful kWorkerCrashed; every survivor must come out bit-equal to
//     a serial in-process solve (the in-process engine never evaluates
//     the worker-* sites, so an armed plan is inert there).
//
//  2. External SIGKILL chaos: a clean batch while a killer thread
//     SIGKILLs random live workers mid-flight. max_job_crashes is raised
//     above the kill budget so bad luck cannot quarantine anything: the
//     batch must complete with every result bit-identical to an
//     uninterrupted serial run.
//
//  3. Recovery: the pool climbs back to full strength (restarts are
//     asynchronous under capped backoff, so strength is polled, not
//     asserted synchronously) and a follow-up clean batch is all-ok.

/// Polls for `ok` to become true; worker restarts are eventual.
bool supervise_eventually(const std::function<bool()>& ok,
                          double seconds = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return ok();
}

/// True when dispatch `d` of a job under `plan` is scheduled to kill its
/// worker — the SAME pure predicate the worker consults, so the harness
/// and the pool can never disagree about a job's fate.
bool supervise_kill_scheduled(const fault::FaultPlan& plan, std::uint64_t d) {
  return fault::FaultContext::scheduled(plan, fault::FaultSite::kWorkerCrash,
                                        d) ||
         fault::FaultContext::scheduled(plan, fault::FaultSite::kWorkerHang,
                                        d);
}

/// Phase-1 batch: 48 random boards, all six solvers; every fourth job is
/// armed with worker-crash, every eighth with worker-hang, and two
/// explicit rate-1.0 poison jobs are guaranteed quarantine.
std::vector<engine::SolveJob> build_supervise_batch(std::uint64_t seed,
                                                    std::uint64_t fault_seed) {
  util::Rng rng(seed ^ 0x5afe5u);
  std::vector<engine::SolveJob> jobs;
  constexpr std::size_t kJobs = 48;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    const graph::Graph g = random_board(rng);
    const std::size_t nu = static_cast<std::size_t>(rng.range(1, 3));
    const std::size_t want =
        std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 4)),
                              g.num_edges());
    engine::SolveJob job(core::TupleGame(g, pick_k(g, want, nu), nu));
    job.solver = engine::kAllJobSolvers[i % engine::kJobSolverCount];
    job.budget = SolveBudget::iterations(60);
    job.tolerance = (job.solver == engine::JobSolver::kFictitiousPlay ||
                     job.solver == engine::JobSolver::kWeightedFictitiousPlay ||
                     job.solver == engine::JobSolver::kHedge)
                        ? 1e-2
                        : 1e-9;
    if (engine::is_weighted(job.solver)) {
      const std::size_t n = job.game.graph().num_vertices();
      for (std::size_t v = 0; v < n; ++v)
        job.weights.push_back(1.0 + 0.125 * static_cast<double>(v % 8));
    }
    job.fault_plan.seed = engine::derive_job_seed(fault_seed, i);
    if (i == 9 || i == 29) {
      job.fault_plan.rate_of(fault::FaultSite::kWorkerCrash) = 1.0;  // poison
    } else if (i % 4 == 0) {
      job.fault_plan.rate_of(fault::FaultSite::kWorkerCrash) = 0.5;
    } else if (i % 8 == 2) {
      job.fault_plan.rate_of(fault::FaultSite::kWorkerHang) = 0.5;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Compares a pool result to its serial truth bit for bit.
void supervise_expect_serial(const engine::JobResult& r,
                             const engine::JobResult& t,
                             const std::string& tag) {
  check(r.status.code == t.status.code, tag + ": status drifted");
  check(r.status.message == t.status.message, tag + ": message drifted");
  check(r.status.iterations == t.status.iterations,
        tag + ": iteration count drifted");
  check(r.value == t.value, tag + ": value drifted");
  check(r.lower_bound == t.lower_bound, tag + ": lower drifted");
  check(r.upper_bound == t.upper_bound, tag + ": upper drifted");
  check(r.iterations == t.iterations, tag + ": solver iterations drifted");
  check(r.attempts.size() == t.attempts.size(),
        tag + ": attempt history drifted");
  check(r.faults_injected == t.faults_injected,
        tag + ": fault count drifted");
}

void supervise_chaos(std::uint64_t seed, std::uint64_t fault_seed,
                     const std::string& report_path) {
  const int failures_before = failures;

  // ---- Phase 1: deterministic armed sweep -------------------------------
  const std::vector<engine::SolveJob> jobs =
      build_supervise_batch(seed, fault_seed);

  engine::EngineConfig serial_config;
  serial_config.workers = 1;
  engine::SolveEngine serial(serial_config);
  const engine::BatchReport truth = serial.run(jobs);

  supervise::PoolConfig config;
  config.workers = 4;
  // Short escalation clocks: worker-hang shields SIGTERM, so every hang
  // costs a full heartbeat timeout + grace before SIGKILL reclaims it.
  config.heartbeat_interval_seconds = 0.02;
  config.heartbeat_timeout_seconds = 0.5;
  config.term_grace_seconds = 0.2;

  std::size_t expected_quarantined = 0;
  std::size_t expected_kills = 0;
  std::vector<bool> expect_quarantine(jobs.size(), false);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    bool all_die = true;
    for (std::uint64_t d = 0; d < config.max_job_crashes; ++d) {
      if (!supervise_kill_scheduled(jobs[i].fault_plan, d)) {
        all_die = false;
        break;  // this dispatch survives and completes the job
      }
      ++expected_kills;
    }
    expect_quarantine[i] = all_die;
    if (all_die) ++expected_quarantined;
  }

  supervise::SupervisedReport report;
  {
    supervise::WorkerPool pool(config);
    report = pool.run(jobs);
    check(report.batch.results.size() == jobs.size(),
          "supervise: result count");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const engine::JobResult& r = report.batch.results[i];
      const std::string tag = "supervise job " + std::to_string(i);
      check(r.job_index == i, tag + ": index");
      if (expect_quarantine[i]) {
        check(r.status.code == StatusCode::kWorkerCrashed,
              tag + ": poison job not quarantined");
        check(!r.status.message.empty(), tag + ": quarantine needs a story");
        check(r.attempts.empty(), tag + ": fabricated attempt history");
        check(r.lower_bound <= r.value && r.value <= r.upper_bound,
              tag + ": quarantine bracket insane");
      } else {
        // Survivors — including jobs recovered after a scheduled kill —
        // must be bit-identical to the serial in-process engine.
        supervise_expect_serial(r, truth.results[i], tag);
      }
    }
    check(report.quarantined_jobs == expected_quarantined,
          "supervise: quarantine count " +
              std::to_string(report.quarantined_jobs) + " != expected " +
              std::to_string(expected_quarantined));
    // Every scheduled kill is answered with a restart; the last restarts
    // may still be in their backoff windows when run() returns.
    supervise::WorkerPool* pool_ptr = &pool;
    const std::size_t want_kills = expected_kills;
    check(supervise_eventually([pool_ptr, want_kills] {
            return pool_ptr->worker_restarts() == want_kills;
          }),
          "supervise: restarts " + std::to_string(pool.worker_restarts()) +
              " != scheduled kills " + std::to_string(want_kills));
    check(supervise_eventually([pool_ptr] {
            return pool_ptr->worker_pids().size() == 4;
          }),
          "supervise: pool never recovered full strength");
  }
  std::printf(
      "supervise chaos: armed sweep — %zu jobs, %zu scheduled kills, "
      "%zu quarantined (%zu restarts, %zu heartbeat misses)\n",
      jobs.size(), expected_kills, report.quarantined_jobs,
      report.worker_restarts, report.heartbeat_misses);

  // ---- Phase 2: external SIGKILLs at arbitrary instants -----------------
  // Clean long-running jobs; a killer thread SIGKILLs random live workers
  // mid-batch. The kill budget stays far below max_job_crashes, so every
  // job must complete — and bit-identically to an uninterrupted serial
  // run, whether it was re-run from scratch or resumed from a streamed
  // checkpoint.
  std::vector<engine::SolveJob> clean;
  {
    util::Rng rng(seed ^ 0x51660u);
    for (std::size_t i = 0; i < 32; ++i) {
      const graph::Graph g = random_board(rng);
      const std::size_t nu = static_cast<std::size_t>(rng.range(1, 3));
      const std::size_t want =
          std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 4)),
                                g.num_edges());
      engine::SolveJob job(core::TupleGame(g, pick_k(g, want, nu), nu));
      job.solver = (i % 2 == 0) ? engine::JobSolver::kFictitiousPlay
                                : engine::JobSolver::kHedge;
      job.budget = SolveBudget::iterations(40'000);
      job.tolerance = 0.0;  // run the full budget: kills land mid-solve
      clean.push_back(std::move(job));
    }
  }
  const engine::BatchReport clean_truth = serial.run(clean);

  supervise::PoolConfig chaos_config;
  chaos_config.workers = 4;
  chaos_config.max_job_crashes = 1'000;  // external kills never quarantine
  chaos_config.stream_interval_seconds = 0.05;  // exercise resume paths
  std::size_t kills_delivered = 0;
  {
    supervise::WorkerPool pool(chaos_config);
    std::atomic<bool> batch_done{false};
    util::Rng kill_rng(seed ^ 0xdeadu);
    std::thread killer([&] {
      constexpr std::size_t kKillBudget = 12;
      while (!batch_done.load() && kills_delivered < kKillBudget) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(kill_rng.range(20, 60))));
        const std::vector<pid_t> pids = pool.worker_pids();
        if (pids.empty()) continue;
        const pid_t victim = pids[static_cast<std::size_t>(
            kill_rng.range(0, static_cast<long long>(pids.size()) - 1))];
        if (::kill(victim, SIGKILL) == 0) ++kills_delivered;
      }
    });
    const supervise::SupervisedReport chaos_report = pool.run(clean);
    batch_done.store(true);
    killer.join();

    check(chaos_report.batch.results.size() == clean.size(),
          "supervise sigkill: result count");
    check(chaos_report.quarantined_jobs == 0,
          "supervise sigkill: external kills must never quarantine");
    for (std::size_t i = 0; i < clean.size(); ++i)
      supervise_expect_serial(chaos_report.batch.results[i],
                              clean_truth.results[i],
                              "supervise sigkill job " + std::to_string(i));
    // Every delivered kill is eventually answered with a restart (a kill
    // can even land in the gap between run() returning and the killer
    // noticing, so the report snapshot may lag — poll the pool).
    supervise::WorkerPool* pool_ptr = &pool;
    const std::size_t want_restarts = kills_delivered;
    check(supervise_eventually([pool_ptr, want_restarts] {
            return pool_ptr->worker_restarts() >= want_restarts;
          }),
          "supervise sigkill: " + std::to_string(kills_delivered) +
              " kills but only " + std::to_string(pool.worker_restarts()) +
              " restarts");

    // ---- Phase 3: recovery — full strength, then a clean batch --------
    check(supervise_eventually([pool_ptr] {
            return pool_ptr->worker_pids().size() == 4;
          }),
          "supervise sigkill: pool never recovered full strength");
    std::vector<engine::SolveJob> after(clean.begin(), clean.begin() + 4);
    const supervise::SupervisedReport after_report = pool.run(after);
    for (std::size_t i = 0; i < after.size(); ++i)
      supervise_expect_serial(after_report.batch.results[i],
                              clean_truth.results[i],
                              "supervise after job " + std::to_string(i));
    std::printf(
        "supervise chaos: sigkill phase — %zu kills delivered, %zu "
        "restarts, %zu resumed dispatches, batch + follow-up bit-identical "
        "to serial\n",
        kills_delivered, chaos_report.worker_restarts,
        chaos_report.resumed_dispatches);
  }

  if (failures > failures_before && !report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    out << report.batch.to_jsonl();
    std::fprintf(stderr, "supervise: wrote JobReport JSONL to %s\n",
                 report_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  supervise::worker_trampoline(argc, argv);
  std::size_t instances = 200;
  std::size_t fuzz_iters = 10'000;
  std::uint64_t seed = 0xdefe2026ULL;
  std::string trace_path;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0xc4a05ULL;  // "chaos"
  std::string fault_plan_dir;
  std::size_t engine_jobs = 0;  // workers; 0 = engine chaos off
  std::string engine_report;
  bool engine_cache = false;
  std::size_t serve_fuzz_iters = 0;
  double serve_soak_seconds = 0;
  std::string serve_report;
  bool io_chaos_enabled = false;
  std::string io_artifacts_dir;
  bool supervise_chaos_enabled = false;
  std::string supervise_report;
  for (int i = 1; i < argc; ++i) {
    const auto next_value = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--instances") == 0) {
      instances = static_cast<std::size_t>(next_value("--instances"));
    } else if (std::strcmp(argv[i], "--fuzz-iters") == 0) {
      fuzz_iters = static_cast<std::size_t>(next_value("--fuzz-iters"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(next_value("--seed"));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --trace\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-rate") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --fault-rate\n");
        return 2;
      }
      fault_rate = std::atof(argv[++i]);
      if (!(fault_rate >= 0.0) || fault_rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      fault_seed = static_cast<std::uint64_t>(next_value("--fault-seed"));
    } else if (std::strcmp(argv[i], "--fault-plans") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --fault-plans\n");
        return 2;
      }
      fault_plan_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--engine-jobs") == 0) {
      const long long v = next_value("--engine-jobs");
      if (v < 1) {
        std::fprintf(stderr, "--engine-jobs must be >= 1\n");
        return 2;
      }
      engine_jobs = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--engine-report") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --engine-report\n");
        return 2;
      }
      engine_report = argv[++i];
    } else if (std::strcmp(argv[i], "--engine-cache") == 0) {
      engine_cache = true;
    } else if (std::strcmp(argv[i], "--serve-fuzz") == 0) {
      serve_fuzz_iters = static_cast<std::size_t>(next_value("--serve-fuzz"));
    } else if (std::strcmp(argv[i], "--serve-soak") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --serve-soak\n");
        return 2;
      }
      serve_soak_seconds = std::atof(argv[++i]);
      if (!(serve_soak_seconds >= 0)) {
        std::fprintf(stderr, "--serve-soak must be >= 0 seconds\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--serve-report") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --serve-report\n");
        return 2;
      }
      serve_report = argv[++i];
    } else if (std::strcmp(argv[i], "--io-chaos") == 0) {
      io_chaos_enabled = true;
    } else if (std::strcmp(argv[i], "--io-artifacts") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --io-artifacts\n");
        return 2;
      }
      io_artifacts_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--supervise-chaos") == 0) {
      supervise_chaos_enabled = true;
    } else if (std::strcmp(argv[i], "--supervise-report") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --supervise-report\n");
        return 2;
      }
      supervise_report = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--instances N] [--fuzz-iters N] [--seed S] "
                   "[--trace FILE.jsonl] [--fault-rate R] [--fault-seed S] "
                   "[--fault-plans DIR] [--engine-jobs N] "
                   "[--engine-report FILE] [--engine-cache] "
                   "[--serve-fuzz N] [--serve-soak SECONDS] "
                   "[--serve-report FILE] [--io-chaos] "
                   "[--io-artifacts DIR] [--supervise-chaos] "
                   "[--supervise-report FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  // --trace wires every differential solve into one JSONL narrative plus
  // the global metrics registry (no convergence recorder: samples from
  // unrelated solves would interleave meaninglessly).
  std::unique_ptr<obs::JsonlSink> sink;
  obs::Tracer tracer;
  obs::ObsContext ctx;
  if (!trace_path.empty()) {
    sink = std::make_unique<obs::JsonlSink>(trace_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "cannot open trace file %s\n", trace_path.c_str());
      return 2;
    }
    tracer.add_sink(sink.get());
    ctx.tracer = &tracer;
    ctx.metrics = &obs::MetricsRegistry::global();
    g_obs = &ctx;
  }

  util::Rng rng(seed);
  for (std::size_t i = 0; i < instances; ++i) {
    try {
      differential_instance(rng, i);
    } catch (const std::exception& e) {
      fail("instance " + std::to_string(i) + " threw: " + e.what());
    }
  }
  std::printf("differential: %zu instances checked\n", instances);

  if (fault_rate > 0.0) {
    for (std::size_t i = 0; i < instances; ++i) {
      try {
        chaos_instance(rng, i, fault_rate, fault_seed, fault_plan_dir);
      } catch (const std::exception& e) {
        fail("chaos instance " + std::to_string(i) + " threw: " + e.what());
      }
    }
    std::printf("chaos: %zu instances survived fault rate %.3f (seed %llu)\n",
                instances, fault_rate,
                static_cast<unsigned long long>(fault_seed));
  }

  if (engine_jobs > 0) {
    try {
      engine_chaos(engine_jobs, seed, fault_seed, engine_report,
                   engine_cache);
    } catch (const std::exception& e) {
      fail(std::string("engine chaos threw: ") + e.what());
    }
  }

  if (io_chaos_enabled) {
    try {
      io_chaos(io_artifacts_dir, fault_seed);
    } catch (const std::exception& e) {
      fail(std::string("io chaos threw: ") + e.what());
    }
    if (failures == 0)
      std::printf("io chaos: kill sweep + fault plans survived on all "
                  "three artifact paths\n");
  }

  if (supervise_chaos_enabled) {
    try {
      supervise_chaos(seed, fault_seed, supervise_report);
    } catch (const std::exception& e) {
      fail(std::string("supervise chaos threw: ") + e.what());
    }
  }

  fuzz_parsers(rng, fuzz_iters);
  std::printf("fuzz: %zu parser inputs survived\n", fuzz_iters);

  if (serve_fuzz_iters > 0) {
    serve_fuzz(rng, serve_fuzz_iters);
    std::printf("serve fuzz: %zu request/manifest inputs survived\n",
                serve_fuzz_iters);
  }
  if (serve_soak_seconds > 0) {
    try {
      serve_soak(serve_soak_seconds, serve_report);
    } catch (const std::exception& e) {
      fail(std::string("serve soak threw: ") + e.what());
    }
  }

  if (g_obs != nullptr) {
    tracer.flush();
    std::printf("trace: %llu events -> %s\n",
                static_cast<unsigned long long>(tracer.events_emitted()),
                trace_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures);
    return 1;
  }
  std::printf("stress_defender: all checks passed\n");
  return 0;
}
