#include "sim/tournament.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/double_oracle.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::sim {
namespace {

using core::TupleDistribution;
using core::TupleGame;
using core::VertexDistribution;

TupleGame c6(std::size_t nu = 4) {
  return TupleGame(graph::cycle_graph(6), 1, nu);
}

// The alternating equilibrium of C6: defender uniform on the perfect
// matching {0, 3, 5}, attacker uniform on {0, 2, 4}.
DefenderPolicy equilibrium_defender() {
  return {"equilibrium", TupleDistribution::uniform({{0}, {3}, {5}})};
}
AttackerPolicy equilibrium_attacker() {
  return {"equilibrium", VertexDistribution::uniform({0, 2, 4})};
}
DefenderPolicy static_defender() {
  return {"static", TupleDistribution::uniform({{0}})};
}
AttackerPolicy exploiting_attacker() {
  // Against the static defender (edge (0,1)), vertex 3 always escapes.
  return {"exploit-static", VertexDistribution::uniform({3})};
}

TEST(Tournament, CrossTableShapeAndFloors) {
  const TupleGame game = c6();
  util::Rng rng(5);
  const TournamentResult r = run_tournament(
      game, {equilibrium_defender(), static_defender()},
      {equilibrium_attacker(), exploiting_attacker()}, 20000, rng);
  ASSERT_EQ(r.arrests.size(), 2u);
  ASSERT_EQ(r.arrests[0].size(), 2u);
  // Equilibrium defender: ~value * nu = (1/3)*4 against anything.
  EXPECT_NEAR(r.arrests[0][0], 4.0 / 3, 0.05);
  EXPECT_NEAR(r.arrests[0][1], 4.0 / 3, 0.05);
  // Static defender vs the exploiting attacker: zero arrests.
  EXPECT_NEAR(r.arrests[1][1], 0.0, 1e-12);
  // Floors: equilibrium floor ~ 4/3, static floor 0.
  EXPECT_GT(r.defender_floor[0], 1.2);
  EXPECT_NEAR(r.defender_floor[1], 0.0, 1e-12);
  // The exploiting attacker still concedes ~4/3 to the equilibrium mix.
  EXPECT_GT(r.attacker_ceiling[1], 1.2);
}

TEST(Tournament, RejectsEmptyPolicySets) {
  const TupleGame game = c6();
  util::Rng rng(1);
  EXPECT_THROW(
      run_tournament(game, {}, {equilibrium_attacker()}, 10, rng),
      ContractViolation);
}

TEST(Exploitability, EquilibriumPoliciesHaveZero) {
  const TupleGame game = c6(1);
  const double value = core::solve_double_oracle(game).value;
  EXPECT_NEAR(value, 1.0 / 3, 1e-7);
  EXPECT_NEAR(defender_exploitability(game, equilibrium_defender().mix, value),
              0.0, 1e-9);
  EXPECT_NEAR(attacker_exploitability(game, equilibrium_attacker().mix, value),
              0.0, 1e-9);
}

TEST(Exploitability, NaivePoliciesArePositive) {
  const TupleGame game = c6(1);
  const double value = 1.0 / 3;
  // Static defender: guarantee 0 (vertex 3 never hit) -> exploitability 1/3.
  EXPECT_NEAR(defender_exploitability(game, static_defender().mix, value),
              1.0 / 3, 1e-12);
  // Pinned attacker: concedes 1 (the defender camps its edge).
  EXPECT_NEAR(
      attacker_exploitability(game, exploiting_attacker().mix, value),
      1.0 - 1.0 / 3, 1e-9);
}

TEST(Exploitability, GuaranteeAndConcessionBracketTheValue) {
  // For ANY pair of mixes: guarantee <= value <= concession.
  const graph::Graph g = graph::grid_graph(3, 4);
  const TupleGame game(g, 2, 1);
  const double value = core::solve_double_oracle(game).value;
  const auto ne = core::a_tuple_bipartite(game);
  ASSERT_TRUE(ne.has_value());
  EXPECT_LE(defender_guarantee(game, ne->configuration.defender),
            value + 1e-9);
  EXPECT_GE(attacker_concession(game, ne->configuration.attackers.front()),
            value - 1e-9);
  // And the constructed equilibrium is (near) unexploitable on both sides.
  EXPECT_NEAR(
      defender_exploitability(game, ne->configuration.defender, value), 0.0,
      1e-7);
  EXPECT_NEAR(attacker_exploitability(
                  game, ne->configuration.attackers.front(), value),
              0.0, 1e-7);
}

}  // namespace
}  // namespace defender::sim
