#include "sim/sampling.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace defender::sim {
namespace {

TEST(DiscreteSampler, SingleOutcome) {
  const std::vector<double> w{1.0};
  DiscreteSampler s(w);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const std::vector<double> w{0.0, 1.0, 0.0};
  DiscreteSampler s(w);
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.sample(rng), 1u);
}

TEST(DiscreteSampler, FrequenciesTrackWeights) {
  const std::vector<double> w{1.0, 3.0};  // expect 25% / 75%
  DiscreteSampler s(w);
  util::Rng rng(3);
  int ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ones += s.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.75, 0.01);
}

TEST(DiscreteSampler, UnnormalizedWeightsAllowed) {
  const std::vector<double> w{10.0, 10.0, 20.0};
  DiscreteSampler s(w);
  util::Rng rng(4);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 60000; ++i) ++counts[s.sample(rng)];
  EXPECT_NEAR(counts[2] / 60000.0, 0.5, 0.02);
}

TEST(DiscreteSampler, RejectsBadWeights) {
  EXPECT_THROW(DiscreteSampler(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{0.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{1.0, -0.5}),
               ContractViolation);
}

TEST(DiscreteSampler, SizeReportsOutcomeCount) {
  const std::vector<double> w{1, 2, 3, 4};
  EXPECT_EQ(DiscreteSampler(w).size(), 4u);
}

}  // namespace
}  // namespace defender::sim
