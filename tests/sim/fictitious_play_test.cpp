#include "sim/fictitious_play.hpp"

#include <gtest/gtest.h>

#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::sim {
namespace {

using core::TupleGame;

TEST(FictitiousPlay, BoundsBracketTheValue) {
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const FictitiousPlayResult r = fictitious_play(game, 2000);
  // True value is 1/3 (three defendable disjoint edges).
  EXPECT_GE(r.trace.back().upper, 1.0 / 3 - 1e-9);
  EXPECT_LE(r.trace.back().lower, 1.0 / 3 + 1e-9);
  EXPECT_NEAR(r.value_estimate, 1.0 / 3, 0.05);
}

TEST(FictitiousPlay, GapShrinksWithRounds) {
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const FictitiousPlayResult short_run = fictitious_play(game, 50);
  const FictitiousPlayResult long_run = fictitious_play(game, 5000);
  EXPECT_LT(long_run.gap, short_run.gap + 1e-12);
  EXPECT_LT(long_run.gap, 0.1);
}

TEST(FictitiousPlay, MatchesLpValueOnSmallInstances) {
  for (std::size_t k = 1; k <= 2; ++k) {
    const TupleGame game(graph::path_graph(5), k, 1);
    const double lp_value = core::solve_zero_sum(game).value;
    const FictitiousPlayResult r = fictitious_play(game, 4000);
    EXPECT_NEAR(r.value_estimate, lp_value, 0.05) << "k=" << k;
    EXPECT_GE(r.trace.back().upper, lp_value - 1e-9) << "k=" << k;
    EXPECT_LE(r.trace.back().lower, lp_value + 1e-9) << "k=" << k;
  }
}

TEST(FictitiousPlay, StarConvergesToKOverLeaves) {
  const TupleGame game(graph::star_graph(5), 2, 1);
  const FictitiousPlayResult r = fictitious_play(game, 3000);
  EXPECT_NEAR(r.value_estimate, 2.0 / 5, 0.05);
}

TEST(FictitiousPlay, TraceIsMonotoneInRounds) {
  const TupleGame game(graph::cycle_graph(8), 2, 1);
  const FictitiousPlayResult r = fictitious_play(game, 1000);
  ASSERT_GE(r.trace.size(), 3u);
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_GT(r.trace[i].round, r.trace[i - 1].round);
}

TEST(FictitiousPlay, FrequenciesAreDistributions) {
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const FictitiousPlayResult r = fictitious_play(game, 500);
  double mass = 0;
  for (double f : r.attacker_frequency) {
    EXPECT_GE(f, 0.0);
    mass += f;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(FictitiousPlay, RejectsZeroRounds) {
  const TupleGame game(graph::path_graph(3), 1, 1);
  EXPECT_THROW(fictitious_play(game, 0), ContractViolation);
}

}  // namespace
}  // namespace defender::sim
