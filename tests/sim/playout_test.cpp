#include "sim/playout.hpp"

#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::sim {
namespace {

using core::MixedConfiguration;
using core::TupleDistribution;
using core::TupleGame;
using core::VertexDistribution;

TEST(Playout, DeterministicConfigurationsMatchExactly) {
  // Degenerate distributions: attacker always on 0, defender always on the
  // edge covering it -> defender profit 1 every round.
  const TupleGame game(graph::path_graph(3), 1, 1);
  const MixedConfiguration config = core::symmetric_configuration(
      game, VertexDistribution::uniform({0}),
      TupleDistribution::uniform({{0}}));
  util::Rng rng(1);
  const PlayoutStats stats = run_playouts(game, config, 500, rng);
  EXPECT_DOUBLE_EQ(stats.defender_profit_mean, 1.0);
  EXPECT_DOUBLE_EQ(stats.defender_profit_stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.attacker_escape_freq[0], 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_freq[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.hit_freq[2], 0.0);
}

TEST(Playout, EmpiricalMatchesAnalyticOnEquilibrium) {
  const TupleGame game(graph::cycle_graph(6), 2, 3);
  const auto result = core::a_tuple_bipartite(game);
  ASSERT_TRUE(result.has_value());
  util::Rng rng(42);
  const PlayoutStats stats =
      run_playouts(game, result->configuration, 200000, rng);
  EXPECT_LT(max_abs_deviation(game, result->configuration, stats), 0.01);
}

TEST(Playout, AttackerEscapePlusDefenderProfitBalance) {
  // Sum of per-attacker catch frequencies equals the defender profit mean.
  const TupleGame game(graph::path_graph(5), 1, 4);
  const MixedConfiguration config = core::symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution::uniform({{0}, {1}, {3}}));
  util::Rng rng(7);
  const PlayoutStats stats = run_playouts(game, config, 20000, rng);
  double caught = 0;
  for (double escape : stats.attacker_escape_freq) caught += 1.0 - escape;
  EXPECT_NEAR(stats.defender_profit_mean, caught, 1e-9);
}

TEST(Playout, ReproducibleForFixedSeed) {
  const TupleGame game(graph::cycle_graph(6), 1, 2);
  const MixedConfiguration config = core::symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution::uniform({{0}, {3}, {5}}));
  util::Rng rng1(99), rng2(99);
  const PlayoutStats a = run_playouts(game, config, 5000, rng1);
  const PlayoutStats b = run_playouts(game, config, 5000, rng2);
  EXPECT_DOUBLE_EQ(a.defender_profit_mean, b.defender_profit_mean);
  EXPECT_EQ(a.hit_freq, b.hit_freq);
}

TEST(Playout, RejectsZeroRounds) {
  const TupleGame game(graph::path_graph(3), 1, 1);
  const MixedConfiguration config = core::symmetric_configuration(
      game, VertexDistribution::uniform({0}),
      TupleDistribution::uniform({{0}}));
  util::Rng rng(1);
  EXPECT_THROW(run_playouts(game, config, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace defender::sim
