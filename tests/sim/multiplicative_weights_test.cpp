#include "sim/multiplicative_weights.hpp"

#include <gtest/gtest.h>

#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "sim/fictitious_play.hpp"
#include "util/assert.hpp"

namespace defender::sim {
namespace {

using core::TupleGame;

TEST(Hedge, BoundsBracketTheValue) {
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const HedgeResult r = hedge_dynamics(game, 2000);
  EXPECT_GE(r.trace.back().upper, 1.0 / 3 - 1e-9);
  EXPECT_LE(r.trace.back().lower, 1.0 / 3 + 1e-9);
  EXPECT_NEAR(r.value_estimate, 1.0 / 3, 0.05);
}

TEST(Hedge, MatchesLpValueOnSmallInstances) {
  for (std::size_t k = 1; k <= 2; ++k) {
    const TupleGame game(graph::path_graph(5), k, 1);
    const double lp = core::solve_zero_sum(game).value;
    const HedgeResult r = hedge_dynamics(game, 3000);
    EXPECT_NEAR(r.value_estimate, lp, 0.05) << "k=" << k;
  }
}

TEST(Hedge, AverageStrategyIsADistribution) {
  const TupleGame game(graph::star_graph(5), 2, 1);
  const HedgeResult r = hedge_dynamics(game, 500);
  double mass = 0;
  for (double p : r.attacker_average) {
    EXPECT_GE(p, 0.0);
    mass += p;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Hedge, ConvergesAtLeastAsTightAsFictitiousPlay) {
  // Same budget of rounds: Hedge's averaged-strategy bounds are typically
  // tighter than FP's. Assert it is at least not dramatically worse.
  const TupleGame game(graph::cycle_graph(8), 2, 1);
  constexpr std::size_t kRounds = 2000;
  const HedgeResult hedge = hedge_dynamics(game, kRounds);
  const FictitiousPlayResult fp = fictitious_play(game, kRounds);
  EXPECT_LT(hedge.gap, fp.gap * 2 + 0.01);
  EXPECT_LT(hedge.gap, 0.15);
}

TEST(Hedge, RejectsZeroRounds) {
  const TupleGame game(graph::path_graph(3), 1, 1);
  EXPECT_THROW(hedge_dynamics(game, 0), ContractViolation);
}

TEST(Hedge, StarValueLearned) {
  const TupleGame game(graph::star_graph(6), 2, 1);
  const HedgeResult r = hedge_dynamics(game, 3000);
  EXPECT_NEAR(r.value_estimate, 2.0 / 6, 0.04);
}

}  // namespace
}  // namespace defender::sim
