#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(PathGraph, SizesAndShape) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
}

TEST(CycleGraph, IsTwoRegular) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(CycleGraph, ParityControlsBipartiteness) {
  EXPECT_TRUE(is_bipartite(cycle_graph(8)));
  EXPECT_FALSE(is_bipartite(cycle_graph(7)));
}

TEST(CompleteGraph, EdgeCount) {
  const Graph g = complete_graph(7);
  EXPECT_EQ(g.num_edges(), 21u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(CompleteBipartite, ShapeAndBipartiteness) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(is_bipartite(g));
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4u);
  for (Vertex v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(StarGraph, HubAndLeaves) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.degree(0), 6u);
  for (Vertex v = 1; v <= 6; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(GridGraph, SizesAndDegrees) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // rows*(cols-1)+(rows-1)*cols
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(HypercubeGraph, IsDRegularAndBipartite) {
  const Graph g = hypercube_graph(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(WheelGraph, HubConnectsToEveryRimVertex) {
  const Graph g = wheel_graph(5);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.degree(5), 5u);
  EXPECT_FALSE(is_bipartite(g));
}

TEST(PetersenGraph, KnownInvariants) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(LadderGraph, ShapeChecks) {
  const Graph g = ladder_graph(4);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 4u + 2u * 3u);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(BinaryTree, ShapeChecks) {
  const Graph g = binary_tree(4);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(RandomTree, IsATreeAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 2 + seed % 40;
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_EQ(g.num_edges(), n - 1) << "seed " << seed;
    EXPECT_TRUE(is_connected(g)) << "seed " << seed;
  }
}

TEST(GnpGraph, ForbidsIsolatedWhenAsked) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const Graph g = gnp_graph(30, 0.05, rng, /*forbid_isolated=*/true);
    EXPECT_FALSE(g.has_isolated_vertex()) << "seed " << seed;
  }
}

TEST(GnpGraph, DensityTracksP) {
  util::Rng rng(99);
  const Graph g = gnp_graph(60, 0.5, rng, false);
  const double expected = 0.5 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.2);
}

TEST(GnpGraph, ExtremeProbabilities) {
  util::Rng rng(7);
  EXPECT_EQ(gnp_graph(10, 1.0, rng, false).num_edges(), 45u);
  const Graph empty = gnp_graph(10, 0.0, rng, true);
  EXPECT_FALSE(empty.has_isolated_vertex());  // attachments kick in
}

TEST(RandomBipartite, StaysBipartiteWithoutIsolated) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const Graph g = random_bipartite(8, 11, 0.15, rng);
    EXPECT_TRUE(is_bipartite(g)) << "seed " << seed;
    EXPECT_FALSE(g.has_isolated_vertex()) << "seed " << seed;
    // All edges cross the parts.
    for (const Edge& e : g.edges()) {
      EXPECT_LT(e.u, 8u);
      EXPECT_GE(e.v, 8u);
    }
  }
}

TEST(RandomConnected, AlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const Graph g = random_connected(25, 0.05, rng);
    EXPECT_TRUE(is_connected(g)) << "seed " << seed;
    EXPECT_GE(g.num_edges(), 24u);
  }
}

TEST(Generators, PreconditionsEnforced) {
  util::Rng rng(1);
  EXPECT_THROW(path_graph(1), ContractViolation);
  EXPECT_THROW(cycle_graph(2), ContractViolation);
  EXPECT_THROW(complete_graph(1), ContractViolation);
  EXPECT_THROW(complete_bipartite(0, 3), ContractViolation);
  EXPECT_THROW(star_graph(0), ContractViolation);
  EXPECT_THROW(grid_graph(1, 1), ContractViolation);
  EXPECT_THROW(hypercube_graph(0), ContractViolation);
  EXPECT_THROW(wheel_graph(2), ContractViolation);
  EXPECT_THROW(ladder_graph(1), ContractViolation);
  EXPECT_THROW(binary_tree(1), ContractViolation);
  EXPECT_THROW(random_tree(1, rng), ContractViolation);
  EXPECT_THROW(gnp_graph(5, 1.5, rng), ContractViolation);
}

}  // namespace
}  // namespace defender::graph
