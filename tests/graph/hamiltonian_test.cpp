#include "graph/hamiltonian.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::graph {
namespace {

void expect_hamiltonian(const Graph& g) {
  EXPECT_TRUE(has_hamiltonian_path(g));
  const auto path = find_hamiltonian_path(g);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), g.num_vertices());
  EXPECT_TRUE(is_simple_path(g, *path));
}

TEST(Hamiltonian, PathsCyclesCompletesHaveOne) {
  expect_hamiltonian(path_graph(8));
  expect_hamiltonian(cycle_graph(9));
  expect_hamiltonian(complete_graph(7));
  expect_hamiltonian(grid_graph(3, 4));
  expect_hamiltonian(hypercube_graph(3));
  expect_hamiltonian(petersen_graph());
  expect_hamiltonian(ladder_graph(5));
}

TEST(Hamiltonian, StarsAndSpidersDoNot) {
  EXPECT_FALSE(has_hamiltonian_path(star_graph(3)));
  EXPECT_FALSE(find_hamiltonian_path(star_graph(5)).has_value());
  // Binary tree with 7 vertices: three leaves hanging off degree-3 nodes.
  EXPECT_FALSE(has_hamiltonian_path(binary_tree(3)));
}

TEST(Hamiltonian, DisconnectedGraphsDoNot) {
  const Graph g = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build();
  EXPECT_FALSE(has_hamiltonian_path(g));
}

TEST(Hamiltonian, UnbalancedCompleteBipartite) {
  // K_{a,b} has a Hamiltonian path iff |a-b| <= 1.
  EXPECT_TRUE(has_hamiltonian_path(complete_bipartite(3, 3)));
  EXPECT_TRUE(has_hamiltonian_path(complete_bipartite(3, 4)));
  EXPECT_FALSE(has_hamiltonian_path(complete_bipartite(2, 4)));
  EXPECT_FALSE(has_hamiltonian_path(complete_bipartite(1, 3)));
}

TEST(Hamiltonian, SingleVertexAndEdge) {
  EXPECT_TRUE(has_hamiltonian_path(path_graph(2)));
  const auto path = find_hamiltonian_path(path_graph(2));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Hamiltonian, SizeLimitEnforced) {
  EXPECT_THROW(has_hamiltonian_path(cycle_graph(25)), ContractViolation);
}

TEST(Hamiltonian, RandomDenseGraphsUsuallyHaveOneAndWitnessIsValid) {
  util::Rng rng(808);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gnp_graph(10, 0.6, rng);
    const bool exists = has_hamiltonian_path(g);
    const auto path = find_hamiltonian_path(g);
    EXPECT_EQ(exists, path.has_value());
    if (path) {
      EXPECT_EQ(path->size(), g.num_vertices());
      EXPECT_TRUE(is_simple_path(g, *path)) << "trial " << trial;
    }
  }
}

TEST(Hamiltonian, SparseTreesNeverUnlessPath) {
  util::Rng rng(909);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_tree(9, rng);
    // A tree has a Hamiltonian path iff it IS a path (max degree 2).
    bool is_path_shape = true;
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      if (g.degree(v) > 2) is_path_shape = false;
    EXPECT_EQ(has_hamiltonian_path(g), is_path_shape) << "trial " << trial;
  }
}

}  // namespace
}  // namespace defender::graph
