#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(EdgeList, RoundTripsThroughText) {
  const Graph g = petersen_graph();
  const Graph parsed = parse_edge_list(to_edge_list(g));
  EXPECT_EQ(g, parsed);
}

TEST(EdgeList, ParsesExplicitDocument) {
  const Graph g = parse_edge_list("3 2\n0 1\n1 2\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(EdgeList, RejectsTruncatedInput) {
  EXPECT_THROW(parse_edge_list("3 2\n0 1\n"), ContractViolation);
  EXPECT_THROW(parse_edge_list(""), ContractViolation);
  EXPECT_THROW(parse_edge_list("junk"), ContractViolation);
}

TEST(EdgeList, RejectsOutOfRangeVertices) {
  EXPECT_THROW(parse_edge_list("2 1\n0 5\n"), ContractViolation);
}

TEST(Dot, ContainsAllEdgesAndName) {
  const Graph g = path_graph(3);
  const std::string dot = to_dot(g, {.name = "P3"});
  EXPECT_NE(dot.find("graph P3 {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

TEST(Dot, HighlightsRequestedElements) {
  const Graph g = path_graph(3);
  DotOptions opts;
  opts.highlight_vertices = {1};
  opts.highlight_edges = {0};
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("penwidth"), std::string::npos);
}

TEST(Dot, RejectsOutOfRangeHighlightEdge) {
  const Graph g = path_graph(3);
  DotOptions opts;
  opts.highlight_edges = {9};
  EXPECT_THROW(to_dot(g, opts), ContractViolation);
}

}  // namespace
}  // namespace defender::graph
