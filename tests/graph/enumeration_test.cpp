#include "graph/enumeration.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(AllConnectedGraphs, CountsMatchTheCatalogue) {
  // OEIS A001349 (connected graphs up to isomorphism).
  EXPECT_EQ(all_connected_graphs(2).size(), 1u);
  EXPECT_EQ(all_connected_graphs(3).size(), 2u);
  EXPECT_EQ(all_connected_graphs(4).size(), 6u);
  EXPECT_EQ(all_connected_graphs(5).size(), 21u);
  EXPECT_EQ(all_connected_graphs(6).size(), 112u);
}

TEST(AllConnectedGraphs, EveryResultIsConnectedWithNVertices) {
  for (std::size_t n = 2; n <= 5; ++n) {
    for (const Graph& g : all_connected_graphs(n)) {
      EXPECT_EQ(g.num_vertices(), n);
      EXPECT_TRUE(is_connected(g));
      EXPECT_FALSE(g.has_isolated_vertex());
    }
  }
}

TEST(AllConnectedGraphs, PairwiseNonIsomorphic) {
  const auto graphs = all_connected_graphs(5);
  std::set<std::uint32_t> masks;
  for (const Graph& g : graphs) masks.insert(canonical_mask(g));
  EXPECT_EQ(masks.size(), graphs.size());
}

TEST(CanonicalMask, InvariantUnderRelabelling) {
  // The same path with two different labellings.
  const Graph a = GraphBuilder(4).add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).build();
  const Graph b = GraphBuilder(4).add_edge(2, 0).add_edge(0, 3).add_edge(3, 1).build();
  EXPECT_EQ(canonical_mask(a), canonical_mask(b));
}

TEST(CanonicalMask, SeparatesNonIsomorphicGraphs) {
  EXPECT_NE(canonical_mask(path_graph(4)), canonical_mask(star_graph(3)));
  EXPECT_NE(canonical_mask(cycle_graph(4)), canonical_mask(path_graph(4)));
}

TEST(CanonicalMask, KnownFamiliesAppearExactlyOnce) {
  const auto graphs = all_connected_graphs(4);
  std::set<std::uint32_t> masks;
  for (const Graph& g : graphs) masks.insert(canonical_mask(g));
  // P4, star, cycle, K4, triangle+pendant, diamond = the 6 classes.
  EXPECT_TRUE(masks.count(canonical_mask(path_graph(4))));
  EXPECT_TRUE(masks.count(canonical_mask(star_graph(3))));
  EXPECT_TRUE(masks.count(canonical_mask(cycle_graph(4))));
  EXPECT_TRUE(masks.count(canonical_mask(complete_graph(4))));
}

TEST(CanonicalMask, RejectsLargeGraphs) {
  EXPECT_THROW(canonical_mask(path_graph(7)), ContractViolation);
  EXPECT_THROW(all_connected_graphs(7), ContractViolation);
  EXPECT_THROW(all_connected_graphs(1), ContractViolation);
}

}  // namespace
}  // namespace defender::graph
