#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace defender::graph {
namespace {

Graph triangle() {
  return GraphBuilder(3).add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).build();
}

TEST(Edge, NormalizationAndOther) {
  const Edge e{1, 4};
  EXPECT_EQ(e.other(1), 4u);
  EXPECT_EQ(e.other(4), 1u);
  EXPECT_THROW(e.other(2), ContractViolation);
}

TEST(GraphBuilder, NormalizesEndpointOrder) {
  const Graph g = GraphBuilder(3).add_edge(2, 0).build();
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 2u);
}

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), ContractViolation);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoints) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), ContractViolation);
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  const Graph g =
      GraphBuilder(3).add_edge(0, 1).add_edge(1, 0).add_edge(0, 1).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, RejectsZeroVertices) {
  EXPECT_THROW(GraphBuilder(0), ContractViolation);
}

TEST(Graph, DefaultConstructedIsEmpty) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, CountsAndDegrees) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Graph, EdgesAreSortedAndIndexedById) {
  const Graph g = triangle();
  auto edges = g.edges();
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    EXPECT_EQ(g.edge(id), edges[id]);
}

TEST(Graph, NeighborsAreSortedWithCorrectEdgeIds) {
  const Graph g = triangle();
  for (Vertex v = 0; v < 3; ++v) {
    auto adj = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(
        adj.begin(), adj.end(),
        [](const Incidence& a, const Incidence& b) { return a.to < b.to; }));
    for (const Incidence& inc : adj) {
      const Edge& e = g.edge(inc.edge);
      EXPECT_TRUE((e.u == v && e.v == inc.to) || (e.v == v && e.u == inc.to));
    }
  }
}

TEST(Graph, EdgeIdLookup) {
  const Graph g = triangle();
  EXPECT_TRUE(g.edge_id(0, 1).has_value());
  EXPECT_TRUE(g.edge_id(1, 0).has_value());
  EXPECT_EQ(g.edge_id(0, 1), g.edge_id(1, 0));
  EXPECT_FALSE(g.edge_id(0, 0).has_value());
}

TEST(Graph, EdgeIdAbsentForNonEdge) {
  const Graph g = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build();
  EXPECT_FALSE(g.edge_id(0, 2).has_value());
  EXPECT_FALSE(g.edge_id(1, 3).has_value());
}

TEST(Graph, HasEdgeMatchesEdgeId) {
  const Graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 2));
  const Graph h = GraphBuilder(3).add_edge(0, 1).build();
  EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(Graph, DetectsIsolatedVertices) {
  const Graph g = GraphBuilder(3).add_edge(0, 1).build();
  EXPECT_TRUE(g.has_isolated_vertex());
  EXPECT_FALSE(triangle().has_isolated_vertex());
}

TEST(Graph, OutOfRangeAccessThrows) {
  const Graph g = triangle();
  EXPECT_THROW(g.edge(3), ContractViolation);
  EXPECT_THROW(g.degree(3), ContractViolation);
  EXPECT_THROW(g.neighbors(5), ContractViolation);
  EXPECT_THROW(g.edge_id(0, 9), ContractViolation);
}

TEST(Graph, ValueEquality) {
  EXPECT_EQ(triangle(), triangle());
  const Graph h = GraphBuilder(3).add_edge(0, 1).add_edge(1, 2).build();
  EXPECT_NE(triangle(), h);
}

TEST(Graph, LargeStarAdjacencyConsistent) {
  constexpr std::size_t kLeaves = 1000;
  GraphBuilder b(kLeaves + 1);
  for (Vertex i = 1; i <= kLeaves; ++i) b.add_edge(0, i);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), kLeaves);
  for (Vertex i = 1; i <= kLeaves; ++i) {
    EXPECT_EQ(g.degree(i), 1u);
    EXPECT_EQ(g.neighbors(i).front().to, 0u);
  }
}

}  // namespace
}  // namespace defender::graph
