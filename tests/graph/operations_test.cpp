#include "graph/operations.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(Complement, EdgeCountsAreComplementary) {
  const Graph g = cycle_graph(6);
  const Graph c = complement(g);
  EXPECT_EQ(g.num_edges() + c.num_edges(), 6u * 5u / 2);
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = u + 1; v < 6; ++v)
      EXPECT_NE(g.has_edge(u, v), c.has_edge(u, v));
}

TEST(Complement, CompleteGraphBecomesEdgeless) {
  EXPECT_EQ(complement(complete_graph(5)).num_edges(), 0u);
}

TEST(Complement, IsAnInvolution) {
  const Graph g = petersen_graph();
  EXPECT_EQ(complement(complement(g)), g);
}

TEST(Complement, PetersenComplementIsKneserComplement) {
  // Petersen's complement is the Johnson graph J(5,2): 6-regular.
  const Graph c = complement(petersen_graph());
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(c.degree(v), 6u);
}

TEST(LineGraph, PathBecomesShorterPath) {
  // L(P_n) = P_{n-1}.
  const Graph l = line_graph(path_graph(5));
  EXPECT_EQ(l, path_graph(4));
}

TEST(LineGraph, CycleIsInvariant) {
  // L(C_n) = C_n.
  const Graph l = line_graph(cycle_graph(7));
  EXPECT_EQ(l.num_vertices(), 7u);
  EXPECT_EQ(l.num_edges(), 7u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(l.degree(v), 2u);
  EXPECT_TRUE(is_connected(l));
}

TEST(LineGraph, StarBecomesComplete) {
  // L(K_{1,n}) = K_n.
  EXPECT_EQ(line_graph(star_graph(5)), complete_graph(5));
}

TEST(LineGraph, EdgeCountMatchesDegreeSum) {
  // |E(L(G))| = sum over v of C(deg(v), 2).
  const Graph g = petersen_graph();
  const Graph l = line_graph(g);
  std::size_t expected = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    expected += g.degree(v) * (g.degree(v) - 1) / 2;
  EXPECT_EQ(l.num_edges(), expected);
}

TEST(CartesianProduct, K2SquaredIsC4) {
  const Graph k2 = complete_graph(2);
  const Graph prod = cartesian_product(k2, k2);
  EXPECT_EQ(prod.num_vertices(), 4u);
  EXPECT_EQ(prod.num_edges(), 4u);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(prod.degree(v), 2u);
}

TEST(CartesianProduct, PathsMakeGrids) {
  EXPECT_EQ(cartesian_product(path_graph(3), path_graph(4)),
            grid_graph(3, 4));
}

TEST(CartesianProduct, HypercubeIsIteratedK2Product) {
  const Graph k2 = complete_graph(2);
  Graph q = k2;
  for (int i = 1; i < 4; ++i) q = cartesian_product(q, k2);
  EXPECT_EQ(q.num_vertices(), 16u);
  EXPECT_EQ(q.num_edges(), 32u);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(q.degree(v), 4u);
  EXPECT_TRUE(is_bipartite(q));
}

TEST(CartesianProduct, DegreesAdd) {
  const Graph g = cycle_graph(5);
  const Graph h = path_graph(3);
  const Graph prod = cartesian_product(g, h);
  // deg((a, b)) = deg_G(a) + deg_H(b).
  for (Vertex a = 0; a < 5; ++a)
    for (Vertex b = 0; b < 3; ++b)
      EXPECT_EQ(prod.degree(static_cast<Vertex>(a * 3 + b)),
                g.degree(a) + h.degree(b));
}

}  // namespace
}  // namespace defender::graph
