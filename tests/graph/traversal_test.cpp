#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(BfsDistances, PathDistancesAreIndices) {
  const Graph g = path_graph(6);
  const auto dist = bfs_distances(g, 0);
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, UnreachableMarked) {
  const Graph g = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsDistances, CycleWrapsAround) {
  const auto dist = bfs_distances(cycle_graph(8), 0);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[7], 1u);
}

TEST(ConnectedComponents, CountsAndLabels) {
  const Graph g =
      GraphBuilder(6).add_edge(0, 1).add_edge(2, 3).add_edge(3, 4).build();
  const auto comp = connected_components(g);
  EXPECT_EQ(num_components(g), 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[5]);
}

TEST(ConnectedComponents, SingleComponentForConnectedFamilies) {
  EXPECT_EQ(num_components(petersen_graph()), 1u);
  EXPECT_EQ(num_components(grid_graph(3, 3)), 1u);
}

TEST(Eccentricity, PathEndpoints) {
  const Graph g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(Eccentricity, ThrowsOnDisconnected) {
  const Graph g = GraphBuilder(3).add_edge(0, 1).build();
  EXPECT_THROW(eccentricity(g, 0), ContractViolation);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path_graph(9)), 8u);
  EXPECT_EQ(diameter(cycle_graph(10)), 5u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
  EXPECT_EQ(diameter(petersen_graph()), 2u);
  EXPECT_EQ(diameter(hypercube_graph(4)), 4u);
}

TEST(IsSimplePath, AcceptsAndRejects) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(is_simple_path(g, std::vector<Vertex>{0, 1, 2, 3}));
  EXPECT_TRUE(is_simple_path(g, std::vector<Vertex>{2}));
  EXPECT_TRUE(is_simple_path(g, std::vector<Vertex>{}));
  EXPECT_FALSE(is_simple_path(g, std::vector<Vertex>{0, 2}));     // not adjacent
  EXPECT_FALSE(is_simple_path(g, std::vector<Vertex>{0, 1, 0}));  // repeat
  EXPECT_FALSE(is_simple_path(g, std::vector<Vertex>{0, 9}));     // range
}

TEST(PathEdges, ReturnsConsecutiveEdgeIds) {
  const Graph g = path_graph(4);
  const auto edges = path_edges(g, std::vector<Vertex>{1, 2, 3});
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(g.edge(edges[0]), (Edge{1, 2}));
  EXPECT_EQ(g.edge(edges[1]), (Edge{2, 3}));
  EXPECT_THROW(path_edges(g, std::vector<Vertex>{0, 2}), ContractViolation);
}

}  // namespace
}  // namespace defender::graph
