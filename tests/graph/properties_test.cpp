#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(IsConnected, PositiveAndNegativeCases) {
  EXPECT_TRUE(is_connected(path_graph(6)));
  const Graph split = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build();
  EXPECT_FALSE(is_connected(split));
}

TEST(Bipartition, ColoursEveryEdgeAcross) {
  const Graph g = grid_graph(4, 5);
  auto color = bipartition(g);
  ASSERT_TRUE(color.has_value());
  for (const Edge& e : g.edges()) EXPECT_NE((*color)[e.u], (*color)[e.v]);
}

TEST(Bipartition, RejectsOddCycle) {
  EXPECT_FALSE(bipartition(cycle_graph(5)).has_value());
  EXPECT_FALSE(bipartition(complete_graph(3)).has_value());
}

TEST(Bipartition, HandlesDisconnectedComponents) {
  const Graph g = GraphBuilder(5).add_edge(0, 1).add_edge(3, 4).build();
  auto color = bipartition(g);
  ASSERT_TRUE(color.has_value());
  EXPECT_NE((*color)[0], (*color)[1]);
  EXPECT_NE((*color)[3], (*color)[4]);
}

TEST(IndependentSet, PositiveAndNegative) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, std::vector<Vertex>{0, 1}));
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{}));
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{3}));
}

TEST(VertexCover, PositiveAndNegative) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(is_vertex_cover(g, std::vector<Vertex>{0, 2, 4}));
  EXPECT_FALSE(is_vertex_cover(g, std::vector<Vertex>{0, 3}));
  EXPECT_TRUE(is_vertex_cover(g, std::vector<Vertex>{0, 1, 2, 3, 4, 5}));
}

TEST(VertexCover, ComplementOfIndependentSetIsCover) {
  const Graph g = petersen_graph();
  // {0, 2, 8, 9} is independent in the Petersen graph.
  const VertexSet is{0, 2, 8, 9};
  ASSERT_TRUE(is_independent_set(g, is));
  VertexSet vc;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (!contains(is, v)) vc.push_back(v);
  EXPECT_TRUE(is_vertex_cover(g, vc));
}

TEST(CoversEdgeSet, ChecksOnlyTheGivenEdges) {
  const Graph g = path_graph(4);  // edges 0-1, 1-2, 2-3
  const EdgeSet middle{*g.edge_id(1, 2)};
  EXPECT_TRUE(covers_edge_set(g, std::vector<Vertex>{1}, middle));
  EXPECT_TRUE(covers_edge_set(g, std::vector<Vertex>{2}, middle));
  EXPECT_FALSE(covers_edge_set(g, std::vector<Vertex>{0}, middle));
}

TEST(EdgeCover, FullAndPartial) {
  const Graph g = path_graph(4);
  const EdgeSet ends{*g.edge_id(0, 1), *g.edge_id(2, 3)};
  EXPECT_TRUE(is_edge_cover(g, ends));
  const EdgeSet partial{*g.edge_id(0, 1)};
  EXPECT_FALSE(is_edge_cover(g, partial));
}

TEST(EndpointsOf, SortedDistinctUnion) {
  const Graph g = path_graph(4);
  const EdgeSet edges{*g.edge_id(0, 1), *g.edge_id(1, 2)};
  EXPECT_EQ(endpoints_of(g, edges), (VertexSet{0, 1, 2}));
}

TEST(Neighborhood, UnionOfAdjacency) {
  const Graph g = star_graph(4);
  EXPECT_EQ(neighborhood(g, std::vector<Vertex>{0}), (VertexSet{1, 2, 3, 4}));
  EXPECT_EQ(neighborhood(g, std::vector<Vertex>{1, 2}), (VertexSet{0}));
}

TEST(ExpanderBruteForce, TriangleCounterexample) {
  // DESIGN.md interpretation note 1: with IS = {0}, VC = {1, 2} on a
  // triangle, expansion *into the complement* fails (|N({1,2}) \ VC| = 1).
  const Graph g = complete_graph(3);
  EXPECT_FALSE(
      is_expander_into_complement_bruteforce(g, std::vector<Vertex>{1, 2}));
}

TEST(ExpanderBruteForce, StarCentreExpandsIntoLeaves) {
  const Graph g = star_graph(5);
  EXPECT_TRUE(
      is_expander_into_complement_bruteforce(g, std::vector<Vertex>{0}));
}

TEST(ExpanderBruteForce, EvenCycleAlternatingCover) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(is_expander_into_complement_bruteforce(
      g, std::vector<Vertex>{1, 3, 5}));
}

TEST(ExpanderBruteForce, FailsWhenSetTooPacked) {
  // K_{1,3}: leaves cannot expand into the single hub.
  const Graph g = star_graph(3);
  EXPECT_FALSE(is_expander_into_complement_bruteforce(
      g, std::vector<Vertex>{1, 2, 3}));
}

TEST(Normalize, SortsAndDeduplicates) {
  VertexSet s{3, 1, 3, 2, 1};
  normalize(s);
  EXPECT_EQ(s, (VertexSet{1, 2, 3}));
}

TEST(Contains, BinarySearchSemantics) {
  const VertexSet s{1, 4, 9};
  EXPECT_TRUE(contains(s, 4));
  EXPECT_FALSE(contains(s, 5));
  EXPECT_FALSE(contains({}, 0));
}

}  // namespace
}  // namespace defender::graph
