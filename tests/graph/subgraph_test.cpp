#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(EdgeSubgraph, MaterializesGSubT) {
  const Graph g = cycle_graph(6);
  const EdgeSet edges{*g.edge_id(0, 1), *g.edge_id(2, 3)};
  const EdgeSubgraph sub = edge_subgraph(g, edges);
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.to_parent, (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(EdgeSubgraph, MappingRoundTrips) {
  const Graph g = path_graph(6);
  const EdgeSet edges{*g.edge_id(3, 4), *g.edge_id(4, 5)};
  const EdgeSubgraph sub = edge_subgraph(g, edges);
  for (Vertex parent : sub.to_parent)
    EXPECT_EQ(sub.to_parent[sub.to_sub(parent)], parent);
  EXPECT_TRUE(sub.contains_parent(4));
  EXPECT_FALSE(sub.contains_parent(0));
  EXPECT_THROW(sub.to_sub(0), ContractViolation);
}

TEST(EdgeSubgraph, PreservesAdjacencyStructure) {
  const Graph g = complete_graph(5);
  const EdgeSet edges{*g.edge_id(0, 1), *g.edge_id(1, 2), *g.edge_id(0, 2)};
  const EdgeSubgraph sub = edge_subgraph(g, edges);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(sub.graph.degree(v), 2u);
}

TEST(EdgeSubgraph, RejectsEmptyEdgeSet) {
  const Graph g = path_graph(3);
  EXPECT_THROW(edge_subgraph(g, EdgeSet{}), ContractViolation);
}

TEST(EdgeSubgraph, SingleEdge) {
  const Graph g = path_graph(3);
  const EdgeSubgraph sub = edge_subgraph(g, EdgeSet{0});
  EXPECT_EQ(sub.graph.num_vertices(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);
}

}  // namespace
}  // namespace defender::graph
