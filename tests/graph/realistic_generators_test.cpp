#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/traversal.hpp"
#include "util/assert.hpp"

namespace defender::graph {
namespace {

TEST(BarabasiAlbert, SizesAndConnectivity) {
  util::Rng rng(1);
  const Graph g = barabasi_albert(100, 2, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  // Seed star: 2 edges; 97 newcomers x 2 attachments.
  EXPECT_EQ(g.num_edges(), 2u + 97u * 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(g.has_isolated_vertex());
}

TEST(BarabasiAlbert, ProducesHubs) {
  util::Rng rng(2);
  const Graph g = barabasi_albert(300, 2, rng);
  std::size_t max_degree = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GT(max_degree, 15u);
}

TEST(BarabasiAlbert, MinimumDegreeIsAttach) {
  util::Rng rng(3);
  const Graph g = barabasi_albert(80, 3, rng);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_GE(g.degree(v), 3u);
}

TEST(BarabasiAlbert, ValidatesParameters) {
  util::Rng rng(4);
  EXPECT_THROW(barabasi_albert(3, 3, rng), ContractViolation);
  EXPECT_THROW(barabasi_albert(5, 0, rng), ContractViolation);
}

TEST(WattsStrogatz, ZeroBetaIsTheRingLattice) {
  util::Rng rng(5);
  const Graph g = watts_strogatz(20, 4, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 40u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(WattsStrogatz, RewiringPreservesEdgeCountAndMinDegree) {
  util::Rng rng(6);
  const Graph g = watts_strogatz(60, 6, 0.3, rng);
  EXPECT_LE(g.num_edges(), 180u);       // duplicates can only shrink it
  EXPECT_GE(g.num_edges(), 170u);       // but rarely by much
  for (Vertex v = 0; v < 60; ++v) EXPECT_GE(g.degree(v), 3u);
  EXPECT_FALSE(g.has_isolated_vertex());
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  util::Rng rng(7);
  const Graph lattice = watts_strogatz(64, 4, 0.0, rng);
  const Graph small_world = watts_strogatz(64, 4, 0.3, rng);
  if (is_connected(small_world)) {
    EXPECT_LT(diameter(small_world), diameter(lattice));
  }
}

TEST(WattsStrogatz, ValidatesParameters) {
  util::Rng rng(8);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), ContractViolation);  // odd
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), ContractViolation);   // k >= n
  EXPECT_THROW(watts_strogatz(10, 4, 1.5, rng), ContractViolation);  // beta
}

}  // namespace
}  // namespace defender::graph
