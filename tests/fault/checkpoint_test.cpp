// Checkpoint/resume contract tests:
//
//  * the checkpoint text format round-trips bit-exactly (%.17g doubles)
//    and matches a golden snapshot committed in tests/data/ — any format
//    drift fails here and forces a version bump;
//  * unknown versions and hostile input are rejected as kInvalidInput with
//    a line number, never a crash;
//  * THE tentpole guarantee: killing any of the five budgeted iterative
//    solvers at iteration i, serializing the checkpoint through its text
//    form, and resuming reproduces the uninterrupted run's trajectory —
//    same final status, same iteration count, an equal-or-tighter
//    certified bracket, bit-identical state vectors;
//  * resuming with the wrong solver kind, game shape, version, or Hedge
//    horizon is rejected as kInvalidInput instead of corrupting a solve.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/cancel.hpp"
#include "core/checkpoint.hpp"
#include "core/double_oracle.hpp"
#include "core/game.hpp"
#include "core/status.hpp"
#include "core/zero_sum.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "lp/matrix_game.hpp"
#include "lp/simplex_reference.hpp"
#include "sim/fictitious_play.hpp"
#include "sim/multiplicative_weights.hpp"

namespace defender {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

core::SolverCheckpoint golden_checkpoint() {
  core::SolverCheckpoint cp;
  cp.solver = core::SolverKind::kHedge;
  cp.n = 5;
  cp.m = 6;
  cp.k = 2;
  cp.iterations = 7;
  cp.horizon = 100;
  cp.next_checkpoint = 16;
  cp.best_lower = 0.25;
  cp.best_upper = 0.5;
  cp.any_truncated = true;
  cp.tuples = {{0, 1}, {2, 3}};
  cp.vertices = {0, 4};
  cp.attacker_history = {0.125, -1.5, 2};
  cp.defender_history = {0.5, 0.75};
  cp.average_history = {1, 0};
  return cp;
}

void expect_checkpoints_equal(const core::SolverCheckpoint& a,
                              const core::SolverCheckpoint& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.next_checkpoint, b.next_checkpoint);
  EXPECT_EQ(a.best_lower, b.best_lower);
  EXPECT_EQ(a.best_upper, b.best_upper);
  EXPECT_EQ(a.any_truncated, b.any_truncated);
  EXPECT_EQ(a.tuples, b.tuples);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.attacker_history, b.attacker_history);
  EXPECT_EQ(a.defender_history, b.defender_history);
  EXPECT_EQ(a.average_history, b.average_history);
}

// ---------------------------------------------------------------------------
// Format round trip + golden stability (satellite: format stability).

TEST(CheckpointText, RoundTripsBitExactly) {
  core::SolverCheckpoint cp = golden_checkpoint();
  cp.best_lower = 1.0 / 3.0;  // not exactly representable in decimal
  cp.best_upper = 0.1;
  cp.attacker_history = {1.0 / 7.0, -2.0 / 3.0, 1e-300, 1e300};
  const auto parsed = core::try_parse_checkpoint(core::to_text(cp));
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  expect_checkpoints_equal(parsed.result, cp);
}

TEST(CheckpointText, GoldenSnapshotIsStable) {
  const std::string golden_path =
      std::string(DEFENDER_TEST_DATA_DIR) + "/checkpoint_v1.golden.txt";
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty());

  // Serializer must reproduce the committed snapshot byte for byte — any
  // drift in the format is a breaking change and requires a version bump.
  EXPECT_EQ(core::to_text(golden_checkpoint()), golden);

  // And the parser must accept it and recover the exact struct.
  const auto parsed = core::try_parse_checkpoint(golden);
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  expect_checkpoints_equal(parsed.result, golden_checkpoint());
}

TEST(CheckpointText, UnknownVersionsAreRejected) {
  core::SolverCheckpoint cp = golden_checkpoint();
  cp.version = core::kSolverCheckpointVersion + 1;  // a future format
  const auto parsed = core::try_parse_checkpoint(core::to_text(cp));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status.code, StatusCode::kInvalidInput);
  EXPECT_NE(parsed.status.message.find("unsupported checkpoint version"),
            std::string::npos)
      << parsed.status.message;
}

TEST(CheckpointText, RejectsHostileInputWithLineNumbers) {
  const auto expect_invalid = [](const std::string& text) {
    const auto parsed = core::try_parse_checkpoint(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status.code, StatusCode::kInvalidInput);
    EXPECT_NE(parsed.status.message.find("checkpoint line"),
              std::string::npos)
        << parsed.status.message;
  };
  expect_invalid("");
  expect_invalid("not-a-checkpoint\n");
  expect_invalid("defender-checkpoint v1\n");  // truncated after header
  expect_invalid(
      "defender-checkpoint v1\nsolver nonsense-solver\n");
  expect_invalid(
      "defender-checkpoint v1\nsolver hedge\ngame 5 6\n");  // short line
  expect_invalid(
      "defender-checkpoint v1\nsolver hedge\ngame 5 6 2\n"
      "progress 7 100 16 1\nbracket nan 0.5\n");  // non-finite bound
  expect_invalid(
      "defender-checkpoint v1\nsolver hedge\ngame 5 6 2\n"
      "progress 7 100 16 1\nbracket 0.25 0.5\n"
      "tuples 99999999999999\n");  // allocation-bomb count
  expect_invalid(
      "defender-checkpoint v1\nsolver hedge\ngame 5 6 2\n"
      "progress 7 100 16 1\nbracket 0.25 0.5\n"
      "tuples 2\ntuple 2 0 1\n");  // truncated tuple list
  // Golden text with the trailer removed.
  std::string no_end = core::to_text(golden_checkpoint());
  no_end.erase(no_end.rfind("end"));
  expect_invalid(no_end);
}

// ---------------------------------------------------------------------------
// Kill-at-iteration-i + resume == uninterrupted run, for all five solver
// families. Every resume passes through the TEXT form, proving the file
// format carries the complete loop state.

core::SolverCheckpoint through_text(const core::SolverCheckpoint& cp) {
  const auto parsed = core::try_parse_checkpoint(core::to_text(cp));
  EXPECT_TRUE(parsed.ok()) << parsed.status.to_string();
  return parsed.result;
}

TEST(KillResume, DoubleOracleReproducesTheUninterruptedRun) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);

  const auto full = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(100), core::ResumeHooks{});
  ASSERT_TRUE(full.ok()) << full.status.to_string();
  ASSERT_GT(full.result.iterations, 2u)
      << "instance too easy to exercise a mid-run kill";

  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto killed = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(2), capture);
  ASSERT_EQ(killed.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(cp.solver, core::SolverKind::kDoubleOracle);
  EXPECT_EQ(cp.iterations, 2u);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(98), resume);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.iterations, full.result.iterations);
  EXPECT_EQ(resumed.result.value, full.result.value);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
  // Equal-or-tighter certified bracket (equal, by determinism).
  EXPECT_GE(resumed.result.lower_bound, full.result.lower_bound);
  EXPECT_LE(resumed.result.upper_bound, full.result.upper_bound);
  EXPECT_EQ(resumed.result.defender_set_size, full.result.defender_set_size);
  EXPECT_EQ(resumed.result.attacker_set_size, full.result.attacker_set_size);
}

TEST(KillResume, WeightedDoubleOracleReproducesTheUninterruptedRun) {
  const core::TupleGame game(graph::grid_graph(3, 3), 2, 1);
  std::vector<double> weights(game.graph().num_vertices());
  for (std::size_t v = 0; v < weights.size(); ++v)
    weights[v] = 1.0 + 0.25 * static_cast<double>(v % 4);

  const auto full = core::solve_weighted_double_oracle_resumable(
      game, weights, 1e-9, SolveBudget::iterations(100), core::ResumeHooks{});
  ASSERT_TRUE(full.ok()) << full.status.to_string();
  ASSERT_GT(full.result.iterations, 2u);

  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto killed = core::solve_weighted_double_oracle_resumable(
      game, weights, 1e-9, SolveBudget::iterations(2), capture);
  ASSERT_EQ(killed.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(cp.solver, core::SolverKind::kWeightedDoubleOracle);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = core::solve_weighted_double_oracle_resumable(
      game, weights, 1e-9, SolveBudget::iterations(98), resume);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.iterations, full.result.iterations);
  EXPECT_EQ(resumed.result.value, full.result.value);
  EXPECT_GE(resumed.result.lower_bound, full.result.lower_bound);
  EXPECT_LE(resumed.result.upper_bound, full.result.upper_bound);
}

TEST(KillResume, FictitiousPlayReproducesTheUninterruptedRun) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);
  // An unreachably tight gap makes the 120-round budget the binding stop,
  // so the uninterrupted final status (kIterationLimit) must be reproduced.
  const double target = 1e-9;

  const auto full = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(120), target, core::ResumeHooks{});
  ASSERT_EQ(full.status.code, StatusCode::kIterationLimit);
  ASSERT_EQ(full.result.rounds, 120u);

  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto killed = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(35), target, capture);
  ASSERT_EQ(killed.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(cp.solver, core::SolverKind::kFictitiousPlay);
  EXPECT_EQ(cp.iterations, 35u);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(85), target, resume);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
  EXPECT_EQ(resumed.result.attacker_frequency,
            full.result.attacker_frequency);
  EXPECT_EQ(resumed.result.defender_hit_frequency,
            full.result.defender_hit_frequency);
}

TEST(KillResume, WeightedFictitiousPlayReproducesTheUninterruptedRun) {
  const core::TupleGame game(graph::grid_graph(3, 3), 2, 1);
  std::vector<double> weights(game.graph().num_vertices());
  for (std::size_t v = 0; v < weights.size(); ++v)
    weights[v] = 1.0 + 0.5 * static_cast<double>(v % 3);
  const double target = 1e-9;

  const auto full = sim::weighted_fictitious_play_resumable(
      game, weights, SolveBudget::iterations(90), target,
      core::ResumeHooks{});
  ASSERT_EQ(full.status.code, StatusCode::kIterationLimit);

  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto killed = sim::weighted_fictitious_play_resumable(
      game, weights, SolveBudget::iterations(27), target, capture);
  ASSERT_EQ(killed.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(cp.solver, core::SolverKind::kWeightedFictitiousPlay);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = sim::weighted_fictitious_play_resumable(
      game, weights, SolveBudget::iterations(63), target, resume);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
  EXPECT_EQ(resumed.result.attacker_frequency,
            full.result.attacker_frequency);
}

TEST(KillResume, HedgeReproducesTheUninterruptedRun) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);
  const std::size_t horizon = 100;
  const double target = 1e-9;

  // Uninterrupted: one segment covering the whole horizon.
  const auto full = sim::hedge_dynamics_resumable(
      game, horizon, SolveBudget::unlimited_budget(), target,
      core::ResumeHooks{});
  ASSERT_EQ(full.status.code, StatusCode::kIterationLimit);
  ASSERT_EQ(full.result.rounds, horizon);

  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto killed = sim::hedge_dynamics_resumable(
      game, horizon, SolveBudget::iterations(30), target, capture);
  ASSERT_EQ(killed.status.code, StatusCode::kIterationLimit);
  EXPECT_EQ(cp.solver, core::SolverKind::kHedge);
  EXPECT_EQ(cp.iterations, 30u);
  EXPECT_EQ(cp.horizon, horizon);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  // Same horizon => same eta => the trajectory continues bit-exactly.
  const auto resumed = sim::hedge_dynamics_resumable(
      game, horizon, SolveBudget::unlimited_budget(), target, resume);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
  EXPECT_EQ(resumed.result.attacker_average, full.result.attacker_average);
}

// A second kill mid-way through the RESUMED segment: two kills, two
// resumes, still the same final answer.
TEST(KillResume, DoubleKillStillConverges) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);
  const auto full = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(90), 1e-9, core::ResumeHooks{});

  core::SolverCheckpoint cp1, cp2;
  core::ResumeHooks h1;
  h1.capture = &cp1;
  (void)sim::fictitious_play_resumable(game, SolveBudget::iterations(20),
                                       1e-9, h1);
  const core::SolverCheckpoint r1 = through_text(cp1);
  core::ResumeHooks h2;
  h2.resume = &r1;
  h2.capture = &cp2;
  (void)sim::fictitious_play_resumable(game, SolveBudget::iterations(40),
                                       1e-9, h2);
  EXPECT_EQ(cp2.iterations, 60u);
  const core::SolverCheckpoint r2 = through_text(cp2);
  core::ResumeHooks h3;
  h3.resume = &r2;
  const auto resumed = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(30), 1e-9, h3);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.attacker_frequency,
            full.result.attacker_frequency);
}

// ---------------------------------------------------------------------------
// Resume validation: every mismatch is kInvalidInput, never a corrupted
// solve or a crash.

TEST(ResumeValidation, MismatchesAreRejectedAsInvalidInput) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  (void)core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(2), capture);

  // Wrong solver family.
  core::ResumeHooks wrong_kind;
  wrong_kind.resume = &cp;
  const auto fp = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(10), 0.0, wrong_kind);
  EXPECT_EQ(fp.status.code, StatusCode::kInvalidInput);

  // Wrong game shape.
  const core::TupleGame other(graph::grid_graph(3, 3), 2, 1);
  core::ResumeHooks wrong_shape;
  wrong_shape.resume = &cp;
  const auto shape = core::solve_double_oracle_resumable(
      other, 1e-9, SolveBudget::iterations(10), wrong_shape);
  EXPECT_EQ(shape.status.code, StatusCode::kInvalidInput);

  // Future version (a build older than the checkpoint's writer).
  core::SolverCheckpoint future = cp;
  future.version = core::kSolverCheckpointVersion + 1;
  core::ResumeHooks wrong_version;
  wrong_version.resume = &future;
  const auto ver = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(10), wrong_version);
  EXPECT_EQ(ver.status.code, StatusCode::kInvalidInput);

  // Hedge horizon mismatch (eta would silently change).
  const core::TupleGame hg(graph::grid_graph(3, 4), 2, 1);
  core::SolverCheckpoint hcp;
  core::ResumeHooks hcap;
  hcap.capture = &hcp;
  (void)sim::hedge_dynamics_resumable(hg, 100, SolveBudget::iterations(10),
                                      1e-9, hcap);
  core::ResumeHooks hresume;
  hresume.resume = &hcp;
  const auto mismatch = sim::hedge_dynamics_resumable(
      hg, 50, SolveBudget::iterations(10), 1e-9, hresume);
  EXPECT_EQ(mismatch.status.code, StatusCode::kInvalidInput);
}

// ---------------------------------------------------------------------------
// Cancellation + resume: cancelling any of the five solvers mid-run via a
// CancelToken (the engine watchdog's kill path) yields kCancelled with a
// resumable checkpoint; resuming without the token reproduces the
// uninterrupted run's status and value bit for bit. Tokens count POLLS,
// and only the outer solver loops poll, so cancel_after_polls maps
// deterministically onto outer iterations.

/// One budget with a cancel token attached.
SolveBudget cancellable(SolveBudget budget, CancelToken* token) {
  budget.cancel = token;
  return budget;
}

TEST(CancelResume, DoubleOracleResumesAfterCancellation) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  const auto full = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(100), core::ResumeHooks{});
  ASSERT_TRUE(full.ok()) << full.status.to_string();
  ASSERT_GT(full.result.iterations, 3u);

  for (std::uint64_t kill_at : {std::uint64_t{1}, std::uint64_t{3}}) {
    CancelToken token;
    token.cancel_after_polls(kill_at);
    core::SolverCheckpoint cp;
    core::ResumeHooks capture;
    capture.capture = &cp;
    const auto cancelled = core::solve_double_oracle_resumable(
        game, 1e-9, cancellable(SolveBudget::iterations(100), &token),
        capture);
    ASSERT_EQ(cancelled.status.code, StatusCode::kCancelled)
        << cancelled.status.to_string();
    EXPECT_TRUE(token.cancelled());
    // A cancelled solve still certifies a sound (possibly loose) bracket.
    EXPECT_LE(cancelled.result.lower_bound, full.result.value + 1e-12);
    EXPECT_GE(cancelled.result.upper_bound, full.result.value - 1e-12);

    const core::SolverCheckpoint restored = through_text(cp);
    core::ResumeHooks resume;
    resume.resume = &restored;
    const auto resumed = core::solve_double_oracle_resumable(
        game, 1e-9, SolveBudget::iterations(100), resume);
    EXPECT_EQ(resumed.status.code, full.status.code);
    EXPECT_EQ(resumed.result.iterations, full.result.iterations);
    EXPECT_EQ(resumed.result.value, full.result.value);
    EXPECT_EQ(resumed.result.lower_bound, full.result.lower_bound);
    EXPECT_EQ(resumed.result.upper_bound, full.result.upper_bound);
  }
}

TEST(CancelResume, WeightedDoubleOracleResumesAfterCancellation) {
  const core::TupleGame game(graph::grid_graph(3, 3), 2, 1);
  std::vector<double> weights(game.graph().num_vertices());
  for (std::size_t v = 0; v < weights.size(); ++v)
    weights[v] = 1.0 + 0.25 * static_cast<double>(v % 4);

  const auto full = core::solve_weighted_double_oracle_resumable(
      game, weights, 1e-9, SolveBudget::iterations(100), core::ResumeHooks{});
  ASSERT_TRUE(full.ok()) << full.status.to_string();

  CancelToken token;
  token.cancel_after_polls(2);
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto cancelled = core::solve_weighted_double_oracle_resumable(
      game, weights, 1e-9, cancellable(SolveBudget::iterations(100), &token),
      capture);
  ASSERT_EQ(cancelled.status.code, StatusCode::kCancelled);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = core::solve_weighted_double_oracle_resumable(
      game, weights, 1e-9, SolveBudget::iterations(100), resume);
  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.iterations, full.result.iterations);
  EXPECT_EQ(resumed.result.value, full.result.value);
  EXPECT_EQ(resumed.result.lower_bound, full.result.lower_bound);
  EXPECT_EQ(resumed.result.upper_bound, full.result.upper_bound);
}

TEST(CancelResume, FictitiousPlayResumesAfterCancellation) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);
  const double target = 1e-9;
  const auto full = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(120), target, core::ResumeHooks{});
  ASSERT_EQ(full.status.code, StatusCode::kIterationLimit);

  CancelToken token;
  token.cancel_after_polls(40);
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto cancelled = sim::fictitious_play_resumable(
      game, cancellable(SolveBudget::iterations(120), &token), target,
      capture);
  ASSERT_EQ(cancelled.status.code, StatusCode::kCancelled)
      << cancelled.status.to_string();
  ASSERT_LT(cp.iterations, 120u);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = sim::fictitious_play_resumable(
      game, SolveBudget::iterations(120 - restored.iterations), target,
      resume);
  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
  EXPECT_EQ(resumed.result.attacker_frequency,
            full.result.attacker_frequency);
}

TEST(CancelResume, WeightedFictitiousPlayResumesAfterCancellation) {
  const core::TupleGame game(graph::grid_graph(3, 3), 2, 1);
  std::vector<double> weights(game.graph().num_vertices());
  for (std::size_t v = 0; v < weights.size(); ++v)
    weights[v] = 1.0 + 0.5 * static_cast<double>(v % 3);
  const double target = 1e-9;

  const auto full = sim::weighted_fictitious_play_resumable(
      game, weights, SolveBudget::iterations(90), target,
      core::ResumeHooks{});
  ASSERT_EQ(full.status.code, StatusCode::kIterationLimit);

  CancelToken token;
  token.cancel_after_polls(25);
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto cancelled = sim::weighted_fictitious_play_resumable(
      game, weights, cancellable(SolveBudget::iterations(90), &token),
      target, capture);
  ASSERT_EQ(cancelled.status.code, StatusCode::kCancelled);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  const auto resumed = sim::weighted_fictitious_play_resumable(
      game, weights, SolveBudget::iterations(90 - restored.iterations),
      target, resume);
  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
}

TEST(CancelResume, HedgeResumesAfterCancellation) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);
  const std::size_t horizon = 100;
  const double target = 1e-9;

  const auto full = sim::hedge_dynamics_resumable(
      game, horizon, SolveBudget::unlimited_budget(), target,
      core::ResumeHooks{});
  ASSERT_EQ(full.status.code, StatusCode::kIterationLimit);
  ASSERT_EQ(full.result.rounds, horizon);

  CancelToken token;
  token.cancel_after_polls(33);
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto cancelled = sim::hedge_dynamics_resumable(
      game, horizon, cancellable(SolveBudget::unlimited_budget(), &token),
      target, capture);
  ASSERT_EQ(cancelled.status.code, StatusCode::kCancelled)
      << cancelled.status.to_string();
  EXPECT_EQ(cp.horizon, horizon);
  ASSERT_LT(cp.iterations, horizon);

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  // Same horizon => same eta => the cancelled trajectory continues
  // bit-exactly to the same final answer.
  const auto resumed = sim::hedge_dynamics_resumable(
      game, horizon, SolveBudget::unlimited_budget(), target, resume);
  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.rounds, full.result.rounds);
  EXPECT_EQ(resumed.result.value_estimate, full.result.value_estimate);
  EXPECT_EQ(resumed.result.gap, full.result.gap);
  EXPECT_EQ(resumed.result.attacker_average, full.result.attacker_average);
}

TEST(CancelResume, AlreadyCancelledTokenStopsAtTheFirstPoll) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  CancelToken token;
  token.request_cancel();
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto cancelled = core::solve_double_oracle_resumable(
      game, 1e-9, cancellable(SolveBudget::iterations(100), &token), capture);
  EXPECT_EQ(cancelled.status.code, StatusCode::kCancelled);
  // Even the immediate kill leaves a valid, resumable checkpoint.
  core::ResumeHooks resume;
  resume.resume = &cp;
  const auto resumed = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(100), resume);
  EXPECT_TRUE(resumed.ok()) << resumed.status.to_string();
}

// ---------------------------------------------------------------------------
// Flat-tableau regression (docs/SIMPLEX.md): interrupted and fault-armed LP
// solves on the new core must reproduce the reference path's matrix-game
// brackets bit-for-bit, so every checkpoint captured above an LP truncation
// carries exactly the bounds the old implementation would have written.
// The `defender-checkpoint v1` golden stays pinned byte-for-byte by
// CheckpointText.GoldenSnapshotIsStable regardless of the LP substrate.

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_brackets_bit_equal(const Solved<lp::MatrixGameSolution>& flat,
                               const Solved<lp::MatrixGameSolution>& ref,
                               const std::string& tag) {
  EXPECT_EQ(flat.status.code, ref.status.code) << tag;
  EXPECT_EQ(flat.status.iterations, ref.status.iterations) << tag;
  EXPECT_EQ(double_bits(flat.result.lower_bound),
            double_bits(ref.result.lower_bound))
      << tag << ": lower bound " << flat.result.lower_bound << " vs "
      << ref.result.lower_bound;
  EXPECT_EQ(double_bits(flat.result.upper_bound),
            double_bits(ref.result.upper_bound))
      << tag << ": upper bound " << flat.result.upper_bound << " vs "
      << ref.result.upper_bound;
  EXPECT_EQ(double_bits(flat.result.value), double_bits(ref.result.value))
      << tag << ": value";
}

TEST(LpKillResume, KillAtPivotIMatchesReferenceBrackets) {
  // Kill the matrix-game LP at every pivot budget from 1 to one past the
  // full solve; the truncated brackets the checkpoint layer would persist
  // must match the reference substrate exactly at every stop.
  const core::TupleGame game(graph::petersen_graph(), 2, 1);
  const lp::Matrix payoff = core::coverage_matrix(game);
  const auto full = lp::solve_matrix_game_budgeted_with(
      &lp::solve_max, payoff, SolveBudget::unlimited_budget());
  ASSERT_TRUE(full.ok()) << full.status.to_string();
  ASSERT_GT(full.status.iterations, 2u)
      << "instance too easy to exercise a mid-pivot kill";
  for (std::size_t i = 1; i <= full.status.iterations + 1; ++i) {
    const auto flat = lp::solve_matrix_game_budgeted_with(
        &lp::solve_max, payoff, SolveBudget::iterations(i));
    const auto ref = lp::solve_matrix_game_budgeted_with(
        &lp::reference::solve_max, payoff, SolveBudget::iterations(i));
    expect_brackets_bit_equal(flat, ref,
                              "kill at pivot " + std::to_string(i));
  }
  // An LP re-solve with the budget restored IS the resume (the tableau is
  // rebuilt deterministically); it must land exactly on the full solve.
  const auto resumed = lp::solve_matrix_game_budgeted_with(
      &lp::solve_max, payoff,
      SolveBudget::iterations(full.status.iterations + 1));
  expect_brackets_bit_equal(resumed, full, "budget-restored re-solve");
}

TEST(LpKillResume, FaultSitesMatchReferenceBrackets) {
  // Both lp-* sites, armed at rate 1.0. Fault decisions are pure functions
  // of (seed, site, per-site counter), so a fresh context per substrate
  // replays the identical schedule.
  const core::TupleGame game(graph::grid_graph(2, 3), 2, 1);
  const lp::Matrix payoff = core::coverage_matrix(game);
  for (const fault::FaultSite site : {fault::FaultSite::kLpPivotPerturb,
                                      fault::FaultSite::kLpForceUnstable}) {
    fault::FaultPlan plan;
    plan.seed = 0xc0ffee ^ static_cast<std::uint64_t>(site);
    plan.rate_of(site) = 1.0;
    fault::FaultContext flat_ctx(plan);
    const auto flat = lp::solve_matrix_game_budgeted_with(
        &lp::solve_max, payoff, SolveBudget::unlimited_budget(), nullptr,
        &flat_ctx);
    fault::FaultContext ref_ctx(plan);
    const auto ref = lp::solve_matrix_game_budgeted_with(
        &lp::reference::solve_max, payoff, SolveBudget::unlimited_budget(),
        nullptr, &ref_ctx);
    expect_brackets_bit_equal(
        flat, ref,
        std::string("armed site ") + fault::to_string(site));
    // The forced-unstable site must actually demote — proving the fault
    // path is live on the new core, not silently skipped.
    if (site == fault::FaultSite::kLpForceUnstable)
      EXPECT_EQ(flat.status.code, StatusCode::kNumericallyUnstable);
  }
}

TEST(LpKillResume, FaultArmedDoubleOracleKillResumeIsDeterministic) {
  // Chaos + checkpoint on the new core: a double oracle whose every
  // subgame LP is forced unstable, killed at iteration 2 and resumed
  // through the text format, must reproduce the uninterrupted faulted run.
  // kLpForceUnstable fires on every evaluation at rate 1.0 regardless of
  // the per-site counter, so the interrupted and uninterrupted runs see
  // the same fault schedule.
  const core::TupleGame game(graph::petersen_graph(), 2, 1);
  fault::FaultPlan plan;
  plan.seed = 20260808;
  plan.rate_of(fault::FaultSite::kLpForceUnstable) = 1.0;

  fault::FaultContext full_ctx(plan);
  const auto full = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(30), core::ResumeHooks{}, nullptr,
      &full_ctx);
  ASSERT_TRUE(std::isfinite(full.result.lower_bound));
  ASSERT_TRUE(std::isfinite(full.result.upper_bound));

  fault::FaultContext killed_ctx(plan);
  core::SolverCheckpoint cp;
  core::ResumeHooks capture;
  capture.capture = &cp;
  const auto killed = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(2), capture, nullptr, &killed_ctx);
  ASSERT_EQ(killed.status.code, StatusCode::kIterationLimit)
      << killed.status.to_string();

  const core::SolverCheckpoint restored = through_text(cp);
  core::ResumeHooks resume;
  resume.resume = &restored;
  fault::FaultContext resumed_ctx(plan);
  const auto resumed = core::solve_double_oracle_resumable(
      game, 1e-9, SolveBudget::iterations(28), resume, nullptr, &resumed_ctx);

  EXPECT_EQ(resumed.status.code, full.status.code);
  EXPECT_EQ(resumed.result.iterations, full.result.iterations);
  EXPECT_EQ(double_bits(resumed.result.value),
            double_bits(full.result.value));
  EXPECT_EQ(double_bits(resumed.result.lower_bound),
            double_bits(full.result.lower_bound));
  EXPECT_EQ(double_bits(resumed.result.upper_bound),
            double_bits(full.result.upper_bound));
}

}  // namespace
}  // namespace defender
