// Fault-injection contract tests (the chaos layer's own unit tests):
//
//  * the name tables (StatusCode, LpStatus, FaultSite, SolverKind) are
//    exhaustive and round-trip — the test-time companion of the
//    static_assert audits in the headers;
//  * fault plans serialize/parse losslessly and the parser rejects hostile
//    input with kInvalidInput, never a crash;
//  * fault decisions are a pure function of (seed, site, counter):
//    replayable, rate-respecting, independent across sites;
//  * a null FaultContext leaves every budgeted solver bit-for-bit
//    identical (the same zero-cost promise the obs layer makes);
//  * each injection site degrades SOUNDLY: the guards repair poisoned
//    values from authoritative sources, so every certified bound survives;
//  * the obs::Clock monotonic clamp absorbs injected backward skew and
//    counts it, and forward skew starves deadlines gracefully.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/best_response.hpp"
#include "core/budget.hpp"
#include "core/checkpoint.hpp"
#include "core/double_oracle.hpp"
#include "core/game.hpp"
#include "core/status.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "lp/simplex.hpp"
#include "obs/clock.hpp"
#include "obs/context.hpp"
#include "sim/fictitious_play.hpp"
#include "sim/multiplicative_weights.hpp"

namespace defender {
namespace {

// ---------------------------------------------------------------------------
// Satellite: name-table exhaustiveness audits (test-time round trips; the
// compile-time halves live as static_asserts next to each enum).

TEST(NameAudit, StatusCodesRoundTripAndAreDistinct) {
  std::set<std::string> names;
  for (StatusCode c : kAllStatusCodes) {
    const std::string name = to_string(c);
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    StatusCode parsed{};
    ASSERT_TRUE(try_parse_status_code(name, &parsed));
    EXPECT_EQ(parsed, c);
  }
  EXPECT_EQ(names.size(), kStatusCodeCount);
  StatusCode sink = StatusCode::kOk;
  EXPECT_FALSE(try_parse_status_code("unknown", &sink));
  EXPECT_FALSE(try_parse_status_code("", &sink));
  EXPECT_FALSE(try_parse_status_code("OK", &sink));
  EXPECT_EQ(sink, StatusCode::kOk);  // failed parse leaves `out` untouched
}

TEST(NameAudit, LpStatusesAreNamedAndDistinct) {
  std::set<std::string> names;
  for (lp::LpStatus s : lp::kAllLpStatuses) {
    const std::string name = lp::to_string(s);
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), lp::kLpStatusCount);
}

TEST(NameAudit, FaultSitesRoundTripAndAreDistinct) {
  std::set<std::string> names;
  for (fault::FaultSite s : fault::kAllFaultSites) {
    const std::string name = fault::to_string(s);
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    fault::FaultSite parsed{};
    ASSERT_TRUE(fault::try_parse_fault_site(name, &parsed));
    EXPECT_EQ(parsed, s);
  }
  EXPECT_EQ(names.size(), fault::kFaultSiteCount);
  fault::FaultSite sink{};
  EXPECT_FALSE(fault::try_parse_fault_site("oracle", &sink));
  EXPECT_FALSE(fault::try_parse_fault_site("", &sink));
}

TEST(NameAudit, SolverKindsRoundTripAndAreDistinct) {
  std::set<std::string> names;
  for (core::SolverKind k : core::kAllSolverKinds) {
    const std::string name = core::to_string(k);
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    core::SolverKind parsed{};
    ASSERT_TRUE(core::try_parse_solver_kind(name, &parsed));
    EXPECT_EQ(parsed, k);
  }
  core::SolverKind sink{};
  EXPECT_FALSE(core::try_parse_solver_kind("simplex", &sink));
}

// ---------------------------------------------------------------------------
// Fault-plan text format.

TEST(FaultPlanText, RoundTripsBitExactly) {
  fault::FaultPlan plan;
  plan.seed = 0xDEADBEEFCAFE1234ULL;
  plan.rate_of(fault::FaultSite::kOracleAlloc) = 0.125;
  plan.rate_of(fault::FaultSite::kOracleGarble) = 1.0;
  plan.rate_of(fault::FaultSite::kLpPivotPerturb) = 0.123456789012345678;
  plan.rate_of(fault::FaultSite::kDeadlineStarve) = 1e-12;

  const auto parsed = fault::FaultPlan::try_parse(plan.to_text());
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  EXPECT_EQ(parsed.result.seed, plan.seed);
  for (fault::FaultSite s : fault::kAllFaultSites) {
    // %.17g serialization is lossless for doubles.
    EXPECT_EQ(parsed.result.rate_of(s), plan.rate_of(s))
        << fault::to_string(s);
  }
}

TEST(FaultPlanText, RejectsHostileInputWithLineNumbers) {
  const auto expect_invalid = [](const std::string& text) {
    const auto parsed = fault::FaultPlan::try_parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status.code, StatusCode::kInvalidInput);
    EXPECT_NE(parsed.status.message.find("line"), std::string::npos)
        << parsed.status.message;
  };
  expect_invalid("");
  expect_invalid("not-a-plan\n");
  expect_invalid("fault-plan v99\nseed 1\nend\n");
  expect_invalid("fault-plan v1\nseed nope\nend\n");
  expect_invalid("fault-plan v1\nseed 1\nrate bogus-site 0.5\nend\n");
  expect_invalid("fault-plan v1\nseed 1\nrate oracle-alloc 1.5\nend\n");
  expect_invalid("fault-plan v1\nseed 1\nrate oracle-alloc -0.1\nend\n");
  expect_invalid("fault-plan v1\nseed 1\nrate oracle-alloc nan\nend\n");
  expect_invalid("fault-plan v1\nseed 1\nrate oracle-alloc 0.5\n");  // no end
}

// ---------------------------------------------------------------------------
// Determinism of the firing schedule.

TEST(FaultContext, DecisionsAreAPureFunctionOfThePlan) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.set_all(0.5);
  fault::FaultContext a(plan);
  fault::FaultContext b(plan);
  for (int i = 0; i < 2000; ++i) {
    for (fault::FaultSite s : fault::kAllFaultSites) {
      ASSERT_EQ(a.fires(s), b.fires(s)) << fault::to_string(s) << " @" << i;
      ASSERT_EQ(a.aux(s), b.aux(s)) << fault::to_string(s) << " @" << i;
    }
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  // Rate 0.5 over 2000 draws: astronomically unlikely to be all-or-nothing.
  for (fault::FaultSite s : fault::kAllFaultSites) {
    EXPECT_EQ(a.evaluations(s), 2000u);
    EXPECT_GT(a.injected(s), 0u) << fault::to_string(s);
    EXPECT_LT(a.injected(s), 2000u) << fault::to_string(s);
  }
}

TEST(FaultContext, RateZeroNeverFiresAndRateOneAlwaysFires) {
  fault::FaultPlan never;
  never.seed = 7;
  EXPECT_FALSE(never.armed());
  fault::FaultContext off(never);

  fault::FaultPlan always;
  always.seed = 7;
  always.set_all(1.0);
  EXPECT_TRUE(always.armed());
  fault::FaultContext on(always);

  for (int i = 0; i < 500; ++i) {
    for (fault::FaultSite s : fault::kAllFaultSites) {
      EXPECT_FALSE(off.fires(s));
      EXPECT_TRUE(on.fires(s));
    }
  }
  EXPECT_EQ(off.total_injected(), 0u);
  EXPECT_EQ(on.total_injected(), 500u * fault::kFaultSiteCount);
}

TEST(FaultContext, SeedsProduceDifferentSchedules) {
  fault::FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.set_all(0.5);
  p2.set_all(0.5);
  fault::FaultContext a(p1), b(p2);
  bool differs = false;
  for (int i = 0; i < 256 && !differs; ++i)
    differs = a.fires(fault::FaultSite::kOracleAlloc) !=
              b.fires(fault::FaultSite::kOracleAlloc);
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// The supervise-layer sites (worker-crash / worker-hang) and the stateless
// schedule predicate they are decided through.

TEST(FaultPlanText, WorkerSitesParseByName) {
  // Handwritten plan text naming the supervise-layer sites — the exact
  // text a chaos harness replays from a failing run's JobReport.
  const std::string text =
      "fault-plan v1\n"
      "seed 99\n"
      "rate worker-crash 0.5\n"
      "rate worker-hang 0.25\n"
      "end\n";
  const auto parsed = fault::FaultPlan::try_parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  EXPECT_EQ(parsed.result.seed, 99u);
  EXPECT_EQ(parsed.result.rate_of(fault::FaultSite::kWorkerCrash), 0.5);
  EXPECT_EQ(parsed.result.rate_of(fault::FaultSite::kWorkerHang), 0.25);
  EXPECT_TRUE(parsed.result.armed());

  // And bit-exactly through the full to_text round trip.
  const auto reparsed = fault::FaultPlan::try_parse(parsed.result.to_text());
  ASSERT_TRUE(reparsed.ok());
  for (fault::FaultSite s : fault::kAllFaultSites)
    EXPECT_EQ(reparsed.result.rate_of(s), parsed.result.rate_of(s))
        << fault::to_string(s);

  // Out-of-range rates on the new sites are rejected like any other.
  EXPECT_FALSE(fault::FaultPlan::try_parse(
                   "fault-plan v1\nseed 1\nrate worker-crash 1.5\nend\n")
                   .ok());
  EXPECT_FALSE(fault::FaultPlan::try_parse(
                   "fault-plan v1\nseed 1\nrate worker-hang -1\nend\n")
                   .ok());
}

TEST(FaultContext, ScheduledMatchesFiresCallForCall) {
  // The stateless predicate IS the stateful decision: fires()'s n-th call
  // equals scheduled(plan, site, n), so the supervisor and worker can
  // both evaluate a job's crash schedule without perturbing the job's own
  // counters.
  fault::FaultPlan plan;
  plan.seed = 0xC0FFEE;
  plan.set_all(0.5);
  fault::FaultContext ctx(plan);
  for (std::uint64_t n = 0; n < 500; ++n) {
    for (fault::FaultSite s : fault::kAllFaultSites) {
      ASSERT_EQ(ctx.fires(s), fault::FaultContext::scheduled(plan, s, n))
          << fault::to_string(s) << " @" << n;
      ASSERT_EQ(ctx.aux(s), fault::FaultContext::scheduled_aux(plan, s, n))
          << fault::to_string(s) << " @" << n;
    }
  }
}

TEST(FaultContext, ScheduledIsStatelessAndPure) {
  fault::FaultPlan plan;
  plan.seed = 31337;
  plan.rate_of(fault::FaultSite::kWorkerCrash) = 0.5;
  plan.rate_of(fault::FaultSite::kWorkerHang) = 0.5;

  // Same (plan, site, evaluation) -> same answer, every time, and
  // evaluating the predicate never advances anything.
  fault::FaultContext untouched(plan);
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (std::uint64_t n = 0; n < 64; ++n) {
      const bool crash = fault::FaultContext::scheduled(
          plan, fault::FaultSite::kWorkerCrash, n);
      const bool again = fault::FaultContext::scheduled(
          plan, fault::FaultSite::kWorkerCrash, n);
      EXPECT_EQ(crash, again);
    }
  }
  EXPECT_EQ(untouched.evaluations(fault::FaultSite::kWorkerCrash), 0u);
  EXPECT_EQ(untouched.total_injected(), 0u);

  // Rate 0 never schedules; rate 1 always does.
  fault::FaultPlan off;
  off.seed = 31337;
  fault::FaultPlan on;
  on.seed = 31337;
  on.set_all(1.0);
  for (std::uint64_t n = 0; n < 64; ++n) {
    EXPECT_FALSE(fault::FaultContext::scheduled(
        off, fault::FaultSite::kWorkerCrash, n));
    EXPECT_TRUE(fault::FaultContext::scheduled(
        on, fault::FaultSite::kWorkerHang, n));
  }
}

// ---------------------------------------------------------------------------
// Null-context bit-identity: an armed-but-silent FaultContext (all rates 0)
// must leave every budgeted solver's output bit-for-bit identical to the
// null-pointer run — the same zero-cost contract the obs layer keeps.

template <typename T>
void expect_same_status(const Solved<T>& a, const Solved<T>& b) {
  EXPECT_EQ(a.status.code, b.status.code);
  EXPECT_EQ(a.status.iterations, b.status.iterations);
  EXPECT_EQ(a.status.residual, b.status.residual);
  // elapsed_seconds is wall time and exempt, as in the obs identity tests.
}

TEST(NullFaultIdentity, DoubleOracleIsBitIdentical) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  const auto plain = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(200), nullptr, nullptr);
  fault::FaultPlan silent;
  silent.seed = 99;  // armed context, every rate 0: decisions all "no"
  fault::FaultContext ctx(silent);
  const auto faulted = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(200), nullptr, &ctx);

  expect_same_status(plain, faulted);
  EXPECT_EQ(plain.result.value, faulted.result.value);
  EXPECT_EQ(plain.result.gap, faulted.result.gap);
  EXPECT_EQ(plain.result.lower_bound, faulted.result.lower_bound);
  EXPECT_EQ(plain.result.upper_bound, faulted.result.upper_bound);
  EXPECT_EQ(plain.result.iterations, faulted.result.iterations);
  EXPECT_EQ(plain.result.defender_set_size, faulted.result.defender_set_size);
  EXPECT_EQ(plain.result.attacker_set_size, faulted.result.attacker_set_size);
  EXPECT_EQ(plain.result.approximate, faulted.result.approximate);
  ASSERT_EQ(plain.result.defender.support().size(),
            faulted.result.defender.support().size());
  for (std::size_t i = 0; i < plain.result.defender.support().size(); ++i) {
    EXPECT_EQ(plain.result.defender.support()[i],
              faulted.result.defender.support()[i]);
    EXPECT_EQ(plain.result.defender.probs()[i],
              faulted.result.defender.probs()[i]);
  }
  ASSERT_EQ(plain.result.attacker.support().size(),
            faulted.result.attacker.support().size());
  for (std::size_t i = 0; i < plain.result.attacker.support().size(); ++i) {
    EXPECT_EQ(plain.result.attacker.support()[i],
              faulted.result.attacker.support()[i]);
    EXPECT_EQ(plain.result.attacker.probs()[i],
              faulted.result.attacker.probs()[i]);
  }
  // The context was consulted (sites evaluated) but never fired.
  EXPECT_GT(ctx.evaluations(fault::FaultSite::kClockSkew), 0u);
  EXPECT_EQ(ctx.total_injected(), 0u);
}

TEST(NullFaultIdentity, LearningDynamicsAreBitIdentical) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);
  fault::FaultPlan silent;
  silent.seed = 5;

  const auto fp_plain = sim::fictitious_play_budgeted(
      game, SolveBudget::iterations(300), 1e-4, nullptr, nullptr);
  fault::FaultContext fp_ctx(silent);
  const auto fp_faulted = sim::fictitious_play_budgeted(
      game, SolveBudget::iterations(300), 1e-4, nullptr, &fp_ctx);
  expect_same_status(fp_plain, fp_faulted);
  EXPECT_EQ(fp_plain.result.value_estimate, fp_faulted.result.value_estimate);
  EXPECT_EQ(fp_plain.result.gap, fp_faulted.result.gap);
  EXPECT_EQ(fp_plain.result.rounds, fp_faulted.result.rounds);
  EXPECT_EQ(fp_plain.result.attacker_frequency,
            fp_faulted.result.attacker_frequency);
  EXPECT_EQ(fp_plain.result.defender_hit_frequency,
            fp_faulted.result.defender_hit_frequency);

  const auto hg_plain = sim::hedge_dynamics_budgeted(
      game, SolveBudget::iterations(200), 1e-4, nullptr, nullptr);
  fault::FaultContext hg_ctx(silent);
  const auto hg_faulted = sim::hedge_dynamics_budgeted(
      game, SolveBudget::iterations(200), 1e-4, nullptr, &hg_ctx);
  expect_same_status(hg_plain, hg_faulted);
  EXPECT_EQ(hg_plain.result.value_estimate, hg_faulted.result.value_estimate);
  EXPECT_EQ(hg_plain.result.gap, hg_faulted.result.gap);
  EXPECT_EQ(hg_plain.result.rounds, hg_faulted.result.rounds);
  EXPECT_EQ(hg_plain.result.attacker_average,
            hg_faulted.result.attacker_average);

  std::vector<double> weights(game.graph().num_vertices());
  for (std::size_t v = 0; v < weights.size(); ++v)
    weights[v] = 1.0 + 0.25 * static_cast<double>(v % 4);
  const auto wdo_plain = core::solve_weighted_double_oracle_budgeted(
      game, weights, 1e-9, SolveBudget::iterations(200), nullptr, nullptr);
  fault::FaultContext wdo_ctx(silent);
  const auto wdo_faulted = core::solve_weighted_double_oracle_budgeted(
      game, weights, 1e-9, SolveBudget::iterations(200), nullptr, &wdo_ctx);
  expect_same_status(wdo_plain, wdo_faulted);
  EXPECT_EQ(wdo_plain.result.value, wdo_faulted.result.value);
  EXPECT_EQ(wdo_plain.result.lower_bound, wdo_faulted.result.lower_bound);
  EXPECT_EQ(wdo_plain.result.upper_bound, wdo_faulted.result.upper_bound);

  const auto wfp_plain = sim::weighted_fictitious_play_budgeted(
      game, weights, SolveBudget::iterations(200), 1e-4, nullptr, nullptr);
  fault::FaultContext wfp_ctx(silent);
  const auto wfp_faulted = sim::weighted_fictitious_play_budgeted(
      game, weights, SolveBudget::iterations(200), 1e-4, nullptr, &wfp_ctx);
  expect_same_status(wfp_plain, wfp_faulted);
  EXPECT_EQ(wfp_plain.result.value_estimate, wfp_faulted.result.value_estimate);
  EXPECT_EQ(wfp_plain.result.gap, wfp_faulted.result.gap);
  EXPECT_EQ(wfp_plain.result.rounds, wfp_faulted.result.rounds);
}

// ---------------------------------------------------------------------------
// Satellite: obs::Clock non-monotonicity guard.

TEST(ClockGuard, BackwardSkewIsClampedAndCounted) {
  // In a fresh process the first reading can be tick 0, where a backward
  // reading clamps to a *tie* (not counted). Skew forward first so the
  // baseline tick is firmly positive; net-positive skew is harmless to
  // leave in place — every later reading shares the same offset.
  obs::Clock::inject_skew_micros(2'000'000);
  const auto t0 = obs::Clock::now_micros();
  const auto clamps_before = obs::Clock::skew_clamps();
  obs::Clock::inject_skew_micros(-1'000'000);
  const auto t1 = obs::Clock::now_micros();
  EXPECT_GE(t1, t0);  // monotonic clamp held
  EXPECT_GT(obs::Clock::skew_clamps(), clamps_before);
  EXPECT_GE(obs::Clock::seconds_since(t0), 0.0);
  obs::Clock::inject_skew_micros(1'000'000);  // restore forward progress
}

TEST(ClockGuard, ClockSkewFaultSiteIsAbsorbed) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.rate_of(fault::FaultSite::kClockSkew) = 1.0;
  fault::FaultContext ctx(plan);
  // Baseline must be past the largest possible injected backward skew
  // (5 firings x 50 ms) so the clamped readings are strictly backward even
  // when this test is the process's first clock use.
  obs::Clock::inject_skew_micros(1'000'000);
  const auto t0 = obs::Clock::now_micros();
  const auto clamps_before = obs::Clock::skew_clamps();
  for (int i = 0; i < 5; ++i) {
    fault::perturb_clock(&ctx);
    EXPECT_GE(obs::Clock::now_micros(), t0);
  }
  EXPECT_EQ(ctx.injected(fault::FaultSite::kClockSkew), 5u);
  EXPECT_GT(obs::Clock::skew_clamps(), clamps_before);
  // Null context: one branch, no skew, no counter movement.
  fault::perturb_clock(nullptr);
}

// ---------------------------------------------------------------------------
// Per-site soundness of the oracle guards.

std::vector<double> test_masses(std::size_t n) {
  std::vector<double> masses(n);
  for (std::size_t v = 0; v < n; ++v)
    masses[v] = 0.05 + 0.1 * static_cast<double>(v % 7);
  return masses;
}

double coverage_mass(const graph::Graph& g, const std::vector<double>& masses,
                     const core::Tuple& tuple) {
  std::vector<bool> covered(g.num_vertices(), false);
  for (graph::EdgeId e : tuple) {
    covered[g.edge(e).u] = true;
    covered[g.edge(e).v] = true;
  }
  double total = 0;
  for (std::size_t v = 0; v < covered.size(); ++v)
    if (covered[v]) total += masses[v];
  return total;
}

struct SingleSiteFixture {
  core::TupleGame game{graph::petersen_graph(), 3, 1};
  std::vector<double> masses = test_masses(10);
  core::BestTuple exact =
      core::best_tuple_branch_and_bound(game, masses);

  core::BestTupleSearch run(fault::FaultSite site,
                            obs::MetricsRegistry* metrics = nullptr,
                            fault::FaultContext* out_ctx = nullptr) {
    fault::FaultPlan plan;
    plan.seed = 1234;
    plan.rate_of(site) = 1.0;
    fault::FaultContext ctx(plan);
    obs::ObsContext obs;
    obs.metrics = metrics;
    const auto result = core::best_tuple_branch_and_bound_budgeted(
        game, masses, /*node_budget=*/0, metrics ? &obs : nullptr, &ctx);
    if (out_ctx != nullptr) *out_ctx = ctx;
    return result;
  }
};

TEST(OracleFaults, AllocFailureFallsBackToSoundGreedyIncumbent) {
  SingleSiteFixture fx;
  obs::MetricsRegistry metrics;
  const auto r = fx.run(fault::FaultSite::kOracleAlloc, &metrics);
  // Feasible incumbent, mass consistent with its tuple, bound still sound.
  ASSERT_EQ(r.best.tuple.size(), fx.game.k());
  EXPECT_NEAR(r.best.mass,
              coverage_mass(fx.game.graph(), fx.masses, r.best.tuple), 1e-12);
  EXPECT_LE(r.best.mass, fx.exact.mass + 1e-12);
  EXPECT_GE(r.upper_bound, fx.exact.mass - 1e-12);
  EXPECT_EQ(metrics.counter("oracle.alloc_fallbacks").value(), 1u);
}

TEST(OracleFaults, GarbledResultIsRepairedToTheTrueMass) {
  SingleSiteFixture fx;
  obs::MetricsRegistry metrics;
  const auto r = fx.run(fault::FaultSite::kOracleGarble, &metrics);
  // The tuple itself was untouched and optimal; the poisoned mass and
  // bound were recomputed by the integrity guard.
  EXPECT_TRUE(std::isfinite(r.best.mass));
  EXPECT_TRUE(std::isfinite(r.upper_bound));
  EXPECT_NEAR(r.best.mass, fx.exact.mass, 1e-12);
  EXPECT_GE(r.upper_bound, r.best.mass - 1e-12);
  EXPECT_GE(metrics.counter("oracle.result_repairs").value(), 1u);
}

TEST(OracleFaults, PerturbedObjectiveIsRebuiltFromThePristineVector) {
  SingleSiteFixture fx;
  obs::MetricsRegistry metrics;
  const auto r = fx.run(fault::FaultSite::kMassPerturb, &metrics);
  // The input guard restored the caller's vector, so the answer is exact.
  EXPECT_FALSE(r.truncated);
  EXPECT_NEAR(r.best.mass, fx.exact.mass, 1e-12);
  EXPECT_EQ(metrics.counter("oracle.mass_repairs").value(), 1u);
}

TEST(OracleFaults, ForcedTruncationKeepsTheCompletionBoundSound) {
  SingleSiteFixture fx;
  fault::FaultContext ctx{fault::FaultPlan{}};
  const auto r = fx.run(fault::FaultSite::kOracleTruncate, nullptr, &ctx);
  EXPECT_EQ(ctx.injected(fault::FaultSite::kOracleTruncate), 1u);
  // Truncated or not, the incumbent is feasible and the bound brackets the
  // true optimum from above.
  ASSERT_EQ(r.best.tuple.size(), fx.game.k());
  EXPECT_LE(r.best.mass, fx.exact.mass + 1e-12);
  EXPECT_GE(r.upper_bound, fx.exact.mass - 1e-12);
  EXPECT_LE(r.best.mass, r.upper_bound + 1e-12);
}

// ---------------------------------------------------------------------------
// LP fault sites, exercised through the double oracle: whatever the
// simplex reports under injection, the returned bracket must stay sound
// (it is certified by the exact oracles, not the LP).

double reference_value(const core::TupleGame& game) {
  const auto clean = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(400));
  EXPECT_TRUE(clean.ok()) << clean.status.to_string();
  return clean.result.value;
}

void expect_sound_bracket(const Solved<core::DoubleOracleResult>& solved,
                          double reference, double slack = 1e-6) {
  EXPECT_TRUE(std::isfinite(solved.result.lower_bound));
  EXPECT_TRUE(std::isfinite(solved.result.upper_bound));
  EXPECT_LE(solved.result.lower_bound,
            solved.result.upper_bound + 1e-9);
  EXPECT_LE(solved.result.lower_bound, reference + slack);
  EXPECT_GE(solved.result.upper_bound, reference - slack);
}

TEST(LpFaults, PivotPerturbationIsCaughtByTheResidualVerifier) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  const double ref = reference_value(game);
  fault::FaultPlan plan;
  plan.seed = 21;
  plan.rate_of(fault::FaultSite::kLpPivotPerturb) = 1.0;
  fault::FaultContext ctx(plan);
  const auto solved = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(100), nullptr, &ctx);
  EXPECT_GT(ctx.injected(fault::FaultSite::kLpPivotPerturb), 0u);
  expect_sound_bracket(solved, ref);
}

TEST(LpFaults, ForcedInstabilityDegradesTruthfully) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  const double ref = reference_value(game);
  fault::FaultPlan plan;
  plan.seed = 22;
  plan.rate_of(fault::FaultSite::kLpForceUnstable) = 1.0;
  fault::FaultContext ctx(plan);
  const auto solved = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(100), nullptr, &ctx);
  EXPECT_GT(ctx.injected(fault::FaultSite::kLpForceUnstable), 0u);
  // The status may be kOk (exact oracles certified convergence anyway),
  // kNumericallyUnstable, or kIterationLimit — but never a lie about the
  // bracket, and never a crash.
  expect_sound_bracket(solved, ref);
}

TEST(DeadlineStarve, ForwardSkewExpiresTheDeadlineGracefully) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  const double ref = reference_value(game);
  fault::FaultPlan plan;
  plan.seed = 23;
  plan.rate_of(fault::FaultSite::kDeadlineStarve) = 1.0;
  fault::FaultContext ctx(plan);
  SolveBudget budget;
  budget.max_iterations = 500;
  budget.wall_clock_seconds = 30.0;  // generous — only the skew can kill it
  const auto solved = core::solve_double_oracle_resumable(
      game, 1e-9, budget, core::ResumeHooks{}, nullptr, &ctx);
  EXPECT_GT(ctx.injected(fault::FaultSite::kDeadlineStarve), 0u);
  // Either the solve converged before the injected jumps accumulated past
  // the deadline, or it degraded to kDeadlineExceeded — both truthful.
  EXPECT_TRUE(solved.status.code == StatusCode::kOk ||
              solved.status.code == StatusCode::kDeadlineExceeded)
      << solved.status.to_string();
  expect_sound_bracket(solved, ref);
}

// ---------------------------------------------------------------------------
// All sites armed at once: the micro chaos sweep (the full-scale version
// lives in tests/stress/stress_defender --fault-rate).

TEST(ChaosSoundness, EverySiteArmedBracketStaysCertified) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  const double ref = reference_value(game);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.set_all(0.25);
    // Forward clock jumps are exercised by DeadlineStarve above; with no
    // deadline in the budget they would only slow nothing down, so keep
    // them in — they must be harmless.
    fault::FaultContext ctx(plan);
    const auto solved = core::solve_double_oracle_budgeted(
        game, 1e-9, SolveBudget::iterations(60), nullptr, &ctx);
    expect_sound_bracket(solved, ref);
    EXPECT_GT(ctx.total_injected(), 0u) << "seed " << seed;
    // The status must be truthful: kOk implies a closed bracket.
    if (solved.status.code == StatusCode::kOk) {
      EXPECT_LE(solved.result.upper_bound - solved.result.lower_bound, 1e-4);
    }
  }
}

}  // namespace
}  // namespace defender
