// Concurrency safety of the observability layer: a Tracer + JsonlSink and a
// shared ConvergenceRecorder hammered from 8 threads must produce exact,
// untorn output — every JSONL line valid, every event accounted for, every
// sample intact — and the null-obs solve path must stay bit-identical when
// solves run concurrently (the engine runs one solve per worker against
// shared sinks, so this is the contract its batch isolation stands on).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/budget.hpp"
#include "core/double_oracle.hpp"
#include "core/game.hpp"
#include "graph/generators.hpp"
#include "json_check.hpp"
#include "obs/context.hpp"
#include "obs/convergence.hpp"
#include "obs/trace.hpp"

namespace defender::obs {
namespace {

constexpr std::size_t kThreads = 8;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

/// Barrier-starts `kThreads` threads running `fn(thread_index)`.
void run_threads(void (*fn)(std::size_t, void*), void* arg) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t]() {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      fn(t, arg);
    });
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
}

TEST(TracerConcurrency, InterleavedThreadsProduceExactValidJsonl) {
  std::ostringstream out;
  JsonlSink sink(out);
  Tracer tracer(&sink);

  constexpr std::size_t kSpansPerThread = 40;
  struct Ctx {
    Tracer* tracer;
  } ctx{&tracer};
  run_threads(
      [](std::size_t t, void* arg) {
        Tracer& tr = *static_cast<Ctx*>(arg)->tracer;
        for (std::size_t i = 0; i < kSpansPerThread; ++i) {
          Span s = tr.span("engine.job",
                           {TraceArg::of("thread", std::uint64_t(t)),
                            TraceArg::of("i", std::uint64_t(i))});
          tr.instant("engine.event",
                     {TraceArg::of("text", std::string("quote \" nl \n"))});
          s.arg("gap", 1.0 / static_cast<double>(i + 1));
          s.end();
        }
      },
      &ctx);
  tracer.flush();

  // Exact accounting: each span is 2 events plus 1 instant, no line lost.
  const auto lines = lines_of(out.str());
  const std::size_t expected = kThreads * kSpansPerThread * 3;
  ASSERT_EQ(lines.size(), expected);
  EXPECT_EQ(tracer.events_emitted(), expected);

  // No torn lines: every line parses as one standalone JSON object, and
  // the sequence numbers are exactly {0, ..., expected-1}.
  std::set<std::string> seqs;
  for (const std::string& line : lines) {
    EXPECT_TRUE(test_json::is_valid_json(line)) << line;
    const std::size_t pos = line.find("\"seq\":");
    ASSERT_NE(pos, std::string::npos) << line;
    std::size_t end = pos + 6;
    while (end < line.size() && std::isdigit(line[end]) != 0) ++end;
    seqs.insert(line.substr(pos + 6, end - pos - 6));
  }
  EXPECT_EQ(seqs.size(), expected);
}

TEST(ConvergenceRecorderConcurrency, SharedRecorderLosesAndTearsNothing) {
  ConvergenceRecorder recorder;
  constexpr std::size_t kSamplesPerThread = 500;

  struct Ctx {
    ConvergenceRecorder* recorder;
  } ctx{&recorder};
  run_threads(
      [](std::size_t t, void* arg) {
        ConvergenceRecorder& rec = *static_cast<Ctx*>(arg)->recorder;
        for (std::size_t i = 0; i < kSamplesPerThread; ++i) {
          IterationSample s;
          s.iteration = i;
          // Tear detector: all fields encode (t, i); a torn write mixes
          // two samples and breaks the redundancy below.
          s.lower = static_cast<double>(t);
          s.upper = static_cast<double>(t) + 1.0;
          s.gap = static_cast<double>(i);
          s.defender_support = t;
          s.attacker_support = i;
          rec.record(s);
        }
      },
      &ctx);

  const auto samples = recorder.snapshot();
  ASSERT_EQ(samples.size(), kThreads * kSamplesPerThread);
  std::vector<std::size_t> per_thread(kThreads, 0);
  for (const IterationSample& s : samples) {
    ASSERT_LT(s.defender_support, kThreads);
    EXPECT_EQ(s.lower, static_cast<double>(s.defender_support));
    EXPECT_EQ(s.upper, static_cast<double>(s.defender_support) + 1.0);
    EXPECT_EQ(s.iteration, s.attacker_support);
    EXPECT_EQ(s.gap, static_cast<double>(s.attacker_support));
    ++per_thread[s.defender_support];
  }
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(per_thread[t], kSamplesPerThread) << "thread " << t;
}

TEST(ConvergenceRecorderConcurrency, SnapshotIsConsistentMidRun) {
  ConvergenceRecorder recorder;
  std::atomic<bool> done{false};

  std::thread writer([&]() {
    for (std::size_t i = 0; i < 20'000; ++i) {
      IterationSample s;
      s.iteration = i;
      s.lower = static_cast<double>(i);
      s.upper = static_cast<double>(i);
      recorder.record(s);
    }
    done.store(true, std::memory_order_release);
  });

  // Every mid-run snapshot must be an intact prefix-consistent copy:
  // sizes never shrink, every sample internally coherent.
  std::size_t last_size = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto snap = recorder.snapshot();
    ASSERT_GE(snap.size(), last_size);
    last_size = snap.size();
    for (const IterationSample& s : snap) {
      ASSERT_EQ(s.lower, static_cast<double>(s.iteration));
      ASSERT_EQ(s.upper, s.lower);
    }
  }
  writer.join();
  EXPECT_EQ(recorder.snapshot().size(), 20'000u);
}

TEST(NullObsConcurrency, ConcurrentNullObsSolvesStayBitIdentical) {
  // The zero-cost promise under concurrency: solves running on 8 threads
  // with obs == nullptr are bit-identical to the same solves run serially.
  const graph::Graph g = graph::petersen_graph();
  const core::TupleGame game(g, 3, 1);
  const auto serial = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(200), nullptr);

  struct Ctx {
    const core::TupleGame* game;
    std::vector<Solved<core::DoubleOracleResult>>* results;
  };
  std::vector<Solved<core::DoubleOracleResult>> results(kThreads);
  Ctx ctx{&game, &results};
  run_threads(
      [](std::size_t t, void* arg) {
        Ctx& c = *static_cast<Ctx*>(arg);
        (*c.results)[t] = core::solve_double_oracle_budgeted(
            *c.game, 1e-9, SolveBudget::iterations(200), nullptr);
      },
      &ctx);

  for (const auto& r : results) {
    EXPECT_EQ(r.status.code, serial.status.code);
    EXPECT_EQ(r.result.value, serial.result.value);
    EXPECT_EQ(r.result.lower_bound, serial.result.lower_bound);
    EXPECT_EQ(r.result.upper_bound, serial.result.upper_bound);
    EXPECT_EQ(r.result.iterations, serial.result.iterations);
  }
}

}  // namespace
}  // namespace defender::obs
