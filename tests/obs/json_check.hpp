// Minimal recursive-descent JSON validator for the observability tests.
//
// The trace sinks promise machine-readable output; these tests hold them to
// it without taking a JSON-library dependency. The grammar is RFC 8259
// minus surrogate-pair validation (escapes are checked structurally). On
// top of full-document validation there are two string-field extractors so
// tests can assert on individual event fields.
#pragma once

#include <cctype>
#include <optional>
#include <string>

namespace defender::test_json {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // control characters must be escaped
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (!digits()) return false;
    if (consume('.') && !digits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool is_valid_json(const std::string& text) {
  return Parser(text).valid();
}

/// The raw (still-escaped) value of `"key":"..."` in a flat JSON line, or
/// nullopt when absent. Good enough for the sink formats under test, whose
/// keys are fixed identifiers.
inline std::optional<std::string> find_string_field(const std::string& line,
                                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t end = at + needle.size();
  while (end < line.size() && !(line[end] == '"' && line[end - 1] != '\\'))
    ++end;
  if (end >= line.size()) return std::nullopt;
  return line.substr(at + needle.size(), end - (at + needle.size()));
}

}  // namespace defender::test_json
