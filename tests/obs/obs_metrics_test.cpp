// MetricsRegistry correctness: counters, gauges, histograms, snapshots,
// JSON export, and exactness under concurrent increments.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "json_check.hpp"

namespace defender::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  g.set(-1.5);
  EXPECT_EQ(g.value(), -1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketPlacement) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(7.0);    // <= 10
  h.observe(100.0);  // <= 100
  h.observe(1e6);    // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 100.0 + 1e6);
  // cumulative_count(i) counts observations <= bounds()[i].
  EXPECT_EQ(h.cumulative_count(0), 2u);
  EXPECT_EQ(h.cumulative_count(1), 3u);
  EXPECT_EQ(h.cumulative_count(2), 4u);
  // Index bounds().size() is the grand total including overflow.
  EXPECT_EQ(h.cumulative_count(h.bounds().size()), 5u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.cumulative_count(h.bounds().size()), 0u);
}

TEST(Histogram, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const auto& bounds = Histogram::default_latency_ms_bounds();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(Registry, LookupIsStableAndIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("do.solves");
  Counter& b = reg.counter("do.solves");
  EXPECT_EQ(&a, &b);  // same instrument, stable reference
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = reg.histogram("do.solve_ms");
  Histogram& h2 = reg.histogram("do.solve_ms", {1.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(),
            Histogram::default_latency_ms_bounds().size());
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("c.gap").set(0.5);
  reg.histogram("d.ms").observe(3.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  EXPECT_EQ(snap[0].name, "a.count");
  EXPECT_EQ(snap[0].count, 1u);
  EXPECT_EQ(snap[1].name, "b.count");
  EXPECT_EQ(snap[1].count, 2u);
  EXPECT_EQ(snap[2].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(snap[2].value, 0.5);
  EXPECT_EQ(snap[3].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snap[3].count, 1u);
  // Per-bucket counts cover every bound plus the overflow bucket.
  EXPECT_EQ(snap[3].bucket_counts.size(), snap[3].bucket_bounds.size() + 1);
}

TEST(Registry, ToJsonIsValidJson) {
  MetricsRegistry reg;
  reg.counter("do.solves").add(7);
  reg.gauge("do.gap").set(1e-9);
  reg.histogram("lp.solve_ms").observe(0.02);
  reg.histogram("lp.solve_ms").observe(5000.0);
  EXPECT_TRUE(test_json::is_valid_json(reg.to_json())) << reg.to_json();
}

TEST(Registry, ResetZeroesButKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  Gauge& g = reg.gauge("y");
  Histogram& h = reg.histogram("z");
  c.add(5);
  g.set(2.0);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // the pre-reset reference still points at the live instrument
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("concurrent.count");
  Histogram& h = reg.histogram("concurrent.ms", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(t % 4));  // deterministic bucket mix
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every observation landed in a bucket (none lost to a race): 2 threads
  // each of values 0,1 (<=1), 2 (<=2), 3 (<=4).
  EXPECT_EQ(h.cumulative_count(0), 4u * kPerThread);
  EXPECT_EQ(h.cumulative_count(1), 6u * kPerThread);
  EXPECT_EQ(h.cumulative_count(2), 8u * kPerThread);
  EXPECT_EQ(h.cumulative_count(h.bounds().size()), 8u * kPerThread);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace defender::obs
