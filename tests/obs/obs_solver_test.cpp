// Solver-level observability contract:
//
//  * a null ObsContext leaves every budgeted solver's output bit-for-bit
//    identical to the instrumented run (the zero-cost promise);
//  * with full observability, a 50-vertex double-oracle solve produces a
//    well-formed JSONL trace whose per-iteration value brackets narrow
//    monotonically and whose final `do.finish` event matches the returned
//    Status (the PR's acceptance criterion);
//  * the do.* / fp.* / hedge.* / lp.* / oracle.* metrics add up.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/double_oracle.hpp"
#include "graph/generators.hpp"
#include "json_check.hpp"
#include "obs/context.hpp"
#include "sim/fictitious_play.hpp"
#include "sim/multiplicative_weights.hpp"

namespace defender {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

/// Owns one fully wired ObsContext (JSONL tracer + metrics + recorder).
struct FullObs {
  std::ostringstream jsonl;
  obs::JsonlSink sink{jsonl};
  obs::Tracer tracer{&sink};
  obs::MetricsRegistry metrics;
  obs::ConvergenceRecorder recorder;
  obs::ObsContext ctx{&tracer, &metrics, &recorder};

  std::vector<std::string> lines() {
    tracer.flush();
    return lines_of(jsonl.str());
  }
};

template <typename T>
void expect_same_status(const Solved<T>& a, const Solved<T>& b) {
  EXPECT_EQ(a.status.code, b.status.code);
  EXPECT_EQ(a.status.iterations, b.status.iterations);
  EXPECT_EQ(a.status.residual, b.status.residual);
  // status.elapsed_seconds is wall time and differs even between two
  // uninstrumented runs, so it is exempt from the bit-identity contract.
}

TEST(NullObsIdentity, DoubleOracleIsBitIdentical) {
  const graph::Graph g = graph::petersen_graph();
  const core::TupleGame game(g, 3, 1);
  const auto plain = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(200), nullptr);
  FullObs obs;
  const auto traced = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(200), &obs.ctx);

  expect_same_status(plain, traced);
  EXPECT_EQ(plain.result.value, traced.result.value);
  EXPECT_EQ(plain.result.gap, traced.result.gap);
  EXPECT_EQ(plain.result.lower_bound, traced.result.lower_bound);
  EXPECT_EQ(plain.result.upper_bound, traced.result.upper_bound);
  EXPECT_EQ(plain.result.iterations, traced.result.iterations);
  EXPECT_EQ(plain.result.defender_set_size, traced.result.defender_set_size);
  EXPECT_EQ(plain.result.attacker_set_size, traced.result.attacker_set_size);
  EXPECT_EQ(plain.result.approximate, traced.result.approximate);
  ASSERT_EQ(plain.result.defender.support().size(),
            traced.result.defender.support().size());
  for (std::size_t i = 0; i < plain.result.defender.support().size(); ++i) {
    EXPECT_EQ(plain.result.defender.support()[i],
              traced.result.defender.support()[i]);
    EXPECT_EQ(plain.result.defender.probs()[i],
              traced.result.defender.probs()[i]);
  }
  ASSERT_EQ(plain.result.attacker.support().size(),
            traced.result.attacker.support().size());
  for (std::size_t i = 0; i < plain.result.attacker.support().size(); ++i) {
    EXPECT_EQ(plain.result.attacker.support()[i],
              traced.result.attacker.support()[i]);
    EXPECT_EQ(plain.result.attacker.probs()[i],
              traced.result.attacker.probs()[i]);
  }
}

TEST(NullObsIdentity, LearningDynamicsAreBitIdentical) {
  const graph::Graph g = graph::grid_graph(3, 4);
  const core::TupleGame game(g, 2, 1);

  const auto fp_plain = sim::fictitious_play_budgeted(
      game, SolveBudget::iterations(300), 1e-4, nullptr);
  FullObs fp_obs;
  const auto fp_traced = sim::fictitious_play_budgeted(
      game, SolveBudget::iterations(300), 1e-4, &fp_obs.ctx);
  expect_same_status(fp_plain, fp_traced);
  EXPECT_EQ(fp_plain.result.value_estimate, fp_traced.result.value_estimate);
  EXPECT_EQ(fp_plain.result.gap, fp_traced.result.gap);
  EXPECT_EQ(fp_plain.result.rounds, fp_traced.result.rounds);
  ASSERT_EQ(fp_plain.result.trace.size(), fp_traced.result.trace.size());
  for (std::size_t i = 0; i < fp_plain.result.trace.size(); ++i) {
    EXPECT_EQ(fp_plain.result.trace[i].round, fp_traced.result.trace[i].round);
    EXPECT_EQ(fp_plain.result.trace[i].lower, fp_traced.result.trace[i].lower);
    EXPECT_EQ(fp_plain.result.trace[i].upper, fp_traced.result.trace[i].upper);
  }
  EXPECT_EQ(fp_plain.result.attacker_frequency,
            fp_traced.result.attacker_frequency);
  EXPECT_EQ(fp_plain.result.defender_hit_frequency,
            fp_traced.result.defender_hit_frequency);

  const auto hg_plain = sim::hedge_dynamics_budgeted(
      game, SolveBudget::iterations(200), 1e-4, nullptr);
  FullObs hg_obs;
  const auto hg_traced = sim::hedge_dynamics_budgeted(
      game, SolveBudget::iterations(200), 1e-4, &hg_obs.ctx);
  expect_same_status(hg_plain, hg_traced);
  EXPECT_EQ(hg_plain.result.value_estimate, hg_traced.result.value_estimate);
  EXPECT_EQ(hg_plain.result.gap, hg_traced.result.gap);
  EXPECT_EQ(hg_plain.result.rounds, hg_traced.result.rounds);
  EXPECT_EQ(hg_plain.result.attacker_average,
            hg_traced.result.attacker_average);
}

// The PR's acceptance test: a 50-vertex board, solved by the double oracle
// with full observability, yields a well-formed JSONL narrative with
// monotonically narrowing running brackets and a final event matching the
// returned Status.
TEST(Acceptance, FiftyVertexDoubleOracleTrace) {
  const graph::Graph g = graph::grid_graph(5, 10);
  ASSERT_EQ(g.num_vertices(), 50u);
  const core::TupleGame game(g, 4, 1);

  FullObs obs;
  const auto solved = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(500), &obs.ctx);
  ASSERT_TRUE(solved.ok()) << solved.status.to_string();

  // Convergence recorder: one sample per outer iteration, running bounds
  // never widening, and a strictly tighter final bracket.
  const auto& samples = obs.recorder.samples();
  ASSERT_EQ(samples.size(), solved.result.iterations);
  EXPECT_TRUE(obs.recorder.monotonically_narrowing());
  EXPECT_LT(samples.back().upper - samples.back().lower,
            samples.front().upper - samples.front().lower);
  EXPECT_NEAR(samples.back().lower, solved.result.lower_bound, 1e-12);
  EXPECT_NEAR(samples.back().upper, solved.result.upper_bound, 1e-12);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].iteration, samples[i].iteration);

  // Trace: every line parses; the solve span brackets the file; the final
  // do.finish instant reports the same status the call returned.
  const auto lines = obs.lines();
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines)
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
  EXPECT_EQ(test_json::find_string_field(lines.front(), "name").value(),
            "do.solve");
  EXPECT_EQ(test_json::find_string_field(lines.front(), "ph").value(), "B");

  std::string finish_line;
  std::size_t iteration_events = 0;
  for (const std::string& line : lines) {
    const auto name = test_json::find_string_field(line, "name");
    if (name == "do.finish") finish_line = line;
    if (name == "do.iteration") ++iteration_events;
  }
  ASSERT_FALSE(finish_line.empty());
  EXPECT_EQ(iteration_events, solved.result.iterations);
  EXPECT_EQ(test_json::find_string_field(finish_line, "status").value(),
            to_string(solved.status.code));

  // Metrics: the registry agrees with the result.
  EXPECT_EQ(obs.metrics.counter("do.solves").value(), 1u);
  EXPECT_EQ(obs.metrics.counter("do.iterations").value(),
            solved.result.iterations);
  EXPECT_GE(obs.metrics.counter("lp.solves").value(),
            solved.result.iterations);
  EXPECT_GE(obs.metrics.counter("oracle.calls").value(),
            solved.result.iterations);
  EXPECT_EQ(obs.metrics.counter("do.degraded").value(), 0u);
  EXPECT_EQ(obs.metrics.histogram("do.solve_ms").count(), 1u);
}

TEST(Degradation, StarvedSolveFinishesWithNonOkStatusEvent) {
  const core::TupleGame game(graph::petersen_graph(), 3, 1);
  FullObs obs;
  const auto solved = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(1), &obs.ctx);
  ASSERT_FALSE(solved.ok());
  std::string finish_line;
  for (const std::string& line : obs.lines())
    if (test_json::find_string_field(line, "name") == "do.finish")
      finish_line = line;
  ASSERT_FALSE(finish_line.empty());
  EXPECT_EQ(test_json::find_string_field(finish_line, "status").value(),
            to_string(solved.status.code));
  EXPECT_EQ(obs.metrics.counter("do.degraded").value(), 1u);
}

TEST(LearningDynamics, CheckpointAndFinishEventsMatchResults) {
  const core::TupleGame game(graph::grid_graph(3, 4), 2, 1);

  FullObs fp_obs;
  const auto fp = sim::fictitious_play_budgeted(
      game, SolveBudget::iterations(300), 1e-4, &fp_obs.ctx);
  EXPECT_TRUE(fp_obs.recorder.monotonically_narrowing());
  EXPECT_EQ(fp_obs.recorder.samples().size(), fp.result.trace.size());
  std::string fp_finish;
  for (const std::string& line : fp_obs.lines()) {
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
    if (test_json::find_string_field(line, "name") == "fp.finish")
      fp_finish = line;
  }
  ASSERT_FALSE(fp_finish.empty());
  EXPECT_EQ(test_json::find_string_field(fp_finish, "status").value(),
            to_string(fp.status.code));
  EXPECT_EQ(fp_obs.metrics.counter("fp.solves").value(), 1u);
  EXPECT_EQ(fp_obs.metrics.counter("fp.rounds").value(), fp.result.rounds);

  FullObs hg_obs;
  const auto hedge = sim::hedge_dynamics_budgeted(
      game, SolveBudget::iterations(200), 1e-4, &hg_obs.ctx);
  EXPECT_TRUE(hg_obs.recorder.monotonically_narrowing());
  std::string hg_finish;
  for (const std::string& line : hg_obs.lines()) {
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
    if (test_json::find_string_field(line, "name") == "hedge.finish")
      hg_finish = line;
  }
  ASSERT_FALSE(hg_finish.empty());
  EXPECT_EQ(test_json::find_string_field(hg_finish, "status").value(),
            to_string(hedge.status.code));
  EXPECT_EQ(hg_obs.metrics.counter("hedge.solves").value(), 1u);
  EXPECT_EQ(hg_obs.metrics.counter("hedge.rounds").value(),
            hedge.result.rounds);
}

TEST(WeightedVariants, EmitWeightedEventNames) {
  const graph::Graph g = graph::grid_graph(3, 3);
  const core::TupleGame game(g, 2, 1);
  std::vector<double> weights(g.num_vertices());
  for (std::size_t v = 0; v < weights.size(); ++v)
    weights[v] = 1.0 + 0.25 * static_cast<double>(v % 4);

  FullObs obs;
  const auto solved = core::solve_weighted_double_oracle_budgeted(
      game, weights, 1e-9, SolveBudget::iterations(200), &obs.ctx);
  ASSERT_TRUE(solved.ok()) << solved.status.to_string();
  bool saw_span = false, saw_finish = false;
  for (const std::string& line : obs.lines()) {
    const auto name = test_json::find_string_field(line, "name");
    if (name == "do.weighted.solve") saw_span = true;
    if (name == "do.weighted.finish") saw_finish = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_finish);
  EXPECT_EQ(obs.metrics.counter("do.weighted.solves").value(), 1u);
  EXPECT_TRUE(obs.recorder.monotonically_narrowing());
}

}  // namespace
}  // namespace defender
