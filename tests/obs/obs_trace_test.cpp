// Tracer and sink correctness: JSONL well-formedness line by line, Chrome
// trace_event validity, span nesting/ordering determinism, and the
// idempotence/move semantics the RAII Span promises.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_check.hpp"

namespace defender::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

/// Emits a deterministic little solve-shaped trace: nested spans with args
/// of all three kinds plus instants, including strings that need escaping.
void emit_fixture(Tracer& tracer) {
  Span solve = tracer.span("do.solve", {TraceArg::of("n", std::uint64_t{50}),
                                        TraceArg::of("tolerance", 1e-9)});
  for (int i = 0; i < 3; ++i) {
    Span iter = tracer.span("do.iteration");
    tracer.instant("lp.solve",
                   {TraceArg::of("status", std::string("optimal")),
                    TraceArg::of("pivots", std::uint64_t(7 + i))});
    iter.arg("gap", 1.0 / (i + 1));
    iter.end();
  }
  tracer.instant("note", {TraceArg::of(
                             "text", std::string("quote \" slash \\ nl \n "
                                                 "tab \t ctrl \x01 done"))});
  solve.arg("status", std::string("ok"));
  solve.end();
  tracer.flush();
}

TEST(JsonlSink, EveryLineIsValidJson) {
  std::ostringstream out;
  JsonlSink sink(out);
  Tracer tracer(&sink);
  emit_fixture(tracer);
  const auto lines = lines_of(out.str());
  // 2 span events for the solve, 3 * (2 span + 1 instant), 1 note instant.
  ASSERT_EQ(lines.size(), 2u + 3u * 3u + 1u);
  for (const std::string& line : lines)
    EXPECT_TRUE(test_json::is_valid_json(line)) << line;
}

TEST(JsonlSink, SpanNestingAndSequenceAreDeterministic) {
  std::ostringstream out;
  JsonlSink sink(out);
  Tracer tracer(&sink);
  emit_fixture(tracer);
  const auto lines = lines_of(out.str());

  // Sequence numbers count up from 0 in emission order.
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(i)),
              std::string::npos)
        << lines[i];

  // The outer span brackets the file; iterations nest one level deeper.
  EXPECT_EQ(test_json::find_string_field(lines.front(), "ph").value(), "B");
  EXPECT_EQ(test_json::find_string_field(lines.front(), "name").value(),
            "do.solve");
  EXPECT_NE(lines.front().find("\"depth\":0"), std::string::npos);
  EXPECT_EQ(test_json::find_string_field(lines.back(), "ph").value(), "E");
  EXPECT_EQ(test_json::find_string_field(lines.back(), "name").value(),
            "do.solve");
  EXPECT_NE(lines[1].find("\"depth\":1"), std::string::npos);  // iteration B
  EXPECT_NE(lines[2].find("\"depth\":2"), std::string::npos);  // lp instant

  // Everything but the timestamps is identical across runs.
  std::ostringstream out2;
  JsonlSink sink2(out2);
  Tracer tracer2(&sink2);
  emit_fixture(tracer2);
  auto strip_ts = [](const std::string& text) {
    std::string s = text;
    for (std::size_t at = s.find("\"ts_us\":"); at != std::string::npos;
         at = s.find("\"ts_us\":", at + 1)) {
      std::size_t end = at + 8;
      while (end < s.size() && s[end] != ',' && s[end] != '}') ++end;
      s.erase(at + 8, end - (at + 8));
    }
    return s;
  };
  EXPECT_EQ(strip_ts(out.str()), strip_ts(out2.str()));
}

TEST(JsonlSink, ArgsRoundTripThroughEscaping) {
  std::ostringstream out;
  JsonlSink sink(out);
  Tracer tracer(&sink);
  emit_fixture(tracer);
  const auto lines = lines_of(out.str());
  // The hostile string arg is escaped, not emitted raw.
  bool found = false;
  for (const std::string& line : lines) {
    if (test_json::find_string_field(line, "name") != "note") continue;
    found = true;
    EXPECT_NE(line.find("quote \\\" slash \\\\ nl \\n"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\\u0001"), std::string::npos) << line;
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTraceSink, ProducesOneValidJsonArray) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    Tracer tracer(&sink);
    emit_fixture(tracer);
  }  // destructor finalizes the array
  const std::string doc = out.str();
  EXPECT_TRUE(test_json::is_valid_json(doc)) << doc;
  EXPECT_EQ(doc.front(), '[');
  // Begin/End phases stay balanced for the flame graph to render.
  std::size_t begins = 0, ends = 0;
  for (std::size_t at = doc.find("\"ph\":\""); at != std::string::npos;
       at = doc.find("\"ph\":\"", at + 1)) {
    if (doc[at + 6] == 'B') ++begins;
    if (doc[at + 6] == 'E') ++ends;
  }
  EXPECT_EQ(begins, 4u);
  EXPECT_EQ(ends, 4u);
}

TEST(Span, EndIsIdempotentAndMovedFromSpansAreInert) {
  std::ostringstream out;
  JsonlSink sink(out);
  Tracer tracer(&sink);
  {
    Span a = tracer.span("outer");
    a.end();
    a.end();  // second end is a no-op
    Span b = tracer.span("inner");
    Span c = std::move(b);
    // b is inert now; only c's destructor emits the end event.
  }
  tracer.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(tracer.events_emitted(), 4u);
  for (const std::string& line : lines)
    EXPECT_TRUE(test_json::is_valid_json(line)) << line;
}

TEST(Tracer, DefaultSpanIsInertWithoutTracer) {
  Span s;  // never attached to a tracer
  s.arg("k", std::uint64_t{3});
  s.end();  // must not crash
}

TEST(Tracer, MultipleSinksReceiveEveryEvent) {
  std::ostringstream a, b;
  JsonlSink sink_a(a), sink_b(b);
  Tracer tracer(&sink_a);
  tracer.add_sink(&sink_b);
  tracer.add_sink(nullptr);  // ignored
  tracer.instant("ping");
  tracer.flush();
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(lines_of(a.str()).size(), 1u);
}

}  // namespace
}  // namespace defender::obs
