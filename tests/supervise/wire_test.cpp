// Wire-format coverage for the supervised pool: every frame kind
// round-trips through to_text / try_parse, a SolveJob survives
// frame_from_job -> job_from_frame with %.17g fidelity, and the
// FrameReader detects torn, garbled, and truncated envelopes instead of
// trusting them (docs/SUPERVISION.md).
#include "supervise/wire.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/game.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"

namespace defender::supervise {
namespace {

JobFrame sample_job_frame() {
  JobFrame frame;
  frame.job_index = 7;
  frame.dispatch = 2;
  frame.solver = engine::JobSolver::kWeightedFictitiousPlay;
  frame.tolerance = 0.1 + 0.2;  // not exactly representable: pins %.17g
  frame.max_iterations = 4000;
  frame.wall_clock_seconds = 1.5;
  frame.oracle_node_budget = 123456789;
  frame.watchdog_seconds = 2.25;
  frame.collect_convergence = true;
  frame.canonicalize = true;
  frame.retry.max_attempts = 3;
  frame.stream_interval_seconds = 0.125;
  frame.n = 4;
  frame.k = 2;
  frame.attackers = 3;
  frame.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  frame.weights = {1.0, 0.5, 1.0 / 3.0, 2.0};
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.rate_of(fault::FaultSite::kWorkerCrash) = 0.5;
  frame.fault_plan_text = plan.to_text();
  return frame;
}

TEST(Wire, JobFrameRoundTrips) {
  const JobFrame frame = sample_job_frame();
  const Solved<JobFrame> parsed = try_parse_job_frame(to_text(frame));
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  const JobFrame& got = parsed.result;
  EXPECT_EQ(got.job_index, frame.job_index);
  EXPECT_EQ(got.dispatch, frame.dispatch);
  EXPECT_EQ(got.solver, frame.solver);
  EXPECT_EQ(got.tolerance, frame.tolerance);
  EXPECT_EQ(got.max_iterations, frame.max_iterations);
  EXPECT_EQ(got.wall_clock_seconds, frame.wall_clock_seconds);
  EXPECT_EQ(got.oracle_node_budget, frame.oracle_node_budget);
  EXPECT_EQ(got.watchdog_seconds, frame.watchdog_seconds);
  EXPECT_EQ(got.collect_convergence, frame.collect_convergence);
  EXPECT_EQ(got.canonicalize, frame.canonicalize);
  EXPECT_EQ(got.retry.to_string(), frame.retry.to_string());
  EXPECT_EQ(got.stream_interval_seconds, frame.stream_interval_seconds);
  EXPECT_EQ(got.n, frame.n);
  EXPECT_EQ(got.k, frame.k);
  EXPECT_EQ(got.attackers, frame.attackers);
  EXPECT_EQ(got.edges, frame.edges);
  EXPECT_EQ(got.weights, frame.weights);  // bit-exact via %.17g
  EXPECT_EQ(got.fault_plan_text, frame.fault_plan_text);
  EXPECT_EQ(got.checkpoint_text, frame.checkpoint_text);
}

TEST(Wire, SolveJobSurvivesTheFrameRoundTrip) {
  engine::SolveJob job{core::TupleGame(graph::petersen_graph(), 3, 2)};
  job.solver = engine::JobSolver::kWeightedDoubleOracle;
  job.tolerance = 1e-7;
  job.budget = SolveBudget::iterations(500);
  job.weights.assign(job.game.graph().num_vertices(), 1.0);
  job.weights[3] = 0.25;
  job.fault_plan.seed = 99;
  job.fault_plan.rate_of(fault::FaultSite::kOracleGarble) = 0.75;
  job.watchdog_seconds = 3.5;

  engine::EngineConfig config;
  config.retry.max_attempts = 2;
  const JobFrame frame = frame_from_job(job, 11, config);
  EXPECT_EQ(frame.job_index, 11u);
  EXPECT_EQ(frame.n, job.game.graph().num_vertices());
  EXPECT_EQ(frame.edges.size(), job.game.graph().num_edges());

  const Solved<JobFrame> reparsed = try_parse_job_frame(to_text(frame));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status.to_string();
  std::optional<engine::SolveJob> rebuilt;
  const Status status = job_from_frame(reparsed.result, &rebuilt);
  ASSERT_TRUE(status.ok()) << status.to_string();
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->solver, job.solver);
  EXPECT_EQ(rebuilt->tolerance, job.tolerance);
  EXPECT_EQ(rebuilt->budget.max_iterations, job.budget.max_iterations);
  EXPECT_EQ(rebuilt->weights, job.weights);
  EXPECT_EQ(rebuilt->watchdog_seconds, job.watchdog_seconds);
  EXPECT_EQ(rebuilt->fault_plan.to_text(), job.fault_plan.to_text());
  EXPECT_EQ(rebuilt->game.graph().num_vertices(),
            job.game.graph().num_vertices());
  EXPECT_EQ(rebuilt->game.graph().num_edges(), job.game.graph().num_edges());
  EXPECT_EQ(rebuilt->game.k(), job.game.k());
}

TEST(Wire, JobFromFrameRejectsMalformedBoards) {
  JobFrame isolated = sample_job_frame();
  isolated.n = 5;  // vertex 4 touches no edge
  std::optional<engine::SolveJob> out;
  EXPECT_EQ(job_from_frame(isolated, &out).code, StatusCode::kInvalidInput);
  EXPECT_FALSE(out.has_value());

  JobFrame big_k = sample_job_frame();
  big_k.k = 100;
  EXPECT_EQ(job_from_frame(big_k, &out).code, StatusCode::kInvalidInput);

  JobFrame bad_plan = sample_job_frame();
  bad_plan.fault_plan_text = "not a fault plan\n";
  EXPECT_EQ(job_from_frame(bad_plan, &out).code, StatusCode::kInvalidInput);
}

TEST(Wire, ResultFrameRoundTripsWithAttemptsAndMessage) {
  ResultFrame frame;
  frame.job_index = 3;
  frame.dispatch = 1;
  frame.result.job_index = 3;
  frame.result.solver = engine::JobSolver::kHedge;
  frame.result.status = Status::make(StatusCode::kIterationLimit,
                                     "ran out after 40 iterations");
  frame.result.status.iterations = 40;
  frame.result.status.residual = 0.03125;
  frame.result.value = 2.0 / 3.0;
  frame.result.lower_bound = 0.5;
  frame.result.upper_bound = 0.75;
  frame.result.iterations = 40;
  frame.result.fallback_used = true;
  frame.result.watchdog_killed = true;
  frame.result.faults_injected = 5;
  frame.result.convergence_samples = 12;
  engine::AttemptRecord a;
  a.attempt = 1;
  a.action = engine::AttemptAction::kInitial;
  a.solver = engine::JobSolver::kHedge;
  a.outcome = StatusCode::kIterationLimit;
  a.value = 0.6;
  a.lower = 0.5;
  a.upper = 0.75;
  a.iterations = 40;
  frame.result.attempts.push_back(a);
  a.attempt = 2;
  a.action = engine::AttemptAction::kFallback;
  a.solver = engine::JobSolver::kZeroSumLp;
  a.outcome = StatusCode::kOk;
  frame.result.attempts.push_back(a);
  frame.checkpoint_text = "line one\nline two\n";

  const Solved<ResultFrame> parsed = try_parse_result_frame(to_text(frame));
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  const engine::JobResult& got = parsed.result.result;
  EXPECT_EQ(parsed.result.job_index, frame.job_index);
  EXPECT_EQ(parsed.result.dispatch, frame.dispatch);
  EXPECT_EQ(got.solver, frame.result.solver);
  EXPECT_EQ(got.status.code, frame.result.status.code);
  EXPECT_EQ(got.status.message, frame.result.status.message);
  EXPECT_EQ(got.status.iterations, frame.result.status.iterations);
  EXPECT_EQ(got.value, frame.result.value);
  EXPECT_EQ(got.lower_bound, frame.result.lower_bound);
  EXPECT_EQ(got.upper_bound, frame.result.upper_bound);
  EXPECT_EQ(got.fallback_used, frame.result.fallback_used);
  EXPECT_EQ(got.watchdog_killed, frame.result.watchdog_killed);
  EXPECT_EQ(got.faults_injected, frame.result.faults_injected);
  EXPECT_EQ(got.convergence_samples, frame.result.convergence_samples);
  ASSERT_EQ(got.attempts.size(), 2u);
  EXPECT_EQ(got.attempts[0].action, engine::AttemptAction::kInitial);
  EXPECT_EQ(got.attempts[1].action, engine::AttemptAction::kFallback);
  EXPECT_EQ(got.attempts[1].solver, engine::JobSolver::kZeroSumLp);
  EXPECT_EQ(parsed.result.checkpoint_text, frame.checkpoint_text);
}

TEST(Wire, SmallFramesRoundTrip) {
  HeartbeatFrame hb;
  hb.sequence = 41;
  const Solved<HeartbeatFrame> hb2 = try_parse_heartbeat_frame(to_text(hb));
  ASSERT_TRUE(hb2.ok());
  EXPECT_EQ(hb2.result.sequence, 41u);

  CheckpointFrame cp;
  cp.job_index = 9;
  cp.dispatch = 4;
  cp.checkpoint_text = "payload\nwith lines\n";
  const Solved<CheckpointFrame> cp2 = try_parse_checkpoint_frame(to_text(cp));
  ASSERT_TRUE(cp2.ok());
  EXPECT_EQ(cp2.result.job_index, 9u);
  EXPECT_EQ(cp2.result.dispatch, 4u);
  EXPECT_EQ(cp2.result.checkpoint_text, cp.checkpoint_text);

  for (CancelReason reason :
       {CancelReason::kWatchdog, CancelReason::kExternal,
        CancelReason::kShutdown}) {
    CancelFrame cancel;
    cancel.job_index = 1;
    cancel.dispatch = 2;
    cancel.reason = reason;
    const Solved<CancelFrame> cancel2 =
        try_parse_cancel_frame(to_text(cancel));
    ASSERT_TRUE(cancel2.ok()) << to_string(reason);
    EXPECT_EQ(cancel2.result.reason, reason);
  }

  HelloFrame hello;
  hello.pid = 31337;
  const Solved<HelloFrame> hello2 = try_parse_hello_frame(to_text(hello));
  ASSERT_TRUE(hello2.ok());
  EXPECT_EQ(hello2.result.pid, 31337);
}

TEST(Wire, FrameReaderReassemblesByteDribbles) {
  const std::string a = make_frame(kHeartbeatFormat, to_text(HeartbeatFrame{1}));
  const std::string b = make_frame(kHeartbeatFormat, to_text(HeartbeatFrame{2}));
  const std::string stream = a + b;

  FrameReader reader;
  std::vector<FrameReader::Frame> frames;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(stream.data() + i, 1);
    FrameReader::Frame frame;
    std::string error;
    FrameReader::Next next;
    while ((next = reader.next(&frame, &error)) == FrameReader::Next::kFrame)
      frames.push_back(frame);
    ASSERT_EQ(next, FrameReader::Next::kNeedMore) << error;
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].format, kHeartbeatFormat);
  const Solved<HeartbeatFrame> h0 = try_parse_heartbeat_frame(frames[0].payload);
  const Solved<HeartbeatFrame> h1 = try_parse_heartbeat_frame(frames[1].payload);
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(h0.result.sequence, 1u);
  EXPECT_EQ(h1.result.sequence, 2u);
}

TEST(Wire, FrameReaderPoisonsOnGarbledBytes) {
  std::string frame = make_frame(kHeartbeatFormat, to_text(HeartbeatFrame{7}));
  frame[frame.size() / 2] ^= 0x40;  // flip one payload/trailer bit

  FrameReader reader;
  reader.feed(frame.data(), frame.size());
  FrameReader::Frame out;
  std::string error;
  EXPECT_EQ(reader.next(&out, &error), FrameReader::Next::kCorrupt);
  EXPECT_FALSE(error.empty());
  // Poisoned permanently: clean bytes after the fact do not resurrect it.
  const std::string clean =
      make_frame(kHeartbeatFormat, to_text(HeartbeatFrame{8}));
  reader.feed(clean.data(), clean.size());
  EXPECT_EQ(reader.next(&out, &error), FrameReader::Next::kCorrupt);
}

TEST(Wire, FrameReaderRejectsNonEnvelopeBytes) {
  FrameReader reader;
  const std::string garbage = "this is not an artifact envelope\n";
  reader.feed(garbage.data(), garbage.size());
  FrameReader::Frame out;
  std::string error;
  EXPECT_EQ(reader.next(&out, &error), FrameReader::Next::kCorrupt);
}

TEST(Wire, FrameReaderStopsEarlyOnWrongPrefix) {
  // Even a PARTIAL read that already disagrees with the envelope magic is
  // rejected without waiting for more bytes (a worker killed mid-exec can
  // leave any prefix behind).
  FrameReader reader;
  const std::string junk = "XYZ";
  reader.feed(junk.data(), junk.size());
  FrameReader::Frame out;
  std::string error;
  EXPECT_EQ(reader.next(&out, &error), FrameReader::Next::kCorrupt);
}

TEST(Wire, TruncatedFrameStaysPending) {
  const std::string frame =
      make_frame(kHeartbeatFormat, to_text(HeartbeatFrame{5}));
  FrameReader reader;
  reader.feed(frame.data(), frame.size() - 4);  // torn mid-trailer
  FrameReader::Frame out;
  std::string error;
  EXPECT_EQ(reader.next(&out, &error), FrameReader::Next::kNeedMore);
  EXPECT_GT(reader.buffered(), 0u);
  reader.feed(frame.data() + frame.size() - 4, 4);
  EXPECT_EQ(reader.next(&out, &error), FrameReader::Next::kFrame);
}

}  // namespace
}  // namespace defender::supervise
