// WorkerPool functional coverage: the determinism contract (process-mode
// results bit-identical to the in-process engine at any worker count),
// the run_one hook surface the serve layer consumes, and the pool's
// steady-state liveness counters (docs/SUPERVISION.md).
#include "supervise/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/cancel.hpp"
#include "core/game.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "supervise/worker.hpp"

namespace defender::supervise {
namespace {

engine::SolveJob make_job(engine::JobSolver solver,
                          std::size_t iterations = 400,
                          double tolerance = 1e-9) {
  engine::SolveJob job{core::TupleGame(graph::petersen_graph(), 3, 1)};
  job.solver = solver;
  job.tolerance = tolerance;
  job.budget = SolveBudget::iterations(iterations);
  if (engine::is_weighted(solver))
    job.weights.assign(job.game.graph().num_vertices(), 1.0);
  return job;
}

std::vector<engine::SolveJob> mixed_batch() {
  std::vector<engine::SolveJob> jobs;
  for (engine::JobSolver solver : engine::kAllJobSolvers) {
    engine::SolveJob job = make_job(solver, 4000);
    if (solver == engine::JobSolver::kFictitiousPlay ||
        solver == engine::JobSolver::kWeightedFictitiousPlay ||
        solver == engine::JobSolver::kHedge)
      job.tolerance = 5e-2;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Every deterministic JobResult field (job.hpp's contract: everything
/// except elapsed timings).
void expect_identical(const engine::JobResult& a, const engine::JobResult& b) {
  EXPECT_EQ(a.job_index, b.job_index);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.status.code, b.status.code) << a.status.to_string() << " vs "
                                          << b.status.to_string();
  EXPECT_EQ(a.status.message, b.status.message);
  EXPECT_EQ(a.status.iterations, b.status.iterations);
  EXPECT_EQ(a.status.residual, b.status.residual);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.fallback_used, b.fallback_used);
  EXPECT_EQ(a.watchdog_killed, b.watchdog_killed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (std::size_t i = 0; i < a.attempts.size(); ++i) {
    EXPECT_EQ(a.attempts[i].attempt, b.attempts[i].attempt);
    EXPECT_EQ(a.attempts[i].action, b.attempts[i].action);
    EXPECT_EQ(a.attempts[i].solver, b.attempts[i].solver);
    EXPECT_EQ(a.attempts[i].outcome, b.attempts[i].outcome);
    EXPECT_EQ(a.attempts[i].value, b.attempts[i].value);
    EXPECT_EQ(a.attempts[i].lower, b.attempts[i].lower);
    EXPECT_EQ(a.attempts[i].upper, b.attempts[i].upper);
    EXPECT_EQ(a.attempts[i].iterations, b.attempts[i].iterations);
  }
}

TEST(WorkerPool, BatchBitIdenticalToInProcessEngineAtAnyWorkerCount) {
  const std::vector<engine::SolveJob> jobs = mixed_batch();

  engine::EngineConfig serial_config;
  serial_config.workers = 1;
  engine::SolveEngine serial(serial_config);
  const engine::BatchReport truth = serial.run(jobs);

  for (const std::size_t workers : {1u, 3u}) {
    PoolConfig config;
    config.workers = workers;
    WorkerPool pool(config);
    const SupervisedReport report = pool.run(jobs);
    ASSERT_EQ(report.batch.results.size(), truth.results.size())
        << workers << " workers";
    for (std::size_t i = 0; i < truth.results.size(); ++i)
      expect_identical(report.batch.results[i], truth.results[i]);
    EXPECT_EQ(report.batch.completed, truth.completed);
    EXPECT_EQ(report.batch.degraded, truth.degraded);
    EXPECT_EQ(report.batch.retries, truth.retries);
    EXPECT_EQ(report.worker_restarts, 0u);
    EXPECT_EQ(report.quarantined_jobs, 0u);
    EXPECT_EQ(pool.worker_pids().size(), workers);
  }
}

TEST(WorkerPool, RunOneMatchesEngineRunOne) {
  const engine::SolveJob job = make_job(engine::JobSolver::kDoubleOracle);

  engine::EngineConfig engine_config;
  engine::SolveEngine eng(engine_config);
  const engine::JobResult truth =
      eng.run_one(job, 17, engine::JobRunHooks{});

  PoolConfig config;
  config.workers = 2;
  WorkerPool pool(config);
  const engine::JobResult got =
      pool.run_one(job, 17, engine::JobRunHooks{});
  expect_identical(got, truth);
}

TEST(WorkerPool, RunOnePropagatesExternalCancel) {
  // A token cancelled before dispatch: the supervisor forwards the cancel
  // frame and the worker's first segment yields kCancelled truthfully.
  engine::SolveJob job = make_job(engine::JobSolver::kFictitiousPlay,
                                  2'000'000, 0.0);

  PoolConfig config;
  config.workers = 1;
  WorkerPool pool(config);

  CancelToken cancel;
  cancel.request_cancel();
  engine::JobRunHooks hooks;
  hooks.cancel = &cancel;
  const engine::JobResult result = pool.run_one(job, 0, hooks);
  EXPECT_EQ(result.status.code, StatusCode::kCancelled)
      << result.status.to_string();
}

TEST(WorkerPool, WatchdogKillsThroughTheCancelFrame) {
  engine::SolveJob job = make_job(engine::JobSolver::kFictitiousPlay,
                                  200'000'000, 0.0);
  job.watchdog_seconds = 0.2;

  PoolConfig config;
  config.workers = 1;
  WorkerPool pool(config);
  const SupervisedReport report = pool.run({job});
  ASSERT_EQ(report.batch.results.size(), 1u);
  const engine::JobResult& r = report.batch.results[0];
  EXPECT_EQ(r.status.code, StatusCode::kCancelled) << r.status.to_string();
  EXPECT_TRUE(r.watchdog_killed);
  EXPECT_EQ(report.batch.deadline_kills, 1u);
  // The worker survived the cancel — no restart was needed.
  EXPECT_EQ(report.worker_restarts, 0u);
}

TEST(WorkerPool, PublishesMetrics) {
  obs::MetricsRegistry metrics;
  PoolConfig config;
  config.workers = 2;
  config.metrics = &metrics;
  WorkerPool pool(config);
  pool.run({make_job(engine::JobSolver::kDoubleOracle)});
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("supervise.workers_alive"), std::string::npos) << json;
}

TEST(WorkerPool, SanitizesZeroWorkerConfig) {
  PoolConfig config;
  config.workers = 0;
  WorkerPool pool(config);
  EXPECT_GE(pool.config().workers, 1u);
  const SupervisedReport report =
      pool.run({make_job(engine::JobSolver::kZeroSumLp)});
  ASSERT_EQ(report.batch.results.size(), 1u);
  EXPECT_TRUE(report.batch.results[0].ok());
}

}  // namespace
}  // namespace defender::supervise
