// Crash-loop and poison-job coverage for the supervised pool: a job that
// kills its worker once is recovered bit-identically, a job that kills
// its worker `max_job_crashes` times is quarantined with a truthful
// kWorkerCrashed result, the pool restarts workers under backoff and
// stays at full strength, and hung workers walk the SIGTERM -> SIGKILL
// escalation (docs/SUPERVISION.md).
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/game.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/worker.hpp"

namespace defender::supervise {
namespace {

engine::SolveJob make_job(engine::JobSolver solver =
                              engine::JobSolver::kDoubleOracle) {
  engine::SolveJob job{core::TupleGame(graph::cycle_graph(6), 2, 2)};
  job.solver = solver;
  job.budget = SolveBudget::iterations(400);
  return job;
}

/// Polls for `ok` to become true: worker restarts happen asynchronously
/// under capped backoff, so full pool strength is EVENTUAL, not a
/// postcondition of run().
bool eventually(const std::function<bool()>& ok, double seconds = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return ok();
}

/// A plan that fires `site` on exactly the listed dispatch indices, found
/// by seed search against the pure schedule predicate — the same function
/// the worker consults, so the test and the worker can never disagree.
fault::FaultPlan plan_firing_on(fault::FaultSite site, bool on_dispatch0,
                                bool on_dispatch1) {
  fault::FaultPlan plan;
  plan.rate_of(site) = 0.5;
  for (std::uint64_t seed = 1; seed < 100'000; ++seed) {
    plan.seed = seed;
    if (fault::FaultContext::scheduled(plan, site, 0) == on_dispatch0 &&
        fault::FaultContext::scheduled(plan, site, 1) == on_dispatch1)
      return plan;
  }
  ADD_FAILURE() << "no seed found for the requested schedule";
  return plan;
}

TEST(Quarantine, CrashOnceIsRecoveredBitIdentically) {
  engine::SolveJob job = make_job();
  job.fault_plan =
      plan_firing_on(fault::FaultSite::kWorkerCrash, true, false);

  // Serial truth: the in-process engine never evaluates worker-crash, so
  // the armed plan leaves the result untouched (faults_injected == 0).
  engine::EngineConfig serial_config;
  serial_config.workers = 1;
  engine::SolveEngine serial(serial_config);
  const engine::BatchReport truth = serial.run({job});
  ASSERT_TRUE(truth.results[0].ok());

  PoolConfig config;
  config.workers = 1;
  WorkerPool pool(config);
  const SupervisedReport report = pool.run({job});
  ASSERT_EQ(report.batch.results.size(), 1u);
  const engine::JobResult& r = report.batch.results[0];
  EXPECT_EQ(r.status.code, StatusCode::kOk) << r.status.to_string();
  EXPECT_EQ(r.value, truth.results[0].value);
  EXPECT_EQ(r.lower_bound, truth.results[0].lower_bound);
  EXPECT_EQ(r.upper_bound, truth.results[0].upper_bound);
  EXPECT_EQ(r.iterations, truth.results[0].iterations);
  EXPECT_EQ(r.faults_injected, truth.results[0].faults_injected);
  EXPECT_EQ(report.worker_restarts, 1u);
  EXPECT_EQ(report.quarantined_jobs, 0u);
}

TEST(Quarantine, PoisonJobIsQuarantinedAndTheBatchSurvives) {
  // Job 1 kills its worker on every dispatch; jobs 0 and 2 are clean.
  std::vector<engine::SolveJob> jobs;
  jobs.push_back(make_job(engine::JobSolver::kDoubleOracle));
  engine::SolveJob poison = make_job();
  poison.fault_plan.seed = 7;
  poison.fault_plan.rate_of(fault::FaultSite::kWorkerCrash) = 1.0;
  jobs.push_back(poison);
  jobs.push_back(make_job(engine::JobSolver::kZeroSumLp));

  engine::EngineConfig serial_config;
  serial_config.workers = 1;
  engine::SolveEngine serial(serial_config);
  const engine::BatchReport truth = serial.run(jobs);

  PoolConfig config;
  config.workers = 2;
  WorkerPool pool(config);
  const SupervisedReport report = pool.run(jobs);
  ASSERT_EQ(report.batch.results.size(), 3u);

  // The poison job: truthful terminal kWorkerCrashed, a-priori bracket,
  // no fabricated attempt history.
  const engine::JobResult& q = report.batch.results[1];
  EXPECT_EQ(q.status.code, StatusCode::kWorkerCrashed)
      << q.status.to_string();
  EXPECT_FALSE(q.status.message.empty());
  EXPECT_EQ(q.lower_bound, 0.0);
  EXPECT_GT(q.upper_bound, 0.0);
  EXPECT_GE(q.value, q.lower_bound);
  EXPECT_LE(q.value, q.upper_bound);
  EXPECT_TRUE(q.attempts.empty());
  EXPECT_EQ(report.quarantined_jobs, 1u);
  // Default max_job_crashes = 2: the poison job killed its worker twice.
  // Both deaths are answered with a restart, but the second may still be
  // in its backoff window when run() returns.
  EXPECT_GE(report.worker_restarts, 1u);
  EXPECT_TRUE(eventually([&] { return pool.worker_restarts() == 2; }))
      << pool.worker_restarts();

  // Non-faulted neighbours: bit-identical to the serial engine.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const engine::JobResult& r = report.batch.results[i];
    const engine::JobResult& t = truth.results[i];
    EXPECT_EQ(r.status.code, t.status.code);
    EXPECT_EQ(r.value, t.value);
    EXPECT_EQ(r.lower_bound, t.lower_bound);
    EXPECT_EQ(r.upper_bound, t.upper_bound);
    EXPECT_EQ(r.iterations, t.iterations);
    EXPECT_EQ(r.attempts.size(), t.attempts.size());
  }

  // The pool recovers to full strength and still serves clean work.
  EXPECT_TRUE(eventually([&] { return pool.worker_pids().size() == 2; }))
      << pool.worker_pids().size();
  const SupervisedReport after = pool.run({make_job()});
  ASSERT_EQ(after.batch.results.size(), 1u);
  EXPECT_TRUE(after.batch.results[0].ok());
}

TEST(Quarantine, ConfigurableCrashThreshold) {
  engine::SolveJob poison = make_job();
  poison.fault_plan.seed = 3;
  poison.fault_plan.rate_of(fault::FaultSite::kWorkerCrash) = 1.0;

  PoolConfig config;
  config.workers = 1;
  config.max_job_crashes = 4;
  WorkerPool pool(config);
  const SupervisedReport report = pool.run({poison});
  const engine::JobResult& r = report.batch.results[0];
  EXPECT_EQ(r.status.code, StatusCode::kWorkerCrashed);
  // Four kills were attributed before giving up; every death eventually
  // gets its restart (the last may outlive run()'s return).
  EXPECT_TRUE(eventually([&] { return pool.worker_restarts() == 4; }))
      << pool.worker_restarts();
  EXPECT_EQ(pool.quarantined_jobs(), 1u);
}

TEST(Quarantine, HungWorkerWalksTheEscalation) {
  // worker-hang suppresses heartbeats and shields SIGTERM, so only the
  // heartbeat deadline + SIGKILL escalation can reclaim the worker.
  engine::SolveJob hang = make_job();
  hang.fault_plan.seed = 11;
  hang.fault_plan.rate_of(fault::FaultSite::kWorkerHang) = 1.0;

  PoolConfig config;
  config.workers = 1;
  config.heartbeat_interval_seconds = 0.02;
  config.heartbeat_timeout_seconds = 0.4;
  config.term_grace_seconds = 0.2;
  WorkerPool pool(config);
  const SupervisedReport report = pool.run({hang});
  ASSERT_EQ(report.batch.results.size(), 1u);
  EXPECT_EQ(report.batch.results[0].status.code, StatusCode::kWorkerCrashed);
  EXPECT_GE(report.heartbeat_misses, 2u);
  // Both hang kills restart the worker, but the second restart may still
  // be in its backoff window when run() returns.
  EXPECT_GE(report.worker_restarts, 1u);
  EXPECT_TRUE(eventually([&] { return pool.worker_restarts() == 2; }))
      << pool.worker_restarts();

  // Escalation over, the pool still serves clean work.
  const SupervisedReport after = pool.run({make_job()});
  EXPECT_TRUE(after.batch.results[0].ok());
}

}  // namespace
}  // namespace defender::supervise
