// Custom gtest main for the supervise suites: these binaries HOST pool
// workers (the supervisor re-execs /proc/self/exe), so the worker
// trampoline must run before anything else — including gtest's own
// argument parsing, which would reject the sentinel argv.
#include <gtest/gtest.h>

#include "supervise/worker.hpp"

int main(int argc, char** argv) {
  defender::supervise::worker_trampoline(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
