#include "matching/blossom.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/brute_force.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/random.hpp"

namespace defender::matching {
namespace {

TEST(Blossom, OddCycleMatchesFloorHalf) {
  EXPECT_EQ(max_matching(graph::cycle_graph(5)).size(), 2u);
  EXPECT_EQ(max_matching(graph::cycle_graph(7)).size(), 3u);
  EXPECT_EQ(max_matching(graph::cycle_graph(9)).size(), 4u);
}

TEST(Blossom, EvenCyclePerfect) {
  EXPECT_EQ(max_matching(graph::cycle_graph(8)).size(), 4u);
}

TEST(Blossom, CompleteGraphs) {
  EXPECT_EQ(max_matching(graph::complete_graph(6)).size(), 3u);
  EXPECT_EQ(max_matching(graph::complete_graph(7)).size(), 3u);
}

TEST(Blossom, PetersenHasPerfectMatching) {
  const Matching m = max_matching(graph::petersen_graph());
  EXPECT_EQ(m.size(), 5u);
  EXPECT_TRUE(is_valid_matching(graph::petersen_graph(), m.edges()));
}

TEST(Blossom, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 3 attached to 0: maximum matching = 2.
  const Graph g = graph::GraphBuilder(4)
                      .add_edge(0, 1)
                      .add_edge(1, 2)
                      .add_edge(0, 2)
                      .add_edge(0, 3)
                      .build();
  EXPECT_EQ(max_matching(g).size(), 2u);
}

TEST(Blossom, TwoTrianglesJoinedByBridge) {
  // Classic blossom-shrinking exercise: two triangles joined by an edge.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
  b.add_edge(2, 3);
  const Matching m = max_matching(b.build());
  EXPECT_EQ(m.size(), 3u);
}

TEST(Blossom, StarMatchesOneEdge) {
  EXPECT_EQ(max_matching(graph::star_graph(9)).size(), 1u);
}

TEST(Blossom, WheelGraphs) {
  EXPECT_EQ(max_matching(graph::wheel_graph(5)).size(), 3u);   // 6 vertices
  EXPECT_EQ(max_matching(graph::wheel_graph(6)).size(), 3u);   // 7 vertices
}

TEST(Blossom, AgreesWithHopcroftKarpOnBipartiteGraphs) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(seed);
    const Graph g = graph::random_bipartite(5, 6, 0.35, rng,
                                            /*forbid_isolated=*/false);
    if (g.num_edges() == 0) continue;
    EXPECT_EQ(max_matching(g).size(), max_bipartite_matching(g).size())
        << "seed " << seed;
  }
}

TEST(Blossom, MatchesBruteForceOnRandomGeneralGraphs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 4 + seed % 7;
    const Graph g = graph::gnp_graph(n, 0.45, rng, /*forbid_isolated=*/false);
    if (g.num_edges() == 0 || g.num_edges() > 18) continue;
    const Matching m = max_matching(g);
    EXPECT_TRUE(is_valid_matching(g, m.edges())) << "seed " << seed;
    EXPECT_EQ(m.size(), brute_force::max_matching_size(g)) << "seed " << seed;
  }
}

TEST(Blossom, HandlesLargerRandomGraphsWithoutViolation) {
  util::Rng rng(123);
  const Graph g = graph::gnp_graph(120, 0.05, rng);
  const Matching m = max_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m.edges()));
  EXPECT_GT(m.size(), 0u);
}

class BlossomCycleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlossomCycleSweep, CycleMatchingIsFloorHalf) {
  const std::size_t n = GetParam();
  EXPECT_EQ(max_matching(graph::cycle_graph(n)).size(), n / 2);
}

INSTANTIATE_TEST_SUITE_P(Cycles, BlossomCycleSweep,
                         ::testing::Range<std::size_t>(3, 20));

}  // namespace
}  // namespace defender::matching
