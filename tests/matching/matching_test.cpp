#include "matching/matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace defender::matching {
namespace {

TEST(Matching, EmptyMatchingHasNoMates) {
  const Matching m(4);
  EXPECT_EQ(m.size(), 0u);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(m.mate(v), kUnmatched);
    EXPECT_FALSE(m.is_matched(v));
  }
}

TEST(Matching, AddSetsBothMates) {
  const Graph g = graph::path_graph(4);
  Matching m(4);
  m.add(g, *g.edge_id(1, 2));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.mate(1), 2u);
  EXPECT_EQ(m.mate(2), 1u);
  EXPECT_FALSE(m.is_matched(0));
}

TEST(Matching, AddRejectsOverlappingEdge) {
  const Graph g = graph::path_graph(4);
  Matching m(4);
  m.add(g, *g.edge_id(1, 2));
  EXPECT_THROW(m.add(g, *g.edge_id(2, 3)), ContractViolation);
}

TEST(Matching, ConstructorValidatesDisjointness) {
  const Graph g = graph::path_graph(4);
  EXPECT_NO_THROW(Matching(g, {*g.edge_id(0, 1), *g.edge_id(2, 3)}));
  EXPECT_THROW(Matching(g, {*g.edge_id(0, 1), *g.edge_id(1, 2)}),
               ContractViolation);
}

TEST(Matching, MatchedVerticesSorted) {
  const Graph g = graph::path_graph(6);
  Matching m(6);
  m.add(g, *g.edge_id(4, 5));
  m.add(g, *g.edge_id(0, 1));
  EXPECT_EQ(m.matched_vertices(), (std::vector<Vertex>{0, 1, 4, 5}));
}

TEST(IsValidMatching, DetectsBadEdgeIds) {
  const Graph g = graph::path_graph(3);
  EXPECT_FALSE(is_valid_matching(g, std::vector<EdgeId>{7}));
  EXPECT_TRUE(is_valid_matching(g, std::vector<EdgeId>{0}));
  EXPECT_FALSE(is_valid_matching(g, std::vector<EdgeId>{0, 1}));
}

TEST(FromMates, RoundTripsAndValidates) {
  const Graph g = graph::cycle_graph(6);
  std::vector<Vertex> mates(6, kUnmatched);
  mates[0] = 1;
  mates[1] = 0;
  mates[3] = 4;
  mates[4] = 3;
  const Matching m = from_mates(g, mates);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.mate(3), 4u);
}

TEST(FromMates, RejectsAsymmetricMates) {
  const Graph g = graph::cycle_graph(4);
  std::vector<Vertex> mates(4, kUnmatched);
  mates[0] = 1;  // 1 does not point back
  EXPECT_THROW(from_mates(g, mates), ContractViolation);
}

TEST(FromMates, RejectsNonEdgePairs) {
  const Graph g = graph::path_graph(4);
  std::vector<Vertex> mates(4, kUnmatched);
  mates[0] = 3;
  mates[3] = 0;
  EXPECT_THROW(from_mates(g, mates), ContractViolation);
}

}  // namespace
}  // namespace defender::matching
