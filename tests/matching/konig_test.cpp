#include "matching/konig.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/brute_force.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::matching {
namespace {

void expect_valid_konig(const Graph& g) {
  const KonigResult r = konig_vertex_cover(g);
  EXPECT_TRUE(graph::is_vertex_cover(g, r.vertex_cover));
  EXPECT_TRUE(graph::is_independent_set(g, r.independent_set));
  EXPECT_EQ(r.vertex_cover.size() + r.independent_set.size(),
            g.num_vertices());
  EXPECT_EQ(r.vertex_cover.size(), r.matching.size());
}

TEST(Konig, PathGraph) {
  const Graph g = graph::path_graph(7);
  expect_valid_konig(g);
  EXPECT_EQ(konig_vertex_cover(g).vertex_cover.size(), 3u);
}

TEST(Konig, EvenCycle) {
  const Graph g = graph::cycle_graph(8);
  expect_valid_konig(g);
  EXPECT_EQ(konig_vertex_cover(g).vertex_cover.size(), 4u);
}

TEST(Konig, StarNeedsOnlyTheHub) {
  const Graph g = graph::star_graph(6);
  const KonigResult r = konig_vertex_cover(g);
  EXPECT_EQ(r.vertex_cover, (graph::VertexSet{0}));
  EXPECT_EQ(r.independent_set.size(), 6u);
}

TEST(Konig, CompleteBipartiteCoverIsSmallerPart) {
  const KonigResult r = konig_vertex_cover(graph::complete_bipartite(3, 5));
  EXPECT_EQ(r.vertex_cover.size(), 3u);
}

TEST(Konig, RejectsNonBipartite) {
  EXPECT_THROW(konig_vertex_cover(graph::cycle_graph(5)), ContractViolation);
}

TEST(Konig, MatchesBruteForceMinimumOnRandomBipartite) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    util::Rng rng(seed);
    const Graph g = graph::random_bipartite(4, 5, 0.4, rng,
                                            /*forbid_isolated=*/false);
    if (g.num_edges() == 0) continue;
    expect_valid_konig(g);
    EXPECT_EQ(konig_vertex_cover(g).vertex_cover.size(),
              brute_force::min_vertex_cover_size(g))
        << "seed " << seed;
  }
}

TEST(Konig, IndependentSetIsMaximumByComplement) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    util::Rng rng(seed);
    const Graph g = graph::random_bipartite(5, 5, 0.35, rng,
                                            /*forbid_isolated=*/false);
    if (g.num_edges() == 0) continue;
    const KonigResult r = konig_vertex_cover(g);
    EXPECT_EQ(r.independent_set.size(),
              brute_force::max_independent_set_size(g))
        << "seed " << seed;
  }
}

class KonigGridSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(KonigGridSweep, GridCoverEqualsMatchingSize) {
  const auto [r, c] = GetParam();
  const Graph g = graph::grid_graph(r, c);
  expect_valid_konig(g);
  // Grid graphs have a perfect or near-perfect matching: cover = floor(rc/2).
  EXPECT_EQ(konig_vertex_cover(g).vertex_cover.size(), (r * c) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, KonigGridSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4),
                       ::testing::Values<std::size_t>(2, 3, 5)));

}  // namespace
}  // namespace defender::matching
