#include "matching/edge_cover.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/blossom.hpp"
#include "matching/brute_force.hpp"
#include "matching/greedy.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::matching {
namespace {

TEST(MinEdgeCover, GallaiIdentityOnFamilies) {
  // |min edge cover| = n - |max matching| (Gallai).
  EXPECT_EQ(min_edge_cover_size(graph::path_graph(7)), 7u - 3u);
  EXPECT_EQ(min_edge_cover_size(graph::cycle_graph(8)), 8u - 4u);
  EXPECT_EQ(min_edge_cover_size(graph::cycle_graph(9)), 9u - 4u);
  EXPECT_EQ(min_edge_cover_size(graph::star_graph(5)), 5u);
  EXPECT_EQ(min_edge_cover_size(graph::complete_graph(6)), 3u);
  EXPECT_EQ(min_edge_cover_size(graph::petersen_graph()), 5u);
}

TEST(MinEdgeCover, ProducesAValidCoverOfTheRightSize) {
  const Graph g = graph::petersen_graph();
  const graph::EdgeSet cover = min_edge_cover(g);
  EXPECT_TRUE(graph::is_edge_cover(g, cover));
  EXPECT_EQ(cover.size(), min_edge_cover_size(g));
}

TEST(MinEdgeCover, RejectsIsolatedVertices) {
  const Graph g = graph::GraphBuilder(3).add_edge(0, 1).build();
  EXPECT_THROW(min_edge_cover(g), ContractViolation);
  EXPECT_THROW(min_edge_cover_size(g), ContractViolation);
}

TEST(MinEdgeCover, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 4 + seed % 5;
    const Graph g = graph::gnp_graph(n, 0.5, rng, /*forbid_isolated=*/true);
    if (g.num_edges() > 20) continue;
    const graph::EdgeSet cover = min_edge_cover(g);
    EXPECT_TRUE(graph::is_edge_cover(g, cover)) << "seed " << seed;
    EXPECT_EQ(cover.size(), brute_force::min_edge_cover_size(g))
        << "seed " << seed;
  }
}

TEST(EdgeCoverFromMatching, NonMaximumMatchingStillYieldsAValidCover) {
  // The ablation path: a greedy matching may be smaller, so the resulting
  // cover may be larger, but it must still cover every vertex.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const Graph g = graph::gnp_graph(12, 0.25, rng);
    const graph::EdgeSet cover = edge_cover_from_matching(g, greedy_matching(g));
    EXPECT_TRUE(graph::is_edge_cover(g, cover)) << "seed " << seed;
    EXPECT_GE(cover.size(), min_edge_cover_size(g)) << "seed " << seed;
  }
}

TEST(GreedyMatching, IsValidAndMaximal) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const Graph g = graph::gnp_graph(15, 0.2, rng);
    const Matching m = greedy_matching(g);
    EXPECT_TRUE(is_valid_matching(g, m.edges()));
    // Maximality: every edge has a matched endpoint.
    for (const graph::Edge& e : g.edges())
      EXPECT_TRUE(m.is_matched(e.u) || m.is_matched(e.v)) << "seed " << seed;
  }
}

TEST(GreedyMatching, AtLeastHalfOfMaximum) {
  for (std::uint64_t seed = 40; seed < 60; ++seed) {
    util::Rng rng(seed);
    const Graph g = graph::gnp_graph(14, 0.3, rng);
    EXPECT_GE(2 * greedy_matching(g).size(), max_matching(g).size())
        << "seed " << seed;
  }
}

class EdgeCoverPathSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EdgeCoverPathSweep, PathCoverIsCeilHalf) {
  const std::size_t n = GetParam();
  // P_n: max matching floor(n/2), so min edge cover = n - floor(n/2).
  EXPECT_EQ(min_edge_cover_size(graph::path_graph(n)), n - n / 2);
}

INSTANTIATE_TEST_SUITE_P(Paths, EdgeCoverPathSweep,
                         ::testing::Range<std::size_t>(2, 16));

}  // namespace
}  // namespace defender::matching
