#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/brute_force.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace defender::matching {
namespace {

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  const Graph g = graph::complete_bipartite(4, 4);
  const Matching m = max_bipartite_matching(g);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(is_valid_matching(g, m.edges()));
}

TEST(HopcroftKarp, UnbalancedPartsMatchSmallerSide) {
  const Graph g = graph::complete_bipartite(3, 7);
  EXPECT_EQ(max_bipartite_matching(g).size(), 3u);
}

TEST(HopcroftKarp, PathGraphMatchesFloorHalf) {
  EXPECT_EQ(max_bipartite_matching(graph::path_graph(7)).size(), 3u);
  EXPECT_EQ(max_bipartite_matching(graph::path_graph(8)).size(), 4u);
}

TEST(HopcroftKarp, EvenCyclePerfect) {
  EXPECT_EQ(max_bipartite_matching(graph::cycle_graph(10)).size(), 5u);
}

TEST(HopcroftKarp, StarMatchesOneEdge) {
  EXPECT_EQ(max_bipartite_matching(graph::star_graph(5)).size(), 1u);
}

TEST(HopcroftKarp, HypercubePerfectMatching) {
  EXPECT_EQ(max_bipartite_matching(graph::hypercube_graph(4)).size(), 8u);
}

TEST(HopcroftKarp, RejectsOddCycle) {
  EXPECT_THROW(max_bipartite_matching(graph::cycle_graph(5)),
               ContractViolation);
}

TEST(HopcroftKarp, RestrictedSidesIgnoreOtherEdges) {
  // Triangle with explicit sides {0} vs {1, 2}: only the 0-1 and 0-2 edges
  // participate; the 1-2 edge is ignored, so the matching has size 1.
  const Graph g = graph::complete_graph(3);
  const Matching m = hopcroft_karp(g, std::vector<graph::Vertex>{0},
                                   std::vector<graph::Vertex>{1, 2});
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.is_matched(0));
}

TEST(HopcroftKarp, RejectsOverlappingSides) {
  const Graph g = graph::path_graph(3);
  EXPECT_THROW(hopcroft_karp(g, std::vector<graph::Vertex>{0, 1},
                             std::vector<graph::Vertex>{1, 2}),
               ContractViolation);
}

TEST(HopcroftKarp, MatchesBruteForceOnRandomBipartiteGraphs) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    util::Rng rng(seed);
    const std::size_t a = 2 + seed % 5, b = 2 + (seed / 5) % 5;
    const Graph g = graph::random_bipartite(a, b, 0.4, rng,
                                            /*forbid_isolated=*/false);
    if (g.num_edges() == 0) continue;
    const Matching m = max_bipartite_matching(g);
    EXPECT_TRUE(is_valid_matching(g, m.edges())) << "seed " << seed;
    EXPECT_EQ(m.size(), brute_force::max_matching_size(g)) << "seed " << seed;
  }
}

class HopcroftKarpFamilies
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(HopcroftKarpFamilies, CompleteBipartiteMatchesMinPart) {
  const auto [a, b] = GetParam();
  const Graph g = graph::complete_bipartite(a, b);
  EXPECT_EQ(max_bipartite_matching(g).size(), std::min(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HopcroftKarpFamilies,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8),
                       ::testing::Values<std::size_t>(1, 2, 4, 7)));

}  // namespace
}  // namespace defender::matching
