// The stress-harness board corpus, shared between the stress binary and the
// differential test suites.
//
// `random_board` is THE generator zoo of tests/stress/stress_defender.cpp:
// thirteen board families, each small enough that every solver route
// terminates quickly. The differential simplex suite (tests/lp) replays the
// same corpus through `core::coverage_matrix`, so "bit-equal on the stress
// corpus" in docs/SIMPLEX.md means bit-equal on exactly the boards the
// stress harness throws at the full solver stack.
#pragma once

#include <algorithm>
#include <cstddef>

#include "core/game.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace defender::test_corpus {

/// Tuple-space cap keeping the exact LP small and fast (mirrors the stress
/// harness bound).
inline constexpr std::uint64_t kMaxLpTuples = 2'000;

/// Draws one board from the generator zoo (small enough that every solver
/// route terminates quickly).
inline graph::Graph random_board(util::Rng& rng) {
  switch (rng.range(0, 12)) {
    case 0: return graph::path_graph(static_cast<std::size_t>(rng.range(4, 9)));
    case 1: return graph::cycle_graph(static_cast<std::size_t>(rng.range(4, 9)));
    case 2: return graph::complete_graph(static_cast<std::size_t>(rng.range(4, 6)));
    case 3:
      return graph::complete_bipartite(
          static_cast<std::size_t>(rng.range(2, 4)),
          static_cast<std::size_t>(rng.range(2, 4)));
    case 4: return graph::star_graph(static_cast<std::size_t>(rng.range(3, 8)));
    case 5:
      return graph::grid_graph(2, static_cast<std::size_t>(rng.range(2, 4)));
    case 6: return graph::wheel_graph(static_cast<std::size_t>(rng.range(4, 7)));
    case 7: return graph::ladder_graph(static_cast<std::size_t>(rng.range(2, 5)));
    case 8: return graph::petersen_graph();
    case 9: return graph::hypercube_graph(3);
    case 10:
      return graph::random_tree(static_cast<std::size_t>(rng.range(4, 10)), rng);
    case 11:
      return graph::random_connected(
          static_cast<std::size_t>(rng.range(5, 9)), 0.5, rng);
    default:
      return graph::barabasi_albert(
          static_cast<std::size_t>(rng.range(5, 10)), 2, rng);
  }
}

/// Largest k <= `want` whose C(m, k) fits the LP cap.
inline std::size_t pick_k(const graph::Graph& g, std::size_t want,
                          std::size_t nu) {
  for (std::size_t k = want; k >= 1; --k) {
    const core::TupleGame game(g, k, nu);
    if (game.num_tuples() <= kMaxLpTuples) return k;
  }
  return 1;
}

/// One random tuple game over the zoo, with k capped so the LP enumerates.
inline core::TupleGame random_game(util::Rng& rng) {
  const graph::Graph g = random_board(rng);
  const std::size_t nu = static_cast<std::size_t>(rng.range(1, 3));
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(rng.range(1, 4)), g.num_edges());
  return core::TupleGame(g, pick_k(g, want, nu), nu);
}

}  // namespace defender::test_corpus
