// Wire-protocol hardening: the JSONL request parser must reject every
// malformed, hostile, or over-budget document with kInvalidInput (never a
// crash or unbounded allocation), and every response builder must emit
// valid RFC 8259 JSON. Mirrors the hardened-parse suites for checkpoint
// and cache files.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "../obs/json_check.hpp"
#include "engine/job.hpp"
#include "obs/metrics.hpp"
#include "serve_test_util.hpp"

namespace defender::serve {
namespace {

std::string solve_line(const std::string& extra = "") {
  return "{\"type\":\"solve\",\"id\":\"j1\",\"client\":\"alice\","
         "\"solver\":\"double-oracle\",\"n\":4,\"k\":1,\"attackers\":1,"
         "\"edges\":[[0,1],[1,2],[2,3],[3,0]]" +
         extra + "}";
}

// ---- parse_json ----

TEST(ServeJson, ParsesScalarsArraysAndObjects) {
  EXPECT_TRUE(parse_json("null").ok());
  EXPECT_TRUE(parse_json("true").ok());
  EXPECT_TRUE(parse_json("-1.5e3").ok());
  EXPECT_TRUE(parse_json("\"a\\u0041b\"").ok());
  EXPECT_TRUE(parse_json("[1,[2,[3]]]").ok());
  const Solved<JsonValue> doc = parse_json("{\"a\":1,\"b\":[true,null]}");
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc.result.find("b"), nullptr);
  EXPECT_EQ(doc.result.find("b")->items.size(), 2u);
  EXPECT_EQ(doc.result.find("missing"), nullptr);
}

TEST(ServeJson, RejectsMalformedDocumentsWithByteOffsets) {
  const char* bad[] = {
      "",           "{",           "[1,]",       "{\"a\":}",
      "{\"a\" 1}",  "tru",         "01",         "1.",
      "+1",         "\"\\x\"",     "\"\\u12\"",  "\"unterminated",
      "{\"a\":1,}", "[1 2]",       "nul",        "{1:2}",
  };
  for (const char* text : bad) {
    const Solved<JsonValue> doc = parse_json(text);
    EXPECT_FALSE(doc.ok()) << text;
    EXPECT_EQ(doc.status.code, StatusCode::kInvalidInput) << text;
    EXPECT_NE(doc.status.message.find("byte "), std::string::npos) << text;
  }
}

TEST(ServeJson, RejectsTrailingGarbage) {
  const Solved<JsonValue> doc = parse_json("{} extra");
  EXPECT_FALSE(doc.ok());
  EXPECT_NE(doc.status.message.find("trailing garbage"), std::string::npos);
}

TEST(ServeJson, RejectsDuplicateObjectKeys) {
  EXPECT_FALSE(parse_json("{\"a\":1,\"a\":2}").ok());
}

TEST(ServeJson, BoundsNestingDepth) {
  std::string deep;
  for (std::size_t i = 0; i <= kMaxRequestDepth; ++i) deep += '[';
  deep += '1';
  for (std::size_t i = 0; i <= kMaxRequestDepth; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).ok());
  // One level inside the cap parses.
  std::string ok;
  for (std::size_t i = 0; i + 1 < kMaxRequestDepth; ++i) ok += '[';
  ok += '1';
  for (std::size_t i = 0; i + 1 < kMaxRequestDepth; ++i) ok += ']';
  EXPECT_TRUE(parse_json(ok).ok());
}

TEST(ServeJson, BoundsNodeCountAndLineBytes) {
  std::string many = "[";
  for (std::size_t i = 0; i <= kMaxRequestNodes; ++i) {
    if (i != 0) many += ',';
    many += '1';
    if (many.size() > kMaxRequestBytes) break;  // whichever cap hits first
  }
  many += ']';
  EXPECT_FALSE(parse_json(many).ok());

  const std::string oversize(kMaxRequestBytes + 1, ' ');
  const Solved<JsonValue> doc = parse_json(oversize);
  EXPECT_FALSE(doc.ok());
  EXPECT_NE(doc.status.message.find("exceeds"), std::string::npos);
}

TEST(ServeJson, BoundsStringBytes) {
  const std::string long_string =
      "\"" + std::string(kMaxRequestStringBytes + 1, 'a') + "\"";
  EXPECT_FALSE(parse_json(long_string).ok());
}

// ---- valid_id ----

TEST(ServeProtocol, ValidIdCharsetAndLength) {
  EXPECT_TRUE(valid_id("alice"));
  EXPECT_TRUE(valid_id("A-Z_0.9:x"));
  EXPECT_TRUE(valid_id(std::string(kMaxIdBytes, 'a')));
  EXPECT_FALSE(valid_id(""));
  EXPECT_FALSE(valid_id(std::string(kMaxIdBytes + 1, 'a')));
  EXPECT_FALSE(valid_id("has space"));
  EXPECT_FALSE(valid_id("new\nline"));
  EXPECT_FALSE(valid_id("quote\""));
  EXPECT_FALSE(valid_id("slash/"));
}

// ---- try_parse_request ----

TEST(ServeProtocol, SolveRequestRoundTrips) {
  const Solved<Request> req = try_parse_request(solve_line(
      ",\"tolerance\":1e-6,\"iters\":500,\"wall_seconds\":2.5,"
      "\"oracle_nodes\":1000"));
  ASSERT_TRUE(req.ok()) << req.status.to_string();
  EXPECT_EQ(req.result.type, RequestType::kSolve);
  EXPECT_EQ(req.result.client, "alice");
  EXPECT_EQ(req.result.id, "j1");
  EXPECT_EQ(req.result.solver, engine::JobSolver::kDoubleOracle);
  EXPECT_EQ(req.result.n, 4u);
  EXPECT_EQ(req.result.k, 1u);
  EXPECT_EQ(req.result.edges.size(), 4u);
  EXPECT_EQ(req.result.tolerance, 1e-6);
  EXPECT_EQ(req.result.max_iterations, 500u);
  EXPECT_EQ(req.result.wall_clock_seconds, 2.5);
  EXPECT_EQ(req.result.oracle_node_budget, 1000u);
}

TEST(ServeProtocol, ControlRequestsRoundTrip) {
  const Solved<Request> ping = try_parse_request(
      "{\"type\":\"ping\",\"id\":\"p1\",\"client\":\"c\"}");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.result.type, RequestType::kPing);

  const Solved<Request> cancel = try_parse_request(
      "{\"type\":\"cancel\",\"id\":\"c1\",\"client\":\"c\","
      "\"cancel\":\"j1\"}");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel.result.type, RequestType::kCancel);
  EXPECT_EQ(cancel.result.cancel_id, "j1");
}

TEST(ServeProtocol, RejectsHostileRequests) {
  const struct {
    const char* why;
    std::string line;
  } cases[] = {
      {"not an object", "[1,2,3]"},
      {"missing type", "{\"id\":\"a\",\"client\":\"c\"}"},
      {"unknown type",
       "{\"type\":\"exec\",\"id\":\"a\",\"client\":\"c\"}"},
      {"missing id", "{\"type\":\"ping\",\"client\":\"c\"}"},
      {"bad id charset",
       "{\"type\":\"ping\",\"id\":\"a b\",\"client\":\"c\"}"},
      {"bad client",
       "{\"type\":\"ping\",\"id\":\"a\",\"client\":\"\"}"},
      {"cancel without target",
       "{\"type\":\"cancel\",\"id\":\"a\",\"client\":\"c\"}"},
      {"unknown solver", "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
                         "\"solver\":\"simplex\",\"n\":2,\"edges\":[[0,1]]}"},
      {"missing n", "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
                    "\"solver\":\"hedge\",\"edges\":[[0,1]]}"},
      {"n zero", "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
                 "\"solver\":\"hedge\",\"n\":0,\"edges\":[[0,1]]}"},
      {"n over cap",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":99999999,\"edges\":[[0,1]]}"},
      {"fractional n", "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
                       "\"solver\":\"hedge\",\"n\":2.5,\"edges\":[[0,1]]}"},
      {"edge endpoint out of range",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[0,2]]}"},
      {"negative endpoint",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[-1,0]]}"},
      {"self loop", "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
                    "\"solver\":\"hedge\",\"n\":2,\"edges\":[[1,1]]}"},
      {"edge not a pair",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[0,1,2]]}"},
      {"empty edges", "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
                      "\"solver\":\"hedge\",\"n\":2,\"edges\":[]}"},
      {"weighted solver without weights",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"weighted-fictitious-play\",\"n\":2,"
       "\"edges\":[[0,1]]}"},
      {"unweighted solver with weights",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[0,1]],"
       "\"weights\":[1,1]}"},
      {"negative weight",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"weighted-fictitious-play\",\"n\":2,"
       "\"edges\":[[0,1]],\"weights\":[1,-1]}"},
      {"negative tolerance",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[0,1]],"
       "\"tolerance\":-1}"},
      {"non-finite wall clock",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[0,1]],"
       "\"wall_seconds\":1e999}"},
      {"unknown key (typo fails loudly)",
       "{\"type\":\"solve\",\"id\":\"a\",\"client\":\"c\","
       "\"solver\":\"hedge\",\"n\":2,\"edges\":[[0,1]],"
       "\"iterations\":5}"},
  };
  for (const auto& c : cases) {
    const Solved<Request> req = try_parse_request(c.line);
    EXPECT_FALSE(req.ok()) << c.why;
    EXPECT_EQ(req.status.code, StatusCode::kInvalidInput) << c.why;
  }
}

// ---- to_job ----

TEST(ServeProtocol, ToJobBuildsTheRequestedJob) {
  const serve::Request req = serve_test::cycle_request(
      "c", "j", 6, engine::JobSolver::kFictitiousPlay, 500, 1e-3);
  std::optional<engine::SolveJob> job;
  ASSERT_TRUE(to_job(req, &job).ok());
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->solver, engine::JobSolver::kFictitiousPlay);
  EXPECT_EQ(job->game.graph().num_vertices(), 6u);
  EXPECT_EQ(job->game.k(), 2u);
  EXPECT_EQ(job->budget.max_iterations, 500u);
  EXPECT_EQ(job->tolerance, 1e-3);
}

TEST(ServeProtocol, ToJobRejectsBoardsTheGameCannotHost) {
  // Isolated vertex: n=3 but only one edge.
  serve::Request req = serve_test::quick_request("c", "j");
  req.n = 3;
  req.edges = {{0, 1}};
  req.k = 1;
  std::optional<engine::SolveJob> job;
  EXPECT_EQ(to_job(req, &job).code, StatusCode::kInvalidInput);
  EXPECT_FALSE(job.has_value());

  // k larger than the board's edge count.
  serve::Request big_k = serve_test::quick_request("c", "j2");
  big_k.k = 500;
  EXPECT_EQ(to_job(big_k, &job).code, StatusCode::kInvalidInput);
}

// ---- response builders ----

bool is_valid(const std::string& doc) {
  defender::test_json::Parser parser(doc);
  return parser.valid();
}

TEST(ServeProtocol, ResponsesAreValidJson) {
  EXPECT_TRUE(is_valid(ack_response("j1")));
  EXPECT_TRUE(is_valid(pong_response("p1")));
  EXPECT_TRUE(is_valid(shutdown_response("s1")));
  EXPECT_TRUE(is_valid(error_response("e1", StatusCode::kOverloaded,
                                      "queue full \"now\"\n", 250)));
  obs::MetricsRegistry registry;
  registry.counter("serve.admitted").add(3);
  registry.gauge("serve.queue_depth").set(2);
  EXPECT_TRUE(is_valid(metrics_response("m1", registry)));

  engine::JobResult result;
  result.status = Status::make(StatusCode::kOk, "done");
  EXPECT_TRUE(is_valid(result_response("r1", result)));
}

TEST(ServeProtocol, ErrorResponseCarriesRetryAfterOnlyWhenPositive) {
  const std::string hinted =
      error_response("e", StatusCode::kOverloaded, "busy", 125.5);
  EXPECT_NE(hinted.find("\"retry_after_ms\":125.5"), std::string::npos);
  const std::string plain =
      error_response("e", StatusCode::kInvalidInput, "bad");
  EXPECT_EQ(plain.find("retry_after_ms"), std::string::npos);
}

TEST(ServeProtocol, ResponsesEscapeHostileIds) {
  // Ids are validated on the request path, but the builders must still be
  // safe for any string (error responses echo ids from malformed lines).
  const std::string doc =
      error_response("evil\"\n\\id", StatusCode::kInvalidInput, "x");
  EXPECT_TRUE(is_valid(doc)) << doc;
}

}  // namespace
}  // namespace defender::serve
