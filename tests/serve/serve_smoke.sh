#!/usr/bin/env bash
# End-to-end drain/restart smoke for defender_serve (docs/SERVE.md).
#
#   1. Reference run: solve the smoke batch uninterrupted, transcript A.
#   2. Interrupted run: SIGTERM the server as soon as the first result
#      lands, so the in-flight jobs are checkpointed into a drain
#      manifest and the queued ones are swept along (transcript B1).
#   3. Restart with --resume: the unfinished jobs finish into the
#      --resume-report (transcript B2).
#   4. sort(B1 + B2) must be BYTE-IDENTICAL to sort(A): the engine's
#      determinism contract says an interrupted-and-resumed batch reports
#      exactly what the uninterrupted batch reported.
#
# Environment: DEFENDER_SERVE_BIN and DEFENDER_CLI_BIN point at the built
# binaries (set by the ctest registration in tests/CMakeLists.txt).
set -u

SERVE_BIN="${DEFENDER_SERVE_BIN:?DEFENDER_SERVE_BIN not set}"
CLI_BIN="${DEFENDER_CLI_BIN:?DEFENDER_CLI_BIN not set}"
DATA_DIR="$(cd "$(dirname "$0")/../data" && pwd)"
BOARD="$DATA_DIR/board_serve_smoke.txt"
BATCH="$DATA_DIR/batch_serve_smoke.txt"
JOBS=4  # lines in $BATCH

WORK="$(mktemp -d)"
SERVER_PID=""
CLIENT_PID=""
cleanup() {
  [ -n "$CLIENT_PID" ] && kill "$CLIENT_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

die() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- server logs ---" >&2
  cat "$WORK"/server*.log 2>/dev/null >&2
  exit 1
}

# Waits for $1 to exist, be non-empty, and (as a port file) readable.
wait_file() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

# Waits until file $1 has at least $2 lines.
wait_lines() {
  for _ in $(seq 1 600); do
    [ "$(wc -l < "$1" 2>/dev/null || echo 0)" -ge "$2" ] && return 0
    sleep 0.1
  done
  return 1
}

start_server() { # args: port-file log-file extra-args...
  local port_file="$1" log_file="$2"
  shift 2
  "$SERVE_BIN" --tcp 127.0.0.1:0 --jobs 2 --retry-ladder attempts=1 \
    --port-file "$port_file" "$@" > "$log_file" 2>&1 &
  SERVER_PID=$!
  wait_file "$port_file" || die "server never wrote $port_file"
}

stop_server() {
  kill -TERM "$SERVER_PID" 2>/dev/null
  wait "$SERVER_PID"
  local code=$?
  SERVER_PID=""
  [ "$code" -eq 0 ] || die "server exited $code on SIGTERM"
}

# ---- 1. uninterrupted reference run -> report A ----
start_server "$WORK/port_a" "$WORK/server_a.log"
"$CLI_BIN" --batch "$BATCH" --connect "127.0.0.1:$(cat "$WORK/port_a")" \
  --client smoke --report "$WORK/A" "$BOARD" > /dev/null \
  || die "reference client failed"
stop_server
[ "$(wc -l < "$WORK/A")" -eq "$JOBS" ] \
  || die "reference run delivered $(wc -l < "$WORK/A")/$JOBS results"

# ---- 2. interrupted run: SIGTERM after the first result -> B1 ----
# --drain-deadline 0.2 so the still-running jobs are cancelled (and
# checkpointed) promptly instead of finishing inside the grace window.
start_server "$WORK/port_b" "$WORK/server_b.log" \
  --drain-manifest "$WORK/manifest" --drain-deadline 0.2
"$CLI_BIN" --batch "$BATCH" --connect "127.0.0.1:$(cat "$WORK/port_b")" \
  --client smoke --report "$WORK/B1" "$BOARD" > /dev/null 2>&1 &
CLIENT_PID=$!
wait_lines "$WORK/B1" 1 || die "no result arrived before the kill window"
stop_server
wait "$CLIENT_PID" 2>/dev/null
CLIENT_PID=""

[ -s "$WORK/manifest" ] || die "drain produced no manifest"
grep -q '^defender-drain v1$' "$WORK/manifest" \
  || die "manifest missing its version header"
B1_COUNT=$(wc -l < "$WORK/B1")
MANIFESTED=$(grep -c '^job ' "$WORK/manifest")
[ $((B1_COUNT + MANIFESTED)) -eq "$JOBS" ] \
  || die "delivered($B1_COUNT) + manifested($MANIFESTED) != $JOBS"
# The kill landed while jobs were mid-first-attempt, so at least one
# manifested job must carry a real checkpoint block.
grep -q '^checkpoint [1-9]' "$WORK/manifest" \
  || die "no checkpointed job in the manifest (drain missed the capture)"

# ---- 3. restart with --resume -> B2 ----
: > "$WORK/B2"
start_server "$WORK/port_c" "$WORK/server_c.log" \
  --resume "$WORK/manifest" --resume-report "$WORK/B2"
wait_lines "$WORK/B2" "$MANIFESTED" \
  || die "resumed server delivered $(wc -l < "$WORK/B2")/$MANIFESTED"
stop_server
grep -q '^defender_serve: drained 0 ' "$WORK/server_c.log" \
  || die "resumed server still had unfinished jobs at shutdown"

# ---- 4. byte-identical union ----
sort "$WORK/A" > "$WORK/want"
cat "$WORK/B1" "$WORK/B2" | sort > "$WORK/got"
if ! diff -u "$WORK/want" "$WORK/got" > "$WORK/diff"; then
  cat "$WORK/diff" >&2
  die "resumed results differ from the uninterrupted run"
fi

echo "serve_smoke: OK ($B1_COUNT delivered before SIGTERM, $MANIFESTED resumed, bit-identical union)"
exit 0
