// The "defender-drain v1" manifest and the resume determinism contract:
// round-trips are byte-stable, hostile manifests are rejected with
// 1-based line numbers, and a drained job — whether it re-runs fresh or
// resumes an embedded checkpoint — reports a JobResult bit-identical
// (JobResult::to_json comparison; timings excluded by construction) to
// the uninterrupted run's. See docs/SERVE.md.
#include "serve/drain.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/checkpoint.hpp"
#include "engine/engine.hpp"
#include "engine/retry.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve_test_util.hpp"

namespace defender::serve {
namespace {

using serve_test::cycle_request;
using serve_test::quick_request;

engine::SolveJob build_job(const Request& request) {
  std::optional<engine::SolveJob> job;
  const Status status = to_job(request, &job);
  EXPECT_TRUE(status.ok()) << status.to_string();
  return std::move(*job);
}

/// Runs fictitious play on C_12 to completion and, separately, cancels it
/// at `cancel_poll` with capture armed — the raw material every resume
/// test builds on.
struct CapturedRun {
  engine::JobResult uninterrupted;
  engine::JobResult cancelled;
  core::SolverCheckpoint checkpoint;
  bool captured = false;
};

CapturedRun capture_run(const engine::SolveEngine& engine,
                        const Request& request, std::size_t job_index,
                        std::uint64_t cancel_poll) {
  CapturedRun out;
  out.uninterrupted =
      engine.run_one(build_job(request), job_index, engine::JobRunHooks{});

  CancelToken cancel;
  cancel.cancel_after_polls(cancel_poll);
  engine::JobRunHooks hooks;
  hooks.cancel = &cancel;
  hooks.capture = &out.checkpoint;
  hooks.captured = &out.captured;
  out.cancelled = engine.run_one(build_job(request), job_index, hooks);
  return out;
}

// ---- manifest round-trip ----

TEST(DrainManifest, RoundTripsJobsWithAndWithoutCheckpoints) {
  engine::EngineConfig config;
  config.retry = engine::RetryPolicy::none();
  const engine::SolveEngine engine(config);
  const Request slow = cycle_request(
      "alice", "fp-1", 12, engine::JobSolver::kFictitiousPlay, 4000, 1e-15);
  const CapturedRun run = capture_run(engine, slow, 7, 100);
  ASSERT_TRUE(run.captured);
  ASSERT_EQ(run.cancelled.status.code, StatusCode::kCancelled);

  DrainManifest manifest;
  DrainedJob with_cp;
  with_cp.client = "alice";
  with_cp.request_id = "fp-1";
  with_cp.job_index = 7;
  with_cp.spec = slow;
  with_cp.checkpoint_text = core::to_text(run.checkpoint);
  manifest.jobs.push_back(with_cp);

  DrainedJob fresh;
  fresh.client = "bob";
  fresh.request_id = "do-2";
  fresh.job_index = 9;
  fresh.spec = cycle_request("bob", "do-2", 8,
                             engine::JobSolver::kWeightedDoubleOracle, 300);
  fresh.spec.wall_clock_seconds = 1.5;
  manifest.jobs.push_back(fresh);

  const std::string text = to_text(manifest);
  const Solved<DrainManifest> parsed = try_parse_drain_manifest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  ASSERT_EQ(parsed.result.jobs.size(), 2u);

  const DrainedJob& a = parsed.result.jobs[0];
  EXPECT_EQ(a.client, "alice");
  EXPECT_EQ(a.request_id, "fp-1");
  EXPECT_EQ(a.job_index, 7u);
  EXPECT_EQ(a.spec.solver, engine::JobSolver::kFictitiousPlay);
  EXPECT_EQ(a.spec.n, 12u);
  EXPECT_EQ(a.spec.edges, slow.edges);
  EXPECT_EQ(a.spec.tolerance, slow.tolerance);
  EXPECT_EQ(a.checkpoint_text, with_cp.checkpoint_text);

  const DrainedJob& b = parsed.result.jobs[1];
  EXPECT_EQ(b.spec.solver, engine::JobSolver::kWeightedDoubleOracle);
  EXPECT_EQ(b.spec.weights.size(), 8u);
  EXPECT_EQ(b.spec.wall_clock_seconds, 1.5);
  EXPECT_TRUE(b.checkpoint_text.empty());

  // Serialization is a fixed point: parse(to_text(m)) re-serializes to
  // the same bytes.
  EXPECT_EQ(to_text(parsed.result), text);
}

TEST(DrainManifest, EmptyManifestRoundTrips) {
  const DrainManifest empty;
  const Solved<DrainManifest> parsed =
      try_parse_drain_manifest(to_text(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.result.jobs.empty());
}

// ---- hostile manifests ----

std::string valid_manifest_text() {
  DrainManifest manifest;
  DrainedJob job;
  job.client = "c";
  job.request_id = "r";
  job.job_index = 0;
  job.spec = quick_request("c", "r");
  manifest.jobs.push_back(job);
  return to_text(manifest);
}

TEST(DrainManifest, RejectsHostileManifestsWithLineNumbers) {
  const struct {
    const char* why;
    std::string text;
  } cases[] = {
      {"empty input", ""},
      {"wrong magic", "defender-cache v1\nend\n"},
      {"future version", "defender-drain v2\njobs 0\nend\n"},
      {"malformed version", "defender-drain vX\njobs 0\nend\n"},
      {"missing jobs line", "defender-drain v1\nend\n"},
      {"negative job count", "defender-drain v1\njobs -1\nend\n"},
      {"job count over cap", "defender-drain v1\njobs 999999999\nend\n"},
      {"truncated job list", "defender-drain v1\njobs 1\nend\n"},
      {"missing end trailer", "defender-drain v1\njobs 0\n"},
      {"bad job ids",
       "defender-drain v1\njobs 1\njob 0 bad/client r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"trailing tokens on job line",
       "defender-drain v1\njobs 1\njob 0 c r extra\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"unknown solver",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec simplex 2 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"zero n",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 0 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"non-finite tolerance",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 inf 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"edge endpoint out of range",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 2\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"edge list shorter than declared",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 2 0 1\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"no edges",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 0\nweights 0\n"
       "checkpoint 0\nend\n"},
      {"unweighted job carries weights",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 1\nweights 1 1\n"
       "checkpoint 0\nend\n"},
      {"weighted job with wrong weight count",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec weighted-fictitious-play 2 1 1 0 10 0 0\nedges 1 0 1\n"
       "weights 1 1\ncheckpoint 0\nend\n"},
      {"negative weight",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec weighted-fictitious-play 2 1 1 0 10 0 0\nedges 1 0 1\n"
       "weights 2 1 -1\ncheckpoint 0\nend\n"},
      {"checkpoint line count over cap",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 99999999\nend\n"},
      {"truncated checkpoint block",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 3\ndefender-checkpoint v1\nend\n"},
      {"garbage embedded checkpoint",
       "defender-drain v1\njobs 1\njob 0 c r\n"
       "spec double-oracle 2 1 1 0 10 0 0\nedges 1 0 1\nweights 0\n"
       "checkpoint 1\nnot-a-checkpoint\nend\n"},
  };
  for (const auto& c : cases) {
    const Solved<DrainManifest> parsed = try_parse_drain_manifest(c.text);
    EXPECT_FALSE(parsed.ok()) << c.why;
    EXPECT_EQ(parsed.status.code, StatusCode::kInvalidInput) << c.why;
    EXPECT_NE(parsed.status.message.find("line "), std::string::npos)
        << c.why << ": " << parsed.status.message;
  }
  // Sanity: the template the hostile cases were derived from parses.
  EXPECT_TRUE(try_parse_drain_manifest(valid_manifest_text()).ok());
}

TEST(DrainManifest, RejectsLpJobWithEmbeddedCheckpoint) {
  // A checkpoint block that parses, attached to the solver that cannot
  // resume one. Grab real checkpoint text from a cancelled FP solve.
  engine::EngineConfig config;
  config.retry = engine::RetryPolicy::none();
  const engine::SolveEngine engine(config);
  const Request slow = cycle_request(
      "c", "r", 12, engine::JobSolver::kFictitiousPlay, 4000, 1e-15);
  const CapturedRun run = capture_run(engine, slow, 0, 50);
  ASSERT_TRUE(run.captured);

  DrainManifest manifest;
  DrainedJob job;
  job.client = "c";
  job.request_id = "r";
  job.spec = quick_request("c", "r");
  job.spec.solver = engine::JobSolver::kZeroSumLp;
  job.checkpoint_text = core::to_text(run.checkpoint);
  manifest.jobs.push_back(job);

  const Solved<DrainManifest> parsed =
      try_parse_drain_manifest(to_text(manifest));
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status.message.find("zero-sum-lp"), std::string::npos);
}

// ---- engine-level resume determinism (run_one + JobRunHooks) ----

TEST(DrainResume, CheckpointResumeIsBitIdenticalSingleAttempt) {
  engine::EngineConfig config;
  config.retry = engine::RetryPolicy::none();
  const engine::SolveEngine engine(config);

  const Request slow = cycle_request(
      "c", "r", 12, engine::JobSolver::kFictitiousPlay, 3000, 1e-15);
  // Cancel at several depths; each captured checkpoint must resume to the
  // uninterrupted answer bit for bit.
  for (const std::uint64_t cancel_poll : {10u, 100u, 1000u}) {
    const CapturedRun run = capture_run(engine, slow, 3, cancel_poll);
    ASSERT_TRUE(run.captured) << "poll " << cancel_poll;
    ASSERT_EQ(run.cancelled.status.code, StatusCode::kCancelled);

    engine::JobRunHooks resume_hooks;
    resume_hooks.resume = &run.checkpoint;
    const engine::JobResult resumed =
        engine.run_one(build_job(slow), 3, resume_hooks);
    EXPECT_EQ(resumed.to_json(), run.uninterrupted.to_json())
        << "poll " << cancel_poll;
  }
}

TEST(DrainResume, CheckpointResumeWalksTheFullRetryLadder) {
  // Multi-rung trajectory: the resumed first attempt must anchor ladder
  // growth on the ORIGINAL budget so later rungs match the uninterrupted
  // run exactly.
  engine::EngineConfig config;
  config.retry.max_attempts = 3;
  config.retry.budget_growth = 4.0;
  const engine::SolveEngine engine(config);

  const Request slow = cycle_request(
      "c", "r", 12, engine::JobSolver::kFictitiousPlay, 200, 1e-15);
  const CapturedRun run = capture_run(engine, slow, 11, 60);
  ASSERT_TRUE(run.captured);
  // The uninterrupted run should have walked more than one rung.
  ASSERT_GT(run.uninterrupted.attempts.size(), 1u);

  engine::JobRunHooks resume_hooks;
  resume_hooks.resume = &run.checkpoint;
  const engine::JobResult resumed =
      engine.run_one(build_job(slow), 11, resume_hooks);
  EXPECT_EQ(resumed.to_json(), run.uninterrupted.to_json());
}

TEST(DrainResume, ManifestCheckpointTextResumesAfterRoundTrip) {
  // End to end through the serialization: capture -> manifest text ->
  // parse -> resume from the parsed checkpoint.
  engine::EngineConfig config;
  config.retry = engine::RetryPolicy::none();
  const engine::SolveEngine engine(config);
  const Request slow = cycle_request(
      "c", "r", 12, engine::JobSolver::kFictitiousPlay, 3000, 1e-15);
  const CapturedRun run = capture_run(engine, slow, 5, 500);
  ASSERT_TRUE(run.captured);

  DrainManifest manifest;
  DrainedJob job;
  job.client = "c";
  job.request_id = "r";
  job.job_index = 5;
  job.spec = slow;
  job.checkpoint_text = core::to_text(run.checkpoint);
  manifest.jobs.push_back(job);

  const Solved<DrainManifest> parsed =
      try_parse_drain_manifest(to_text(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  const Solved<core::SolverCheckpoint> checkpoint =
      core::try_parse_checkpoint(parsed.result.jobs[0].checkpoint_text);
  ASSERT_TRUE(checkpoint.status.ok());

  engine::JobRunHooks resume_hooks;
  resume_hooks.resume = &checkpoint.result;
  const engine::JobResult resumed =
      engine.run_one(build_job(parsed.result.jobs[0].spec), 5, resume_hooks);
  EXPECT_EQ(resumed.to_json(), run.uninterrupted.to_json());
}

TEST(DrainResume, LpJobsRejectResumeAndNeverCapture) {
  engine::EngineConfig config;
  config.retry = engine::RetryPolicy::none();
  const engine::SolveEngine engine(config);
  const Request lp =
      cycle_request("c", "r", 6, engine::JobSolver::kZeroSumLp, 2000);

  // A cancelled LP job must not claim a capturable checkpoint.
  CancelToken cancel;
  cancel.request_cancel();
  core::SolverCheckpoint checkpoint;
  bool captured = false;
  engine::JobRunHooks hooks;
  hooks.cancel = &cancel;
  hooks.capture = &checkpoint;
  hooks.captured = &captured;
  (void)engine.run_one(build_job(lp), 0, hooks);
  EXPECT_FALSE(captured);

  // And resuming an LP job is kInvalidInput, not a silent fresh run.
  const Request fp = cycle_request(
      "c", "r2", 12, engine::JobSolver::kFictitiousPlay, 3000, 1e-15);
  const CapturedRun run = capture_run(engine, fp, 0, 50);
  ASSERT_TRUE(run.captured);
  engine::JobRunHooks resume_hooks;
  resume_hooks.resume = &run.checkpoint;
  const engine::JobResult result =
      engine.run_one(build_job(lp), 0, resume_hooks);
  EXPECT_EQ(result.status.code, StatusCode::kInvalidInput);
}

// ---- service-level drain determinism, two worker counts ----

TEST(DrainService, DrainPlusResumeMatchesUninterruptedAtTwoWorkerCounts) {
  // 8 jobs; drain mid-flight; a fresh service resumes the manifest. The
  // union of (delivered before drain) and (delivered after resume) must
  // equal the uninterrupted run's results byte for byte — at 1 and at 3
  // workers, pinning worker-count invariance of the whole path.
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    const std::string id = "job-" + std::to_string(i);
    requests.push_back(
        i % 2 == 0
            ? cycle_request("alice", id, 10,
                            engine::JobSolver::kFictitiousPlay, 2500, 1e-15)
            : cycle_request("bob", id, 8, engine::JobSolver::kDoubleOracle,
                            300));
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    ServiceConfig config;
    config.workers = workers;
    config.engine.retry = engine::RetryPolicy::none();

    // Uninterrupted reference.
    serve_test::Collector reference;
    {
      SolveService service(config);
      for (const Request& r : requests) {
        const Admission a =
            service.submit(r, reference.sink(r.client, r.id));
        ASSERT_TRUE(a.admitted()) << a.message;
      }
      ASSERT_TRUE(reference.wait_for(requests.size()));
    }

    // Interrupted: admit everything, drain immediately (deadline 0 so
    // running jobs are cancelled at once), resume in a fresh service.
    serve_test::Collector before;
    DrainManifest manifest;
    {
      SolveService service(config);
      for (const Request& r : requests) {
        const Admission a = service.submit(r, before.sink(r.client, r.id));
        ASSERT_TRUE(a.admitted()) << a.message;
      }
      manifest = service.drain(0.0);
      EXPECT_EQ(service.queue_depth(), 0u);
      EXPECT_EQ(service.running_count(), 0u);
    }

    serve_test::Collector after;
    {
      SolveService resumed(config);
      serve_test::Collector* sink = &after;
      const std::size_t n = resumed.resume(
          manifest, [sink](const engine::JobResult& result) {
            std::lock_guard<std::mutex> lock(sink->mu);
            sink->results.emplace("resumed-" + std::to_string(result.job_index),
                                  result);
            sink->order.push_back(std::to_string(result.job_index));
            sink->cv.notify_all();
          });
      EXPECT_EQ(n, manifest.jobs.size());
      ASSERT_TRUE(after.wait_for(manifest.jobs.size()));
    }

    // Reassemble by job index: submission order == job_index on both
    // sides, and the manifest preserves indices across the restart.
    ASSERT_EQ(before.count() + after.count(), requests.size())
        << "workers=" << workers;
    std::map<std::size_t, std::string> merged;
    for (const auto& [key, result] : before.results) {
      // Jobs cancelled by the drain deadline are manifested, not
      // delivered, so everything delivered pre-drain is terminal.
      (void)key;
      merged[result.job_index] = result.to_json();
    }
    for (const auto& [key, result] : after.results) {
      (void)key;
      ASSERT_EQ(merged.count(result.job_index), 0u)
          << "job " << result.job_index << " both delivered and resumed";
      merged[result.job_index] = result.to_json();
    }
    std::map<std::size_t, std::string> expected;
    for (const auto& [key, result] : reference.results) {
      (void)key;
      expected[result.job_index] = result.to_json();
    }
    EXPECT_EQ(merged, expected) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace defender::serve
