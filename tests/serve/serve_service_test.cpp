// SolveService behavior: admission control with watermark hysteresis,
// per-client quotas (token bucket + max-inflight), weighted-fair dequeue
// order, cancellation, drain gauge lifecycle, and the engine-side gauge
// lifecycle (engine.batch_active / engine.queue_depth / engine.inflight
// return to zero after every batch).
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/retry.hpp"
#include "obs/metrics.hpp"
#include "serve_test_util.hpp"

namespace defender::serve {
namespace {

using serve_test::Collector;
using serve_test::quick_request;
using serve_test::slow_request;

/// Spins until the service reports `n` running jobs (worker pickup is
/// asynchronous); fails the test on timeout instead of hanging.
void wait_for_running(const SolveService& service, std::size_t n,
                      double seconds = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (service.running_count() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "service never reached " << n << " running jobs";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

double gauge_value(const obs::MetricsRegistry& registry,
                   const std::string& name) {
  for (const obs::MetricSnapshot& m : registry.snapshot())
    if (m.name == name && m.kind == obs::MetricSnapshot::Kind::kGauge)
      return m.value;
  return -1;  // absent
}

std::uint64_t counter_value(const obs::MetricsRegistry& registry,
                            const std::string& name) {
  for (const obs::MetricSnapshot& m : registry.snapshot())
    if (m.name == name && m.kind == obs::MetricSnapshot::Kind::kCounter)
      return m.count;
  return 0;
}

TEST(SolveService, AdmitsSolvesAndDeliversResults) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 2;
  config.engine.metrics = &registry;
  SolveService service(config);

  Collector collector;
  for (int i = 0; i < 4; ++i) {
    const Request req = quick_request("alice", "q" + std::to_string(i));
    const Admission admission =
        service.submit(req, collector.sink("alice", req.id));
    ASSERT_TRUE(admission.admitted()) << admission.message;
  }
  ASSERT_TRUE(collector.wait_for(4));
  for (const auto& [key, result] : collector.results) {
    EXPECT_EQ(result.status.code, StatusCode::kOk) << key;
    EXPECT_GE(result.value, result.lower_bound);
    EXPECT_LE(result.value, result.upper_bound);
  }
  EXPECT_EQ(counter_value(registry, "serve.admitted"), 4u);
  EXPECT_EQ(counter_value(registry, "serve.completed"), 4u);
  EXPECT_EQ(counter_value(registry, "serve.rejected"), 0u);
}

TEST(SolveService, RejectsNonSolveAndOverBudgetRequests) {
  ServiceConfig config;
  config.max_budget_iterations = 1000;
  SolveService service(config);

  Request ping;
  ping.type = RequestType::kPing;
  ping.client = "c";
  ping.id = "p";
  EXPECT_EQ(service.submit(ping, nullptr).code, StatusCode::kInvalidInput);

  Request greedy = quick_request("c", "g");
  greedy.max_iterations = 1001;
  const Admission admission = service.submit(greedy, nullptr);
  EXPECT_EQ(admission.code, StatusCode::kInvalidInput);
  EXPECT_NE(admission.message.find("cap"), std::string::npos);

  // Build failures (board the game cannot host) reject as kInvalidInput.
  Request bad = quick_request("c", "b");
  bad.k = 500;
  EXPECT_EQ(service.submit(bad, nullptr).code, StatusCode::kInvalidInput);
}

TEST(SolveService, WatermarkHysteresisRejectsAndRecovers) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 1;
  config.queue_high_watermark = 4;
  config.queue_low_watermark = 2;
  config.retry_after_ms = 125;
  config.engine.metrics = &registry;
  SolveService service(config);

  Collector collector;
  // Park the single worker on a long cancellable job.
  ASSERT_TRUE(service
                  .submit(slow_request("blocker", "slow"),
                          collector.sink("blocker", "slow"))
                  .admitted());
  wait_for_running(service, 1);

  // Fill the queue to the high watermark.
  for (int i = 0; i < 4; ++i) {
    const Request req = quick_request("alice", "q" + std::to_string(i));
    ASSERT_TRUE(
        service.submit(req, collector.sink("alice", req.id)).admitted());
  }
  ASSERT_EQ(service.queue_depth(), 4u);

  // At the watermark: kOverloaded with the configured retry-after hint.
  const Admission rejected =
      service.submit(quick_request("alice", "q4"), nullptr);
  EXPECT_EQ(rejected.code, StatusCode::kOverloaded);
  EXPECT_EQ(rejected.retry_after_ms, 125);
  EXPECT_NE(rejected.message.find("watermark"), std::string::npos);
  EXPECT_EQ(gauge_value(registry, "serve.admitting"), 0);

  // Hysteresis: dropping to 3 queued (>= low watermark) still rejects.
  EXPECT_TRUE(service.cancel("alice", "q0"));
  ASSERT_EQ(service.queue_depth(), 3u);
  EXPECT_EQ(service.submit(quick_request("alice", "q5"), nullptr).code,
            StatusCode::kOverloaded);

  // Below the low watermark admission resumes.
  EXPECT_TRUE(service.cancel("alice", "q1"));
  EXPECT_TRUE(service.cancel("alice", "q2"));
  ASSERT_EQ(service.queue_depth(), 1u);
  EXPECT_TRUE(service
                  .submit(quick_request("alice", "q6"),
                          collector.sink("alice", "q6"))
                  .admitted());
  EXPECT_EQ(gauge_value(registry, "serve.admitting"), 1);
  EXPECT_EQ(counter_value(registry, "serve.rejected_overload"), 2u);

  // Unblock and finish cleanly.
  EXPECT_TRUE(service.cancel("blocker", "slow"));
  // slow + q0..q2 cancelled + q3 + q6 = 6 deliveries with a sink.
  ASSERT_TRUE(collector.wait_for(6));
}

TEST(SolveService, TokenBucketRateLimitsPerClient) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 1;
  config.tokens_per_second = 0.001;  // effectively no refill mid-test
  config.token_burst = 2;
  config.engine.metrics = &registry;
  SolveService service(config);

  Collector collector;
  ASSERT_TRUE(service
                  .submit(quick_request("alice", "a0"),
                          collector.sink("alice", "a0"))
                  .admitted());
  ASSERT_TRUE(service
                  .submit(quick_request("alice", "a1"),
                          collector.sink("alice", "a1"))
                  .admitted());
  const Admission rejected =
      service.submit(quick_request("alice", "a2"), nullptr);
  EXPECT_EQ(rejected.code, StatusCode::kOverloaded);
  EXPECT_GT(rejected.retry_after_ms, 0);
  EXPECT_NE(rejected.message.find("rate limit"), std::string::npos);

  // The bucket is per client: bob is unaffected by alice's spend.
  EXPECT_TRUE(service
                  .submit(quick_request("bob", "b0"),
                          collector.sink("bob", "b0"))
                  .admitted());
  EXPECT_EQ(counter_value(registry, "serve.quota_hits"), 1u);
  ASSERT_TRUE(collector.wait_for(3));
}

TEST(SolveService, MaxInflightCapsQueuedPlusRunning) {
  ServiceConfig config;
  config.workers = 1;
  config.max_inflight_per_client = 2;
  SolveService service(config);

  Collector collector;
  ASSERT_TRUE(service
                  .submit(slow_request("alice", "s0"),
                          collector.sink("alice", "s0"))
                  .admitted());
  wait_for_running(service, 1);
  ASSERT_TRUE(service
                  .submit(quick_request("alice", "s1"),
                          collector.sink("alice", "s1"))
                  .admitted());
  // 1 running + 1 queued = at the cap.
  const Admission rejected =
      service.submit(quick_request("alice", "s2"), nullptr);
  EXPECT_EQ(rejected.code, StatusCode::kOverloaded);
  EXPECT_NE(rejected.message.find("inflight"), std::string::npos);
  // Other clients are unaffected.
  EXPECT_TRUE(service
                  .submit(quick_request("bob", "b0"),
                          collector.sink("bob", "b0"))
                  .admitted());

  EXPECT_TRUE(service.cancel("alice", "s0"));
  ASSERT_TRUE(collector.wait_for(3));
  // With the slot freed the client can submit again.
  EXPECT_TRUE(service
                  .submit(quick_request("alice", "s2"),
                          collector.sink("alice", "s2"))
                  .admitted());
  ASSERT_TRUE(collector.wait_for(4));
}

TEST(SolveService, WeightedFairDequeueOrderIsDeterministic) {
  // One worker, parked on a cancellable job while we stage the queues:
  // client "a" at weight 4, client "b" at weight 1. Virtual times step
  // 1/4 vs 1 per dequeue, ties break lexicographically, so the dequeue
  // (== delivery) order is exactly a1 b1 a2 a3 a4 b2 b3 b4.
  ServiceConfig config;
  config.workers = 1;
  config.client_weights["a"] = 4;
  config.client_weights["b"] = 1;
  SolveService service(config);

  Collector collector;
  ASSERT_TRUE(service
                  .submit(slow_request("z", "block"),
                          collector.sink("z", "block"))
                  .admitted());
  wait_for_running(service, 1);

  for (int i = 1; i <= 4; ++i) {
    const Request a = quick_request("a", "a" + std::to_string(i));
    const Request b = quick_request("b", "b" + std::to_string(i));
    ASSERT_TRUE(service.submit(a, collector.sink("a", a.id)).admitted());
    ASSERT_TRUE(service.submit(b, collector.sink("b", b.id)).admitted());
  }
  ASSERT_EQ(service.queue_depth(), 8u);
  ASSERT_TRUE(service.cancel("z", "block"));
  ASSERT_TRUE(collector.wait_for(9));

  const std::vector<std::string> expected = {
      "z/block", "a/a1", "b/b1", "a/a2", "a/a3",
      "a/a4",    "b/b2", "b/b3", "b/b4"};
  EXPECT_EQ(collector.order, expected);
}

TEST(SolveService, DuplicateActiveIdsRejectedUntilTerminal) {
  ServiceConfig config;
  config.workers = 1;
  SolveService service(config);

  Collector collector;
  ASSERT_TRUE(service
                  .submit(slow_request("c", "dup"),
                          collector.sink("c", "dup"))
                  .admitted());
  const Admission dup = service.submit(slow_request("c", "dup"), nullptr);
  EXPECT_EQ(dup.code, StatusCode::kInvalidInput);
  EXPECT_NE(dup.message.find("already active"), std::string::npos);

  EXPECT_TRUE(service.cancel("c", "dup"));
  ASSERT_TRUE(collector.wait_for(1));
  // Terminal ids are reusable.
  EXPECT_TRUE(service
                  .submit(quick_request("c", "dup"),
                          collector.sink("c", "dup2"))
                  .admitted());
  ASSERT_TRUE(collector.wait_for(2));
}

TEST(SolveService, CancelSemantics) {
  ServiceConfig config;
  config.workers = 1;
  SolveService service(config);

  Collector collector;
  EXPECT_FALSE(service.cancel("nobody", "nothing"));

  // Running: truthful kCancelled with a sound bracket.
  ASSERT_TRUE(service
                  .submit(slow_request("c", "run"),
                          collector.sink("c", "run"))
                  .admitted());
  wait_for_running(service, 1);
  // Queued behind it: synthesized kCancelled without ever running.
  ASSERT_TRUE(service
                  .submit(quick_request("c", "queued"),
                          collector.sink("c", "queued"))
                  .admitted());
  EXPECT_TRUE(service.cancel("c", "queued"));
  EXPECT_TRUE(service.cancel("c", "run"));
  ASSERT_TRUE(collector.wait_for(2));
  EXPECT_FALSE(service.cancel("c", "run"))
      << "cancel finds nothing once the job is terminal";
  const engine::JobResult& queued = collector.results.at("c/queued");
  EXPECT_EQ(queued.status.code, StatusCode::kCancelled);
  EXPECT_EQ(queued.iterations, 0u);
  const engine::JobResult& run = collector.results.at("c/run");
  EXPECT_EQ(run.status.code, StatusCode::kCancelled);
  EXPECT_LE(run.lower_bound, run.value);
  EXPECT_GE(run.upper_bound, run.value);
}

TEST(SolveService, GaugesZeroAfterDrainAndSubmitsRejected) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 2;
  config.engine.metrics = &registry;
  SolveService service(config);

  Collector collector;
  for (int i = 0; i < 3; ++i) {
    const Request req = slow_request("c", "s" + std::to_string(i));
    ASSERT_TRUE(
        service.submit(req, collector.sink("c", req.id)).admitted());
  }
  wait_for_running(service, 2);
  EXPECT_EQ(gauge_value(registry, "serve.inflight"), 2);
  EXPECT_EQ(gauge_value(registry, "serve.queue_depth"), 1);

  const DrainManifest manifest = service.drain(0.0);
  EXPECT_EQ(manifest.jobs.size(), 3u);
  EXPECT_FALSE(service.draining()) << "drain is complete, not in progress";

  // Every serve gauge reads zero after a completed drain.
  EXPECT_EQ(gauge_value(registry, "serve.queue_depth"), 0);
  EXPECT_EQ(gauge_value(registry, "serve.inflight"), 0);
  EXPECT_EQ(gauge_value(registry, "serve.draining"), 0);
  EXPECT_EQ(gauge_value(registry, "serve.admitting"), 0);
  EXPECT_EQ(counter_value(registry, "serve.drained"), 3u);

  // Post-drain submits are rejected, and a second drain is empty.
  EXPECT_EQ(service.submit(quick_request("c", "late"), nullptr).code,
            StatusCode::kOverloaded);
  EXPECT_TRUE(service.drain(0.0).jobs.empty());
}

TEST(SolveService, DrainManifestOrderedByJobIndexAndResumable) {
  ServiceConfig config;
  config.workers = 1;
  SolveService service(config);

  Collector collector;
  for (int i = 0; i < 4; ++i) {
    const Request req = slow_request("c", "j" + std::to_string(i));
    ASSERT_TRUE(
        service.submit(req, collector.sink("c", req.id)).admitted());
  }
  const DrainManifest manifest = service.drain(0.0);
  ASSERT_EQ(manifest.jobs.size(), 4u);
  for (std::size_t i = 1; i < manifest.jobs.size(); ++i)
    EXPECT_LT(manifest.jobs[i - 1].job_index, manifest.jobs[i].job_index);
  // The manifest round-trips through its text form losslessly.
  const Solved<DrainManifest> parsed =
      try_parse_drain_manifest(to_text(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  EXPECT_EQ(to_text(parsed.result), to_text(manifest));
}

TEST(EngineGauges, BatchGaugesReturnToZeroAfterEveryBatch) {
  obs::MetricsRegistry registry;
  engine::EngineConfig config;
  config.workers = 3;
  config.metrics = &registry;
  engine::SolveEngine engine(config);

  std::vector<engine::SolveJob> jobs;
  for (int i = 0; i < 6; ++i) {
    std::optional<engine::SolveJob> built;
    ASSERT_TRUE(to_job(quick_request("c", "g"), &built).ok());
    jobs.push_back(std::move(*built));
  }
  for (int round = 0; round < 2; ++round) {
    const engine::BatchReport report = engine.run(jobs);
    EXPECT_EQ(report.results.size(), jobs.size());
    EXPECT_EQ(gauge_value(registry, "engine.batch_active"), 0) << round;
    EXPECT_EQ(gauge_value(registry, "engine.queue_depth"), 0) << round;
    EXPECT_EQ(gauge_value(registry, "engine.inflight"), 0) << round;
  }
}

}  // namespace
}  // namespace defender::serve
