// Loopback SolveServer coverage over both transports: TCP (ephemeral
// port) and a Unix-domain socket. Drives the JSONL protocol end to end
// with LineClient — ping, metrics, solve/ack/result, cancel, hostile
// lines, the oversize-line guard, and a clean shutdown handshake whose
// run() returns the drain manifest.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "../obs/json_check.hpp"
#include "engine/retry.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve_test_util.hpp"

namespace defender::serve {
namespace {

std::string solve_line(const std::string& id, std::size_t iters = 200) {
  return "{\"type\":\"solve\",\"id\":\"" + id +
         "\",\"client\":\"tester\",\"solver\":\"double-oracle\","
         "\"n\":6,\"k\":2,\"attackers\":1,"
         "\"edges\":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]],"
         "\"iters\":" +
         std::to_string(iters) + "}";
}

/// Reads lines until one parses with the wanted id+type (solve traffic
/// interleaves acks and results); fails after `max_lines`.
std::string await_type(LineClient& client, const std::string& id,
                       const std::string& type, int max_lines = 20) {
  for (int i = 0; i < max_lines; ++i) {
    Solved<std::string> line = client.recv_line(30.0);
    EXPECT_TRUE(line.status.ok()) << line.status.to_string();
    if (!line.status.ok()) return "";
    const Solved<JsonValue> doc = parse_json(line.result);
    EXPECT_TRUE(doc.ok()) << line.result;
    const JsonValue* got_id = doc.result.find("id");
    const JsonValue* got_type = doc.result.find("type");
    if (got_id != nullptr && got_id->string == id && got_type != nullptr &&
        got_type->string == type)
      return line.result;
  }
  ADD_FAILURE() << "no '" << type << "' response for id " << id;
  return "";
}

struct RunningServer {
  explicit RunningServer(ServerConfig config)
      : server(std::move(config)) {
    const Status started = server.start();
    EXPECT_TRUE(started.ok()) << started.to_string();
    io = std::thread([this] { manifest = server.run(); });
  }
  ~RunningServer() {
    if (io.joinable()) {
      server.request_shutdown();
      io.join();
    }
  }
  SolveServer server;
  std::thread io;
  DrainManifest manifest;
};

ServerConfig tcp_config() {
  ServerConfig config;
  config.tcp_host = "127.0.0.1";
  config.tcp_port = 0;  // ephemeral
  config.service.workers = 2;
  config.service.engine.retry = engine::RetryPolicy::none();
  return config;
}

TEST(SolveServer, StartRejectsConfigWithoutEndpoints) {
  SolveServer server{ServerConfig{}};
  EXPECT_EQ(server.start().code, StatusCode::kInvalidInput);
}

TEST(SolveServer, TcpPingSolveCancelMetrics) {
  RunningServer running(tcp_config());
  const std::string address =
      "127.0.0.1:" + std::to_string(running.server.tcp_port());
  Solved<LineClient> client = LineClient::connect(address);
  ASSERT_TRUE(client.status.ok()) << client.status.to_string();

  // ping -> pong
  ASSERT_TRUE(client.result
                  .send_line("{\"type\":\"ping\",\"id\":\"p1\","
                             "\"client\":\"tester\"}")
                  .ok());
  EXPECT_FALSE(await_type(client.result, "p1", "pong").empty());

  // solve -> ack then result, result embeds a JobResult document.
  ASSERT_TRUE(client.result.send_line(solve_line("s1")).ok());
  EXPECT_FALSE(await_type(client.result, "s1", "ack").empty());
  const std::string result_line = await_type(client.result, "s1", "result");
  ASSERT_FALSE(result_line.empty());
  {
    defender::test_json::Parser parser(result_line);
    EXPECT_TRUE(parser.valid()) << result_line;
    const Solved<JsonValue> doc = parse_json(result_line);
    ASSERT_TRUE(doc.ok());
    const JsonValue* result = doc.result.find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue* status = result->find("status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->string, "ok");
  }

  // cancel of an unknown id -> error (nothing active).
  ASSERT_TRUE(client.result
                  .send_line("{\"type\":\"cancel\",\"id\":\"c1\","
                             "\"client\":\"tester\",\"cancel\":\"ghost\"}")
                  .ok());
  const std::string cancel_error = await_type(client.result, "c1", "error");
  EXPECT_NE(cancel_error.find("invalid-input"), std::string::npos)
      << cancel_error;

  // cancel of a long-running solve -> ack, then a kCancelled result.
  ASSERT_TRUE(client.result
                  .send_line("{\"type\":\"solve\",\"id\":\"s2\","
                             "\"client\":\"tester\","
                             "\"solver\":\"fictitious-play\",\"n\":6,"
                             "\"k\":2,\"attackers\":1,\"edges\":"
                             "[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]],"
                             "\"iters\":1000000,\"tolerance\":1e-15}")
                  .ok());
  EXPECT_FALSE(await_type(client.result, "s2", "ack").empty());
  ASSERT_TRUE(client.result
                  .send_line("{\"type\":\"cancel\",\"id\":\"c2\","
                             "\"client\":\"tester\",\"cancel\":\"s2\"}")
                  .ok());
  EXPECT_FALSE(await_type(client.result, "c2", "ack").empty());
  const std::string cancelled = await_type(client.result, "s2", "result");
  EXPECT_NE(cancelled.find("cancelled"), std::string::npos) << cancelled;

  // metrics -> a valid JSON registry dump with the serve instruments.
  ASSERT_TRUE(client.result
                  .send_line("{\"type\":\"metrics\",\"id\":\"m1\","
                             "\"client\":\"tester\"}")
                  .ok());
  const std::string metrics = await_type(client.result, "m1", "metrics");
  ASSERT_FALSE(metrics.empty());
  defender::test_json::Parser parser(metrics);
  EXPECT_TRUE(parser.valid());
  EXPECT_NE(metrics.find("serve.admitted"), std::string::npos);
}

TEST(SolveServer, HostileLinesGetErrorsWithoutKillingTheConnection) {
  RunningServer running(tcp_config());
  Solved<LineClient> client = LineClient::connect(
      "127.0.0.1:" + std::to_string(running.server.tcp_port()));
  ASSERT_TRUE(client.status.ok());

  const char* hostile[] = {
      "not json at all",
      "{\"type\":\"solve\"}",
      "{\"type\":\"warp\",\"id\":\"x\",\"client\":\"c\"}",
      "[1,2,3]",
      "{\"type\":\"solve\",\"id\":\"x\",\"client\":\"c\","
      "\"solver\":\"double-oracle\",\"n\":3,\"k\":1,\"attackers\":1,"
      "\"edges\":[[0,7]]}",
  };
  for (const char* line : hostile) {
    ASSERT_TRUE(client.result.send_line(line).ok()) << line;
    Solved<std::string> response = client.result.recv_line(30.0);
    ASSERT_TRUE(response.status.ok()) << line;
    const Solved<JsonValue> doc = parse_json(response.result);
    ASSERT_TRUE(doc.ok()) << response.result;
    const JsonValue* type = doc.result.find("type");
    ASSERT_NE(type, nullptr);
    EXPECT_EQ(type->string, "error") << line;
  }
  // The connection survived all of it.
  ASSERT_TRUE(client.result
                  .send_line("{\"type\":\"ping\",\"id\":\"still-here\","
                             "\"client\":\"c\"}")
                  .ok());
  EXPECT_FALSE(await_type(client.result, "still-here", "pong").empty());
}

TEST(SolveServer, OversizeLineIsRejectedAndDisconnected) {
  RunningServer running(tcp_config());
  Solved<LineClient> client = LineClient::connect(
      "127.0.0.1:" + std::to_string(running.server.tcp_port()));
  ASSERT_TRUE(client.status.ok());

  const std::string huge =
      "{\"type\":\"ping\",\"pad\":\"" +
      std::string(kMaxRequestBytes + 1024, 'a') + "\"}";
  ASSERT_TRUE(client.result.send_line(huge).ok());
  const Solved<std::string> response = client.result.recv_line(30.0);
  ASSERT_TRUE(response.status.ok());
  EXPECT_NE(response.result.find("error"), std::string::npos);
  // The server closes an over-limit connection after the error.
  const Solved<std::string> after = client.result.recv_line(10.0);
  EXPECT_EQ(after.status.code, StatusCode::kInvalidInput);
}

TEST(SolveServer, UnixSocketServesAndShutdownReturnsManifest) {
  const std::string path =
      "/tmp/defender_serve_test_" + std::to_string(::getpid()) + ".sock";
  ServerConfig config;
  config.unix_path = path;
  config.service.workers = 1;
  config.service.engine.retry = engine::RetryPolicy::none();

  DrainManifest manifest;
  {
    RunningServer running(std::move(config));
    Solved<LineClient> client = LineClient::connect("unix:" + path);
    ASSERT_TRUE(client.status.ok()) << client.status.to_string();

    ASSERT_TRUE(client.result.send_line(solve_line("u1")).ok());
    EXPECT_FALSE(await_type(client.result, "u1", "ack").empty());
    EXPECT_FALSE(await_type(client.result, "u1", "result").empty());

    // Queue long jobs, then ask for shutdown: the unfinished ones must
    // come back in run()'s manifest.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          client.result.send_line(solve_line("long" + std::to_string(i),
                                             1'000'000))
              .ok());
    }
    ASSERT_TRUE(client.result
                    .send_line("{\"type\":\"shutdown\",\"id\":\"bye\","
                               "\"client\":\"tester\"}")
                    .ok());
    running.io.join();
    manifest = running.manifest;
  }
  std::remove(path.c_str());

  // The long jobs were double-oracle on C_6 with a huge budget — they
  // finish fast, so the manifest can legitimately be empty; what must
  // hold is that it parses and accounts only for "long*" ids.
  for (const DrainedJob& job : manifest.jobs) {
    EXPECT_EQ(job.client, "tester");
    EXPECT_EQ(job.request_id.rfind("long", 0), 0u) << job.request_id;
  }
  const Solved<DrainManifest> parsed =
      try_parse_drain_manifest(to_text(manifest));
  EXPECT_TRUE(parsed.ok()) << parsed.status.to_string();
}

TEST(SolveServer, ShutdownDrainsQueuedSolvesIntoManifestOverTcp) {
  ServerConfig config = tcp_config();
  config.service.workers = 1;
  RunningServer running(std::move(config));
  Solved<LineClient> client = LineClient::connect(
      "127.0.0.1:" + std::to_string(running.server.tcp_port()));
  ASSERT_TRUE(client.status.ok());

  // One genuinely slow job to occupy the worker plus queued followers.
  std::vector<std::string> lines;
  lines.push_back(
      "{\"type\":\"solve\",\"id\":\"slow0\",\"client\":\"tester\","
      "\"solver\":\"fictitious-play\",\"n\":12,\"k\":2,\"attackers\":1,"
      "\"edges\":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],"
      "[8,9],[9,10],[10,11],[11,0]],\"iters\":1000000,"
      "\"tolerance\":1e-15}");
  for (int i = 1; i <= 3; ++i)
    lines.push_back(
        "{\"type\":\"solve\",\"id\":\"slow" + std::to_string(i) +
        "\",\"client\":\"tester\",\"solver\":\"fictitious-play\","
        "\"n\":12,\"k\":2,\"attackers\":1,"
        "\"edges\":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],"
        "[8,9],[9,10],[10,11],[11,0]],\"iters\":1000000,"
        "\"tolerance\":1e-15}");
  for (const std::string& line : lines) {
    ASSERT_TRUE(client.result.send_line(line).ok());
    EXPECT_FALSE(
        await_type(client.result,
                   line.substr(line.find("slow"), 5), "ack")
            .empty());
  }

  running.server.request_shutdown();
  running.io.join();

  // All four jobs were unfinished: each is either manifested or (if it
  // beat the drain deadline) delivered — and at least the queued ones
  // cannot have finished on a single blocked worker.
  EXPECT_GE(running.manifest.jobs.size(), 3u);
  const Solved<DrainManifest> parsed =
      try_parse_drain_manifest(to_text(running.manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
}

}  // namespace
}  // namespace defender::serve
