// Cancel-vs-drain races, exercised under TSan in CI: whatever the
// interleaving, every admitted job terminates EXACTLY once — delivered to
// its client (kCancelled or terminal) XOR swept into the drain manifest —
// with truthful statuses, never lost and never double-completed. A
// concurrent submitter checks that admissions racing the drain edge are
// either fully admitted (and thus accounted for) or cleanly rejected.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/retry.hpp"
#include "serve/service.hpp"
#include "serve_test_util.hpp"

namespace defender::serve {
namespace {

using serve_test::Collector;
using serve_test::slow_request;

TEST(ServeDrainRace, EveryJobDeliveredXorManifested) {
  // Several rounds with different client/drain timing to vary the
  // interleaving; the exactly-once invariant must hold in all of them.
  for (int round = 0; round < 4; ++round) {
    ServiceConfig config;
    config.workers = 2;
    config.queue_high_watermark = 64;
    config.max_inflight_per_client = 64;
    config.engine.retry = engine::RetryPolicy::none();
    SolveService service(config);

    constexpr std::size_t kJobs = 12;
    Collector collector;
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < kJobs; ++i) {
      const std::string id = "r" + std::to_string(i);
      const Request req = slow_request("c", id);
      ASSERT_TRUE(
          service.submit(req, collector.sink("c", id)).admitted());
      ids.push_back(id);
    }

    DrainManifest manifest;
    std::thread canceller([&] {
      // Cancel a round-dependent subset, racing the drain sweep.
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (static_cast<int>(i % 3) <= round % 3)
          service.cancel("c", ids[i]);
      }
    });
    std::thread drainer([&] { manifest = service.drain(0.0); });
    canceller.join();
    drainer.join();

    EXPECT_EQ(service.queue_depth(), 0u);
    EXPECT_EQ(service.running_count(), 0u);

    // Partition check: delivered XOR manifested, union = everything.
    std::set<std::string> manifested;
    for (const DrainedJob& job : manifest.jobs) {
      EXPECT_TRUE(manifested.insert(job.request_id).second)
          << "job " << job.request_id << " manifested twice";
    }
    std::set<std::string> delivered;
    {
      std::lock_guard<std::mutex> lock(collector.mu);
      EXPECT_EQ(collector.order.size(), collector.results.size())
          << "a job was delivered twice";
      for (const auto& [key, result] : collector.results) {
        delivered.insert(key.substr(2));  // strip "c/"
        // Anything delivered while cancelling/draining is truthful: a
        // cancelled job says kCancelled with a sound bracket.
        EXPECT_LE(result.lower_bound, result.upper_bound) << key;
      }
    }
    for (const std::string& id : ids) {
      const bool was_delivered = delivered.count(id) > 0;
      const bool was_manifested = manifested.count(id) > 0;
      EXPECT_TRUE(was_delivered != was_manifested)
          << "round " << round << " job " << id << ": delivered="
          << was_delivered << " manifested=" << was_manifested;
    }
    EXPECT_EQ(delivered.size() + manifested.size(), kJobs);

    // Client-cancelled jobs must never ride the manifest: a resume would
    // run work the client already abandoned.
    for (const DrainedJob& job : manifest.jobs)
      EXPECT_EQ(delivered.count(job.request_id), 0u);
  }
}

TEST(ServeDrainRace, SubmitsRacingDrainAreAdmittedXorRejected) {
  ServiceConfig config;
  config.workers = 2;
  config.max_inflight_per_client = 64;
  config.engine.retry = engine::RetryPolicy::none();
  SolveService service(config);

  Collector collector;
  std::atomic<std::size_t> admitted{0};
  std::atomic<bool> go{false};

  std::thread submitter([&] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 32; ++i) {
      const std::string id = "s" + std::to_string(i);
      const Admission a =
          service.submit(slow_request("c", id), collector.sink("c", id));
      if (a.admitted()) {
        admitted.fetch_add(1);
      } else {
        // The only rejection reason on this path is the drain edge.
        EXPECT_EQ(a.code, StatusCode::kOverloaded);
        EXPECT_GT(a.retry_after_ms, 0);
      }
    }
  });
  DrainManifest manifest;
  std::thread drainer([&] {
    go.store(true);
    manifest = service.drain(0.0);
  });
  submitter.join();
  drainer.join();

  std::size_t delivered = 0;
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    delivered = collector.results.size();
  }
  // Every admitted job is accounted for; nothing leaks past the drain.
  EXPECT_EQ(delivered + manifest.jobs.size(), admitted.load());
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.running_count(), 0u);
}

}  // namespace
}  // namespace defender::serve
