// Shared fixtures for the serve suite: canned solve requests over small
// cycle boards and a thread-safe result collector that records delivery
// order (the observable the fairness and drain tests assert on).
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace defender::serve_test {

/// A solve request for the k-tuple game on the cycle C_n. Fictitious play
/// with a huge budget makes a deliberately long-running job; double oracle
/// with a small budget converges in milliseconds.
inline serve::Request cycle_request(const std::string& client,
                                    const std::string& id, std::size_t n,
                                    engine::JobSolver solver,
                                    std::size_t iters,
                                    double tolerance = 1e-9) {
  serve::Request req;
  req.type = serve::RequestType::kSolve;
  req.client = client;
  req.id = id;
  req.solver = solver;
  req.n = n;
  req.k = 2;
  req.attackers = 1;
  for (std::size_t i = 0; i < n; ++i) req.edges.emplace_back(i, (i + 1) % n);
  req.tolerance = tolerance;
  req.max_iterations = iters;
  if (engine::is_weighted(solver)) req.weights.assign(n, 1.0);
  return req;
}

/// A fast request: double oracle on C_6, converges well within budget.
inline serve::Request quick_request(const std::string& client,
                                    const std::string& id) {
  return cycle_request(client, id, 6, engine::JobSolver::kDoubleOracle, 200);
}

/// A slow request: fictitious play chasing an unreachable tolerance for
/// many iterations — ideally hundreds of milliseconds of work, cancellable
/// within one poll batch. The budget sits exactly at the service's default
/// max_budget_iterations cap so submits are admitted unmodified.
inline serve::Request slow_request(const std::string& client,
                                   const std::string& id,
                                   std::size_t iters = 1'000'000) {
  return cycle_request(client, id, 12, engine::JobSolver::kFictitiousPlay,
                       iters, 1e-15);
}

/// Thread-safe terminal-result sink keyed by "client/id".
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, engine::JobResult> results;
  std::vector<std::string> order;  // delivery order of keys

  serve::ResultFn sink(const std::string& client, const std::string& id) {
    const std::string key = client + "/" + id;
    return [this, key](const engine::JobResult& result) {
      std::lock_guard<std::mutex> lock(mu);
      results.emplace(key, result);
      order.push_back(key);
      cv.notify_all();
    };
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return results.size();
  }

  /// Waits until `n` results have been delivered (generous deadline so a
  /// wedged service fails the test instead of hanging ctest).
  bool wait_for(std::size_t n, double seconds = 60.0) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(seconds),
                       [&] { return results.size() >= n; });
  }
};

}  // namespace defender::serve_test
