// RFC 8259 pin for util/json_writer.hpp — the single JSON emitter behind
// bench lines, JobResult reports, trace sinks, the metrics exporter, and
// the serve protocol. Every escaping and number-formatting rule is pinned
// here so an emitter change that would desynchronize stored artifacts
// (cache files, drain manifests, JSONL reports) fails a test instead of
// shipping.
#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "../obs/json_check.hpp"

namespace defender::util {
namespace {

TEST(JsonWriter, EscapesEveryControlAndQuoteCharacter) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\rc\td"), "a\\nb\\rc\\td");
  // Control characters without a short escape become \u00xx.
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_escape(std::string("\x1f", 1)), "\\u001f");
  // NUL embedded in a std::string is escaped, not truncated.
  EXPECT_EQ(json_escape(std::string("a\0b", 3)), "a\\u0000b");
  // Bytes >= 0x20 pass through verbatim (UTF-8 payloads untouched).
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, NumbersRoundTripThroughStrtod) {
  // %.17g is enough digits for bit-exact double round-trips.
  const double values[] = {0.0,
                           1.0,
                           -1.5,
                           1.0 / 3.0,
                           6.02214076e23,
                           5e-324,
                           std::numeric_limits<double>::max(),
                           -0.3333333333333333};
  for (const double v : values) {
    const std::string rendered = json_number(v);
    EXPECT_EQ(std::strtod(rendered.c_str(), nullptr), v) << rendered;
  }
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, ObjectMembersKeepCallOrder) {
  JsonWriter w;
  w.str("name", "x").num("count", std::uint64_t{7}).boolean("ok", true);
  EXPECT_EQ(w.object(), "{\"name\":\"x\",\"count\":7,\"ok\":true}");
  EXPECT_FALSE(w.empty());
  EXPECT_EQ(w.body(), "\"name\":\"x\",\"count\":7,\"ok\":true");
}

TEST(JsonWriter, EmptyObjectAndEmptyArray) {
  JsonWriter w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.object(), "{}");
  EXPECT_EQ(JsonWriter::array({}), "[]");
  EXPECT_EQ(JsonWriter::array({"1", "\"a\""}), "[1,\"a\"]");
}

TEST(JsonWriter, HostileKeysAndValuesStillProduceValidJson) {
  JsonWriter w;
  w.str("quote\"key", "line\nbreak\ttab\\slash\"quote");
  w.num("tiny", 5e-324);
  w.num("nan_becomes_null", std::nan(""));
  w.raw("nested", JsonWriter::array({"[1,2]", "{\"a\":null}"}));
  const std::string doc = w.object();
  defender::test_json::Parser parser(doc);
  EXPECT_TRUE(parser.valid()) << doc;
}

TEST(JsonWriter, EveryControlByteYieldsValidJson) {
  for (int c = 0; c < 0x20; ++c) {
    JsonWriter w;
    w.str("k", std::string(1, static_cast<char>(c)));
    const std::string doc = w.object();
    defender::test_json::Parser parser(doc);
    EXPECT_TRUE(parser.valid()) << "control byte " << c << ": " << doc;
  }
}

}  // namespace
}  // namespace defender::util
