#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"

namespace defender::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, IsDeterministicForFixedSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(5);
  constexpr std::size_t kBuckets = 10;
  constexpr std::size_t kDraws = 100000;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (std::size_t c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 8 / 10);
    EXPECT_LT(c, kDraws / kBuckets * 12 / 10);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Shuffle, PreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Shuffle, ActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  shuffle(v, rng);
  bool moved = false;
  for (int i = 0; i < 50; ++i) moved |= (v[i] != i);
  EXPECT_TRUE(moved);
}

TEST(SampleWithoutReplacement, ProducesDistinctSortedValues) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = sample_without_replacement(20, 7, rng);
    ASSERT_EQ(s.size(), 7u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    std::set<std::size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 7u);
    for (std::size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(SampleWithoutReplacement, FullPopulation) {
  Rng rng(37);
  auto s = sample_without_replacement(5, 5, rng);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SampleWithoutReplacement, EmptySample) {
  Rng rng(41);
  EXPECT_TRUE(sample_without_replacement(5, 0, rng).empty());
}

TEST(SampleWithoutReplacement, RejectsOversizedCount) {
  Rng rng(43);
  EXPECT_THROW(sample_without_replacement(3, 4, rng), ContractViolation);
}

TEST(SampleWithoutReplacement, CoversAllValuesOverTrials) {
  Rng rng(47);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 200; ++trial)
    for (std::size_t v : sample_without_replacement(10, 3, rng))
      seen.insert(v);
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace defender::util
