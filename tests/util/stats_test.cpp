#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace defender::util {
namespace {

TEST(Summarize, SinglePoint) {
  const std::vector<double> v{3.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // unbiased (n-1) denominator
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, EmptySampleThrows) {
  EXPECT_THROW(summarize({}), ContractViolation);
}

TEST(Ci95, ZeroForTinySamples) {
  const std::vector<double> v{1.0};
  EXPECT_DOUBLE_EQ(ci95_halfwidth(summarize(v)), 0.0);
}

TEST(Ci95, ShrinksWithSampleSize) {
  std::vector<double> small{1, 2, 3, 4};
  std::vector<double> large;
  for (int i = 0; i < 16; ++i)
    large.insert(large.end(), small.begin(), small.end());
  EXPECT_GT(ci95_halfwidth(summarize(small)),
            ci95_halfwidth(summarize(large)));
}

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 2x + 1
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasHighR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2) ? 0.5 : -0.5));
  }
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 0.01);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(FitLine, ConstantYsGiveZeroSlopePerfectFit) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{4, 4, 4};
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLine, RejectsConstantXs) {
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_THROW(fit_line(xs, ys), ContractViolation);
}

TEST(FitLine, RejectsMismatchedLengths) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1};
  EXPECT_THROW(fit_line(xs, ys), ContractViolation);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, SymmetricInArguments) {
  const std::vector<double> a{1, 3, 2, 5, 4};
  const std::vector<double> b{2, 1, 4, 3, 5};
  EXPECT_DOUBLE_EQ(correlation(a, b), correlation(b, a));
}

}  // namespace
}  // namespace defender::util
