#include "util/combinatorics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/assert.hpp"

namespace defender::util {
namespace {

TEST(Gcd, BasicIdentities) {
  EXPECT_EQ(gcd(12, 18), 6u);
  EXPECT_EQ(gcd(18, 12), 6u);
  EXPECT_EQ(gcd(7, 13), 1u);
  EXPECT_EQ(gcd(0, 5), 5u);
  EXPECT_EQ(gcd(5, 0), 5u);
  EXPECT_EQ(gcd(0, 0), 0u);
  EXPECT_EQ(gcd(42, 42), 42u);
}

TEST(Lcm, BasicIdentities) {
  EXPECT_EQ(lcm(4, 6), 12u);
  EXPECT_EQ(lcm(7, 13), 91u);
  EXPECT_EQ(lcm(0, 5), 0u);
  EXPECT_EQ(lcm(5, 5), 5u);
}

TEST(Lcm, SaturatesOnOverflow) {
  const std::uint64_t big = std::uint64_t{1} << 63;
  EXPECT_EQ(lcm(big, big - 1), std::numeric_limits<std::uint64_t>::max());
}

TEST(GcdLcm, ProductIdentityOnSmallPairs) {
  for (std::uint64_t a = 1; a <= 30; ++a)
    for (std::uint64_t b = 1; b <= 30; ++b)
      EXPECT_EQ(gcd(a, b) * lcm(a, b), a * b) << a << "," << b;
}

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
  EXPECT_EQ(binomial(3, 7), 0u);
}

TEST(Binomial, PascalIdentity) {
  for (std::uint64_t n = 1; n <= 40; ++n)
    for (std::uint64_t k = 1; k <= n; ++k)
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
}

TEST(Binomial, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(binomial(200, 100), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(binomial(64, 32), 1832624140942590534u);  // fits exactly
}

TEST(Combinations, FirstCombinationIsPrefix) {
  EXPECT_EQ(first_combination(5, 3), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(first_combination(5, 0).empty());
}

TEST(Combinations, EnumerationVisitsExactlyBinomialMany) {
  for (std::size_t n = 1; n <= 10; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      std::size_t count = 0;
      std::set<std::vector<std::size_t>> seen;
      for_each_combination(n, k, [&](const std::vector<std::size_t>& c) {
        ++count;
        EXPECT_EQ(c.size(), k);
        EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
        seen.insert(c);
        return true;
      });
      EXPECT_EQ(count, binomial(n, k));
      EXPECT_EQ(seen.size(), count) << "duplicate combination emitted";
    }
  }
}

TEST(Combinations, EnumerationIsLexicographic) {
  std::vector<std::vector<std::size_t>> all;
  for_each_combination(5, 3, [&](const std::vector<std::size_t>& c) {
    all.push_back(c);
    return true;
  });
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(all.front(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(all.back(), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Combinations, EarlyStopRespected) {
  std::size_t count = 0;
  for_each_combination(10, 4, [&](const std::vector<std::size_t>&) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5u);
}

TEST(Combinations, RankUnrankRoundTrip) {
  const std::size_t n = 9, k = 4;
  std::uint64_t expected_rank = 0;
  for_each_combination(n, k, [&](const std::vector<std::size_t>& c) {
    EXPECT_EQ(combination_rank(c, n), expected_rank);
    EXPECT_EQ(combination_unrank(expected_rank, n, k), c);
    ++expected_rank;
    return true;
  });
  EXPECT_EQ(expected_rank, binomial(n, k));
}

TEST(Combinations, UnrankRejectsOutOfRangeRank) {
  EXPECT_THROW(combination_unrank(binomial(6, 3), 6, 3), ContractViolation);
}

TEST(Combinations, NextCombinationEndsExactlyOnce) {
  std::vector<std::size_t> c{2, 3, 4};
  EXPECT_FALSE(next_combination(c, 5));
}

TEST(Combinations, ZeroKHasSingleEmptyCombination) {
  std::size_t count = 0;
  for_each_combination(4, 0, [&](const std::vector<std::size_t>& c) {
    EXPECT_TRUE(c.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace defender::util
