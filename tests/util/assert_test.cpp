#include "util/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace defender {
namespace {

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(DEF_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Contracts, RequireThrowsContractViolation) {
  EXPECT_THROW(DEF_REQUIRE(false, "must fail"), ContractViolation);
}

TEST(Contracts, EnsureThrowsContractViolation) {
  EXPECT_THROW(DEF_ENSURE(false, "broken invariant"), ContractViolation);
}

TEST(Contracts, MessageCarriesExpressionAndContext) {
  try {
    DEF_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected a throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("assert_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsALogicError) {
  EXPECT_THROW(DEF_REQUIRE(false, ""), std::logic_error);
}

}  // namespace
}  // namespace defender
