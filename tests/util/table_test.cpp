#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"
#include "util/chart.hpp"

namespace defender::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("beta", 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractViolation);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add(1);
  t.add(2);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvUsesCommas) {
  Table t({"a", "b"});
  t.add(1, 2);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, FormatsDoublesCompactly) {
  EXPECT_EQ(Table::format_cell(0.5), "0.5");
  EXPECT_EQ(Table::format_cell(true), "yes");
  EXPECT_EQ(Table::format_cell(false), "no");
}

TEST(Table, AlignmentPadsColumns) {
  Table t({"col", "num"});
  t.add("x", 100);
  t.add("longer", 1);
  const std::string s = t.to_string();
  // Every rendered line has equal length (aligned grid).
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_LE(line.size(), width + 1);
  }
}

TEST(Fixed, RendersRequestedDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(1.0, 3), "1.000");
}

TEST(AsciiChart, RendersSeriesGlyphsAndLabels) {
  AsciiChart chart(40, 10);
  chart.add_series({"linear", {1, 2, 3, 4}, {2, 4, 6, 8}});
  chart.set_labels("k", "gain");
  const std::string s = chart.to_string();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("linear"), std::string::npos);
  EXPECT_NE(s.find("gain"), std::string::npos);
}

TEST(AsciiChart, EmptyChartRendersNothing) {
  AsciiChart chart(40, 10);
  EXPECT_TRUE(chart.to_string().empty());
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart(20, 5);
  EXPECT_THROW(chart.add_series({"bad", {1, 2}, {1}}), ContractViolation);
}

TEST(BarChart, ScalesToWidth) {
  const std::string s = bar_chart({{"a", 10.0}, {"b", 5.0}}, 20);
  EXPECT_NE(s.find("####################"), std::string::npos);
  EXPECT_NE(s.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace defender::util
