// Verifies the umbrella header compiles standalone and exposes the whole
// public surface: one end-to-end flow touching every layer through it.
#include "defender.hpp"

#include <gtest/gtest.h>

namespace {

using namespace defender;

TEST(Umbrella, EndToEndThroughTheSingleInclude) {
  // Graph substrate.
  const graph::Graph g = graph::cycle_graph(6);
  EXPECT_TRUE(graph::is_bipartite(g));

  // Matching substrate.
  EXPECT_EQ(matching::max_matching(g).size(), 3u);
  EXPECT_EQ(matching::min_edge_cover_size(g), 3u);

  // Core: game, equilibrium, verification.
  const core::TupleGame game(g, 2, 3);
  const auto ne = core::a_tuple_bipartite(game);
  ASSERT_TRUE(ne.has_value());
  EXPECT_TRUE(core::verify_mixed_ne(game, ne->configuration).is_ne());

  // LP baseline.
  EXPECT_NEAR(core::solve_zero_sum(game).value, 2.0 / 3, 1e-7);

  // Double oracle.
  EXPECT_NEAR(core::solve_double_oracle(game).value, 2.0 / 3, 1e-6);

  // Serialization round trip.
  const std::string text = core::to_text(game, ne->configuration);
  EXPECT_EQ(core::defender_profit(game, core::from_text(game, text)),
            core::defender_profit(game, ne->configuration));

  // Simulation.
  util::Rng rng(1);
  const sim::PlayoutStats stats =
      sim::run_playouts(game, ne->configuration, 2000, rng);
  EXPECT_GT(stats.defender_profit_mean, 0.0);
}

}  // namespace
