// Integration suite: the zero-sum value of Π_k(G) is unique, so every
// equilibrium family the library can construct on the same instance —
// k-matching NE, perfect-matching NE, edge-uniform NE, LP solution — must
// report exactly the same hit probability, and that probability can never
// exceed the coverage ceiling min(1, 2k/n).
#include <gtest/gtest.h>

#include <optional>

#include "core/analytics.hpp"
#include "core/atuple.hpp"
#include "core/k_matching.hpp"
#include "core/perfect_matching_ne.hpp"
#include "core/regular_ne.hpp"
#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

struct InstanceValues {
  std::optional<double> k_matching;
  std::optional<double> perfect_matching;
  std::optional<double> edge_uniform;
  std::optional<double> lp;
};

InstanceValues collect(const graph::Graph& g, std::size_t k) {
  InstanceValues v;
  const TupleGame game(g, k, 1);
  if (const auto km = find_k_matching_ne(game))
    v.k_matching = analytic_hit_probability(game, km->k_matching_ne);
  if (has_perfect_matching(g) && k <= g.num_vertices() / 2)
    if (const auto pm = find_perfect_matching_ne(game))
      v.perfect_matching = analytic_hit_probability(game, *pm);
  if (k == 1 && regularity(g))
    v.edge_uniform = edge_uniform_hit_probability(game);
  if (game.num_tuples() <= 2000) v.lp = solve_zero_sum(game).value;
  return v;
}

void expect_consistent(const graph::Graph& g, std::size_t k,
                       const char* label) {
  const InstanceValues v = collect(g, k);
  const TupleGame game(g, k, 1);
  const double ceiling = coverage_ceiling(game);
  std::optional<double> reference;
  for (const auto& value :
       {v.k_matching, v.perfect_matching, v.edge_uniform, v.lp}) {
    if (!value) continue;
    EXPECT_LE(*value, ceiling + 1e-7) << label << " k=" << k;
    if (!reference) reference = value;
    EXPECT_NEAR(*value, *reference, 1e-7) << label << " k=" << k;
  }
}

TEST(ValueUniqueness, StructuredFamilies) {
  expect_consistent(graph::path_graph(6), 1, "P6");
  expect_consistent(graph::path_graph(6), 2, "P6");
  expect_consistent(graph::cycle_graph(6), 1, "C6");
  expect_consistent(graph::cycle_graph(6), 2, "C6");
  expect_consistent(graph::cycle_graph(6), 3, "C6");
  expect_consistent(graph::cycle_graph(7), 1, "C7");
  expect_consistent(graph::star_graph(5), 1, "S5");
  expect_consistent(graph::star_graph(5), 2, "S5");
  expect_consistent(graph::complete_graph(4), 1, "K4");
  expect_consistent(graph::complete_bipartite(2, 4), 2, "K24");
  expect_consistent(graph::petersen_graph(), 1, "Petersen");
}

TEST(ValueUniqueness, RandomSmallBoards) {
  util::Rng rng(515);
  for (int trial = 0; trial < 30; ++trial) {
    const graph::Graph g = graph::gnp_graph(7, 0.45, rng);
    if (g.num_edges() < 2) continue;
    expect_consistent(g, 1, "gnp7");
    expect_consistent(g, 2, "gnp7");
  }
}

TEST(ValueUniqueness, FamiliesCoexistOnlyAtEqualValues) {
  // When both a k-matching NE (value k/|IS|) and a perfect-matching NE
  // (value 2k/n) exist, |IS| must equal n/2 — independent sets cannot beat
  // a perfect matching.
  util::Rng rng(616);
  std::size_t coexist = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const graph::Graph g = graph::random_bipartite(4, 4, 0.5, rng);
    const TupleGame game(g, 2, 1);
    const auto km = find_k_matching_ne(game);
    if (!km || !has_perfect_matching(g)) continue;
    ++coexist;
    EXPECT_EQ(km->k_matching_ne.vp_support.size(), g.num_vertices() / 2)
        << "trial " << trial;
  }
  EXPECT_GE(coexist, 5u);
}

}  // namespace
}  // namespace defender::core
