// Integration suite: exhaustive verification of Theorem 2.2 on small
// boards.
//
// Theorem 2.2 characterizes the existence of matching NE through (IS,
// VC-expander) partitions. Independently of any partition reasoning, a
// matching NE exists iff some *matching configuration* (Definition 2.2)
// additionally satisfies Lemma 2.1's edge-cover condition. The structure
// of such configurations is rigid: D(vp) = S independent, and D(tp) picks
// exactly one incident edge per vertex of S (every support edge has
// exactly one endpoint in S). This suite enumerates ALL of them —
// independent sets S times one-edge-per-vertex choices — and checks that
// the brute-force existence answer coincides with the partition
// characterization on every random board.
#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/expander_partition.hpp"
#include "core/matching_ne.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

/// Recursively assigns one incident edge to each vertex of `support`,
/// returning true as soon as some assignment makes an edge cover of g.
bool extend(const graph::Graph& g, const graph::VertexSet& support,
            std::size_t index, graph::EdgeSet& chosen) {
  if (index == support.size()) {
    return graph::is_edge_cover(g, chosen);
  }
  for (const graph::Incidence& inc : g.neighbors(support[index])) {
    chosen.push_back(inc.edge);
    if (extend(g, support, index + 1, chosen)) return true;
    chosen.pop_back();
  }
  return false;
}

/// Ground truth: does ANY matching configuration of Π_1(G) satisfy Lemma
/// 2.1's conditions? Exhaustive over independent sets and edge choices.
bool matching_ne_exists_bruteforce(const graph::Graph& g) {
  const std::size_t n = g.num_vertices();
  EXPECT_LE(n, 12u);
  for (std::uint32_t mask = 1; mask < (1U << n); ++mask) {
    graph::VertexSet support;
    for (std::size_t v = 0; v < n; ++v)
      if ((mask >> v) & 1U) support.push_back(static_cast<graph::Vertex>(v));
    if (!graph::is_independent_set(g, support)) continue;
    graph::EdgeSet chosen;
    if (extend(g, support, 0, chosen)) return true;
  }
  return false;
}

TEST(Theorem22Exhaustive, BruteForceAgreesWithPartitionCharacterization) {
  util::Rng rng(222);
  std::size_t admits = 0, lacks = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n = 4 + rng.below(4);  // 4..7 vertices
    const graph::Graph g =
        graph::gnp_graph(n, 0.2 + 0.1 * rng.below(5), rng);
    const bool truth = matching_ne_exists_bruteforce(g);
    const bool by_partition = find_partition_exhaustive(g).has_value();
    EXPECT_EQ(truth, by_partition)
        << "trial " << trial << " n=" << n << " m=" << g.num_edges();
    truth ? ++admits : ++lacks;
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(admits, 10u);
  EXPECT_GT(lacks, 10u);
}

TEST(Theorem22Exhaustive, StructuredBoards) {
  EXPECT_TRUE(matching_ne_exists_bruteforce(graph::path_graph(6)));
  EXPECT_TRUE(matching_ne_exists_bruteforce(graph::cycle_graph(6)));
  EXPECT_TRUE(matching_ne_exists_bruteforce(graph::star_graph(5)));
  EXPECT_FALSE(matching_ne_exists_bruteforce(graph::cycle_graph(5)));
  EXPECT_FALSE(matching_ne_exists_bruteforce(graph::complete_graph(4)));
  EXPECT_FALSE(matching_ne_exists_bruteforce(graph::wheel_graph(5)));
}

TEST(Theorem22Exhaustive, WheneverExistsAlgorithmADeliversAVerifiedOne) {
  util::Rng rng(223);
  std::size_t verified = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const graph::Graph g = graph::gnp_graph(6, 0.35, rng);
    if (!matching_ne_exists_bruteforce(g)) continue;
    const auto partition = find_partition_exhaustive(g);
    ASSERT_TRUE(partition.has_value()) << "trial " << trial;
    const auto ne = compute_matching_ne(g, *partition);
    ASSERT_TRUE(ne.has_value()) << "trial " << trial;
    const TupleGame game(g, 1, 2);
    EXPECT_TRUE(verify_mixed_ne(game, to_configuration(game, *ne),
                                Oracle::kExhaustive)
                    .is_ne())
        << "trial " << trial;
    ++verified;
  }
  EXPECT_GT(verified, 15u);
}

}  // namespace
}  // namespace defender::core
