// Integration property suite for Theorem 5.1: every bipartite board admits
// a k-matching NE computable end to end (König partition -> algorithm A ->
// cyclic lift -> uniform distributions), for every admissible k.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/k_matching.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

void expect_full_pipeline(const graph::Graph& g, std::size_t k,
                          std::size_t nu, bool exhaustive_check) {
  const TupleGame game(g, k, nu);
  const auto result = a_tuple_bipartite(game);
  ASSERT_TRUE(result.has_value()) << "k=" << k;
  // Structure: a k-matching configuration with the cover conditions.
  EXPECT_TRUE(is_k_matching_configuration(game, result->k_matching_ne.vp_support,
                                          result->k_matching_ne.tp_support));
  EXPECT_TRUE(satisfies_cover_conditions(game, result->k_matching_ne));
  // Claim 4.3: hit probability k/|E(D(tp))| on the attacker support.
  const auto hit = hit_probabilities(game, result->configuration);
  const double predicted = analytic_hit_probability(game, result->k_matching_ne);
  for (graph::Vertex v : result->k_matching_ne.vp_support)
    EXPECT_NEAR(hit[v], predicted, 1e-12);
  // Full Nash verification.
  const auto oracle =
      exhaustive_check ? Oracle::kExhaustive : Oracle::kBranchAndBound;
  EXPECT_TRUE(verify_mixed_ne(game, result->configuration, oracle).is_ne())
      << "k=" << k;
  // Corollary 4.10 profit.
  EXPECT_NEAR(defender_profit(game, result->configuration),
              analytic_defender_profit(game, result->k_matching_ne), 1e-9);
}

TEST(Theorem51, RandomBipartiteSweepAllK) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_bipartite(4, 5, 0.35, rng);
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value());
    const std::size_t kmax = partition->independent_set.size();
    for (std::size_t k = 1; k <= std::min<std::size_t>(kmax, 4); ++k)
      expect_full_pipeline(g, k, 3, /*exhaustive_check=*/g.num_edges() <= 12);
  }
}

TEST(Theorem51, StructuredBipartiteFamilies) {
  expect_full_pipeline(graph::path_graph(10), 3, 2, true);
  expect_full_pipeline(graph::cycle_graph(10), 4, 2, false);
  expect_full_pipeline(graph::grid_graph(3, 4), 5, 2, false);
  expect_full_pipeline(graph::hypercube_graph(3), 4, 2, false);
  expect_full_pipeline(graph::star_graph(8), 5, 2, false);
  expect_full_pipeline(graph::complete_bipartite(3, 7), 6, 2, false);
  expect_full_pipeline(graph::ladder_graph(5), 3, 2, false);
  expect_full_pipeline(graph::binary_tree(3), 2, 2, true);
}

TEST(Theorem51, LargerBoardsStayPolynomial) {
  // Not a timing assertion, just an executability check at realistic sizes.
  util::Rng rng(5);
  const graph::Graph g = graph::random_bipartite(40, 60, 0.1, rng);
  const TupleGame game(g, 8, 10);
  const auto result = a_tuple_bipartite(game);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(satisfies_cover_conditions(game, result->k_matching_ne));
  const auto hit = hit_probabilities(game, result->configuration);
  const double predicted =
      analytic_hit_probability(game, result->k_matching_ne);
  for (graph::Vertex v : result->k_matching_ne.vp_support)
    EXPECT_NEAR(hit[v], predicted, 1e-12);
}

TEST(Theorem51, TreesViaPruferSweep) {
  for (std::uint64_t seed = 20; seed < 32; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_tree(14, rng);
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value()) << "seed " << seed;
    const std::size_t k =
        1 + rng.below(partition->independent_set.size());
    expect_full_pipeline(g, k, 2, /*exhaustive_check=*/false);
  }
}

}  // namespace
}  // namespace defender::core
