// Integration property suite for Theorem 4.5 and Corollaries 4.7/4.10:
// the two-way reduction between matching NE of Pi_1 and k-matching NE of
// Pi_k preserves equilibrium-ness in both directions and scales the
// defender's profit by exactly k — the paper's headline result.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace defender::core {
namespace {

TEST(Theorem45, GainIsLinearInKAcrossBoards) {
  util::Rng rng(11);
  const std::vector<graph::Graph> boards = {
      graph::cycle_graph(12), graph::grid_graph(3, 4),
      graph::complete_bipartite(4, 8), graph::random_bipartite(5, 7, 0.4, rng),
      graph::random_tree(12, rng)};
  constexpr std::size_t kNu = 4;
  for (const auto& g : boards) {
    const auto partition = find_partition(g);
    ASSERT_TRUE(partition.has_value());
    const auto base = compute_matching_ne(g, *partition);
    ASSERT_TRUE(base.has_value());
    const std::size_t kmax =
        std::min(base->tp_support.size(), g.num_edges());

    std::vector<double> ks, gains;
    const TupleGame edge_game(g, 1, kNu);
    const double unit =
        defender_profit(edge_game, to_configuration(edge_game, *base));
    for (std::size_t k = 1; k <= kmax; ++k) {
      const TupleGame game(g, k, kNu);
      const KMatchingNe lifted = lift_to_k_matching(game, *base);
      const double gain =
          defender_profit(game, to_configuration(game, lifted));
      EXPECT_NEAR(gain, static_cast<double>(k) * unit, 1e-9) << "k=" << k;
      ks.push_back(static_cast<double>(k));
      gains.push_back(gain);
    }
    if (ks.size() >= 2) {
      const util::LinearFit fit = util::fit_line(ks, gains);
      EXPECT_NEAR(fit.slope, unit, 1e-9);
      EXPECT_NEAR(fit.intercept, 0.0, 1e-9);
      EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    }
  }
}

TEST(Theorem45, LiftPreservesNashAcrossRandomTrees) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_tree(9, rng);
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value()) << "seed " << seed;
    const auto base = compute_matching_ne(g, *partition);
    ASSERT_TRUE(base.has_value()) << "seed " << seed;
    const std::size_t kmax =
        std::min<std::size_t>(base->tp_support.size(), 3);
    for (std::size_t k = 1; k <= kmax; ++k) {
      const TupleGame game(g, k, 2);
      const KMatchingNe lifted = lift_to_k_matching(game, *base);
      EXPECT_TRUE(verify_mixed_ne(game, to_configuration(game, lifted),
                                  Oracle::kBranchAndBound)
                      .is_ne())
          << "seed " << seed << " k=" << k;
    }
  }
}

TEST(Theorem45, ProjectionOfAnyLiftIsANashEquilibriumOfTheEdgeModel) {
  util::Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const graph::Graph g = graph::random_bipartite(4, 6, 0.4, rng);
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value());
    const auto base = compute_matching_ne(g, *partition);
    ASSERT_TRUE(base.has_value());
    const std::size_t k =
        1 + rng.below(std::min<std::size_t>(base->tp_support.size(), 4));
    const TupleGame game(g, k, 3);
    const KMatchingNe lifted = lift_to_k_matching(game, *base);
    const MatchingNe projected = project_to_matching(game, lifted);
    const TupleGame edge_game = game.edge_model_instance();
    EXPECT_TRUE(verify_mixed_ne(edge_game,
                                to_configuration(edge_game, projected),
                                Oracle::kBranchAndBound)
                    .is_ne())
        << "trial " << trial;
  }
}

TEST(Corollary47And410, ProfitRatioBothDirections) {
  const graph::Graph g = graph::hypercube_graph(3);
  const auto partition = find_partition_bipartite(g);
  ASSERT_TRUE(partition.has_value());
  const auto base = compute_matching_ne(g, *partition);
  ASSERT_TRUE(base.has_value());
  constexpr std::size_t kNu = 5;
  const TupleGame edge_game(g, 1, kNu);
  const double unit =
      defender_profit(edge_game, to_configuration(edge_game, *base));
  for (std::size_t k = 2; k <= base->tp_support.size(); ++k) {
    const TupleGame game(g, k, kNu);
    const KMatchingNe lifted = lift_to_k_matching(game, *base);
    // Lift direction (Corollary 4.10).
    EXPECT_NEAR(defender_profit(game, to_configuration(game, lifted)) / unit,
                static_cast<double>(k), 1e-9);
    // Projection direction (Corollary 4.7): projecting recovers unit / k.
    const MatchingNe back = project_to_matching(game, lifted);
    EXPECT_NEAR(
        defender_profit(edge_game, to_configuration(edge_game, back)),
        unit, 1e-9);
  }
}

}  // namespace
}  // namespace defender::core
