// Cross-module structural property sweeps: invariants that tie the graph
// operations, the equilibrium families, and the analytics together on
// composed boards (products, line graphs, complements, realistic random
// topologies).
#include <gtest/gtest.h>

#include "core/analytics.hpp"
#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/double_oracle.hpp"
#include "core/k_matching.hpp"
#include "core/perfect_matching_ne.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/edge_cover.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "graph/traversal.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(Structural, ProductsOfBipartiteBoardsStayBipartiteAndSolvable) {
  const graph::Graph g =
      graph::cartesian_product(graph::path_graph(3), graph::cycle_graph(4));
  EXPECT_TRUE(graph::is_bipartite(g));
  const TupleGame game(g, 3, 2);
  const auto ne = a_tuple_bipartite(game);
  ASSERT_TRUE(ne.has_value());
  EXPECT_TRUE(verify_mixed_ne(game, ne->configuration,
                              Oracle::kBranchAndBound)
                  .is_ne());
}

TEST(Structural, ProductWithK2InheritsAPerfectMatching) {
  // G x K2 always has a perfect matching (the K2 fibres), so every prism
  // over any board is defense-optimal.
  util::Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const graph::Graph base = graph::gnp_graph(7, 0.4, rng);
    const graph::Graph prism =
        graph::cartesian_product(base, graph::complete_graph(2));
    EXPECT_TRUE(has_perfect_matching(prism)) << "trial " << trial;
    const TupleGame game(prism, 2, 1);
    const auto pm = find_perfect_matching_ne(game);
    ASSERT_TRUE(pm.has_value());
    EXPECT_NEAR(defense_optimality(
                    game, analytic_hit_probability(game, *pm)),
                1.0, 1e-12);
  }
}

TEST(Structural, LineGraphOfAStarYieldsACompleteBoard) {
  // L(K_{1,n}) = K_n: the edge-scanning game on a star becomes a
  // vertex-style game on a clique, which has no expander partition but,
  // for even n, a perfect matching.
  const graph::Graph l = graph::line_graph(graph::star_graph(6));
  EXPECT_EQ(l, graph::complete_graph(6));
  EXPECT_FALSE(find_partition_exhaustive(l).has_value());
  EXPECT_TRUE(has_perfect_matching(l));
}

TEST(Structural, DoubleOracleOnRealisticTopologies) {
  // Internet-like (hubby) and small-world boards: the exact value exists
  // and respects the coverage ceiling.
  util::Rng rng(42);
  const graph::Graph ba = graph::barabasi_albert(40, 2, rng);
  const TupleGame ba_game(ba, 4, 1);
  const auto ba_result = solve_double_oracle(ba_game);
  EXPECT_GT(ba_result.value, 0.0);
  EXPECT_LE(ba_result.value, coverage_ceiling(ba_game) + 1e-9);

  const graph::Graph ws = graph::watts_strogatz(36, 4, 0.2, rng);
  const TupleGame ws_game(ws, 4, 1);
  const auto ws_result = solve_double_oracle(ws_game);
  EXPECT_GT(ws_result.value, 0.0);
  EXPECT_LE(ws_result.value, coverage_ceiling(ws_game) + 1e-9);
}

TEST(Structural, HubsMakeMixedDefenseHarderOnScaleFreeBoards) {
  // Hubs concentrate edges on few vertices, which SHRINKS the maximum
  // matching (leaves compete for the same hub partners) and therefore
  // ENLARGES the pure-NE threshold n − |max matching| relative to the
  // degree-balanced small-world board of comparable density.
  util::Rng rng(43);
  const graph::Graph ba = graph::barabasi_albert(60, 2, rng);
  const graph::Graph ws =
      graph::watts_strogatz(60, 4, 0.1, rng);  // ~same m = 2n-ish
  const std::size_t ba_threshold = matching::min_edge_cover_size(ba);
  const std::size_t ws_threshold = matching::min_edge_cover_size(ws);
  // Gallai identity holds on both.
  EXPECT_EQ(ba_threshold,
            ba.num_vertices() - matching::max_matching(ba).size());
  EXPECT_EQ(ws_threshold,
            ws.num_vertices() - matching::max_matching(ws).size());
  // Both are bounded below by n/2, and the hubby board is no easier.
  EXPECT_GE(ba_threshold, ba.num_vertices() / 2);
  EXPECT_GE(ba_threshold, ws_threshold);
  // The constructed covers are genuine edge covers.
  EXPECT_TRUE(graph::is_edge_cover(ba, matching::min_edge_cover(ba)));
  EXPECT_TRUE(graph::is_edge_cover(ws, matching::min_edge_cover(ws)));
}

TEST(Structural, ComplementSwapsCliquesAndIndependentSets) {
  util::Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::gnp_graph(8, 0.5, rng);
    const graph::Graph c = graph::complement(g);
    // An independent set of g induces a clique in c, hence a connected
    // subgraph; spot check via the max IS of the exhaustive partition.
    const auto p = find_partition_exhaustive(g);
    if (!p || p->independent_set.size() < 2) continue;
    for (std::size_t i = 0; i + 1 < p->independent_set.size(); ++i)
      EXPECT_TRUE(c.has_edge(p->independent_set[i],
                             p->independent_set[i + 1]));
  }
}

}  // namespace
}  // namespace defender::core
