// Integration property suite for Theorem 3.1 and Corollaries 3.2-3.3:
// pure NE existence <=> an edge cover of size k exists, across random
// boards, with the polynomial decision cross-checked against brute force.
#include <gtest/gtest.h>

#include "core/payoff.hpp"
#include "core/pure_ne.hpp"
#include "graph/generators.hpp"
#include "matching/brute_force.hpp"
#include "matching/edge_cover.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

struct BoardCase {
  const char* name;
  graph::Graph g;
};

std::vector<BoardCase> boards() {
  util::Rng rng(2024);
  std::vector<BoardCase> out;
  out.push_back({"path7", graph::path_graph(7)});
  out.push_back({"cycle6", graph::cycle_graph(6)});
  out.push_back({"cycle7", graph::cycle_graph(7)});
  out.push_back({"star5", graph::star_graph(5)});
  out.push_back({"k5", graph::complete_graph(5)});
  out.push_back({"k23", graph::complete_bipartite(2, 3)});
  out.push_back({"wheel5", graph::wheel_graph(5)});
  out.push_back({"tree8", graph::random_tree(8, rng)});
  out.push_back({"gnp8", graph::gnp_graph(8, 0.35, rng)});
  return out;
}

TEST(Theorem31, ExistenceMatchesBruteForceEdgeCoverThreshold) {
  for (const auto& [name, g] : boards()) {
    if (g.num_edges() > 20) continue;
    const std::size_t truth = matching::brute_force::min_edge_cover_size(g);
    for (std::size_t k = 1; k <= g.num_edges(); ++k) {
      const TupleGame game(g, k, 2);
      EXPECT_EQ(pure_ne_exists(game), k >= truth) << name << " k=" << k;
    }
  }
}

TEST(Theorem31, ConstructedEquilibriaSurviveDeviationChecking) {
  for (const auto& [name, g] : boards()) {
    for (std::size_t k = 1; k <= g.num_edges(); ++k) {
      const TupleGame game(g, k, 2);
      if (game.num_tuples() > 200000) continue;
      const auto config = find_pure_ne(game);
      if (!config) continue;
      EXPECT_TRUE(is_pure_ne_by_deviation(game, *config))
          << name << " k=" << k;
    }
  }
}

TEST(Theorem31, EquilibriumDefenderCatchesEveryone) {
  for (const auto& [name, g] : boards()) {
    const std::size_t cover = matching::min_edge_cover_size(g);
    if (cover > g.num_edges()) continue;
    const TupleGame game(g, cover, 3);
    const auto config = find_pure_ne(game);
    ASSERT_TRUE(config.has_value()) << name;
    EXPECT_EQ(pure_profits(game, *config).defender, 3u) << name;
  }
}

TEST(Corollary33, LargeBoardsNeverHavePureNeForSmallK) {
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::gnp_graph(20, 0.2, rng);
    for (std::size_t k = 1; 2 * k + 1 <= g.num_vertices(); ++k) {
      if (k > g.num_edges()) break;
      EXPECT_FALSE(pure_ne_exists(TupleGame(g, k, 1)))
          << "trial " << trial << " k=" << k;
    }
  }
}

class PureNeGridSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PureNeGridSweep, ThresholdIsGallaiOnGrids) {
  const auto [r, c] = GetParam();
  const graph::Graph g = graph::grid_graph(r, c);
  const std::size_t threshold = matching::min_edge_cover_size(g);
  // Gallai: n - floor(n/2) for grids (perfect/near-perfect matchings).
  EXPECT_EQ(threshold, g.num_vertices() - g.num_vertices() / 2);
  EXPECT_FALSE(pure_ne_exists(TupleGame(g, threshold - 1, 1)));
  if (threshold <= g.num_edges())
    EXPECT_TRUE(pure_ne_exists(TupleGame(g, threshold, 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PureNeGridSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values<std::size_t>(2, 3, 4, 5)));

}  // namespace
}  // namespace defender::core
