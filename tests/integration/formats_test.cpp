// End-to-end format integration: a board serialized to the edge-list
// format, re-parsed, solved, the equilibrium serialized, re-parsed, and
// re-verified — the full round trip a defender_cli user exercises.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "core/serialization.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(Formats, BoardAndEquilibriumFullRoundTrip) {
  util::Rng rng(987);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph original = graph::random_bipartite(4, 6, 0.4, rng);
    // Board -> text -> board.
    const graph::Graph parsed =
        graph::parse_edge_list(graph::to_edge_list(original));
    ASSERT_EQ(parsed, original) << "trial " << trial;

    // Solve on the parsed board.
    const TupleGame game(parsed, 2, 3);
    const auto ne = a_tuple_bipartite(game);
    ASSERT_TRUE(ne.has_value()) << "trial " << trial;

    // Equilibrium -> text -> equilibrium, re-verified from scratch.
    const MixedConfiguration restored =
        from_text(game, to_text(game, ne->configuration));
    EXPECT_TRUE(verify_mixed_ne(game, restored, Oracle::kBranchAndBound)
                    .is_ne())
        << "trial " << trial;
    EXPECT_DOUBLE_EQ(defender_profit(game, restored),
                     defender_profit(game, ne->configuration));
  }
}

TEST(Formats, DotRenderingContainsTheEquilibriumHighlights) {
  const graph::Graph g = graph::cycle_graph(6);
  const TupleGame game(g, 1, 1);
  const auto ne = a_tuple_bipartite(game);
  ASSERT_TRUE(ne.has_value());
  graph::DotOptions opts;
  opts.highlight_vertices = ne->k_matching_ne.vp_support;
  opts.highlight_edges = ne->configuration.defender.edge_union();
  const std::string dot = graph::to_dot(g, opts);
  // Every support vertex is drawn filled, every defended edge bold.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(dot.begin(), dot.end(), '\n')),
            1 + g.num_vertices() + g.num_edges() + 1);
  std::size_t filled = 0, bold = 0;
  for (std::size_t pos = dot.find("fillcolor"); pos != std::string::npos;
       pos = dot.find("fillcolor", pos + 1))
    ++filled;
  for (std::size_t pos = dot.find("penwidth"); pos != std::string::npos;
       pos = dot.find("penwidth", pos + 1))
    ++bold;
  EXPECT_EQ(filled, ne->k_matching_ne.vp_support.size());
  EXPECT_EQ(bold, ne->configuration.defender.edge_union().size());
}

TEST(Formats, ConfigurationTextIsStableAcrossSerializations) {
  const TupleGame game(graph::grid_graph(2, 4), 2, 2);
  const auto ne = a_tuple_bipartite(game);
  ASSERT_TRUE(ne.has_value());
  const std::string once = to_text(game, ne->configuration);
  const std::string twice = to_text(game, from_text(game, once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace defender::core
