// Whole-pipeline invariant sweep: for a grid of (board family, k, ν)
// instances, run the full equilibrium pipeline and assert every invariant
// the library promises at once — structural (Definition 4.1), analytic
// (Claims 4.3/4.9, Corollary 4.10), verification (Theorem 3.4), value
// consistency (double oracle), serialization round trips, and simulation
// agreement. One parameterized body, many instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/double_oracle.hpp"
#include "core/k_matching.hpp"
#include "core/payoff.hpp"
#include "core/reduction.hpp"
#include "core/serialization.hpp"
#include "graph/generators.hpp"
#include "sim/playout.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

struct SweepCase {
  std::string label;
  graph::Graph g;
  std::size_t k;
  std::size_t nu;
};

std::vector<SweepCase> sweep_cases() {
  util::Rng rng(321);
  std::vector<SweepCase> cases;
  const std::vector<std::pair<std::string, graph::Graph>> boards = {
      {"P9", graph::path_graph(9)},
      {"C10", graph::cycle_graph(10)},
      {"S7", graph::star_graph(7)},
      {"G3x4", graph::grid_graph(3, 4)},
      {"Q3", graph::hypercube_graph(3)},
      {"L5", graph::ladder_graph(5)},
      {"T12", graph::random_tree(12, rng)},
      {"B4x6", graph::random_bipartite(4, 6, 0.4, rng)},
  };
  for (const auto& [name, g] : boards)
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}})
      for (std::size_t nu : {std::size_t{1}, std::size_t{5}})
        cases.push_back({name + "/k" + std::to_string(k) + "/nu" +
                             std::to_string(nu),
                         g, k, nu});
  return cases;
}

class FamilySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FamilySweep, FullPipelineInvariants) {
  const SweepCase& c = GetParam();
  const auto partition = find_partition_bipartite(c.g);
  ASSERT_TRUE(partition.has_value());
  if (c.k > partition->independent_set.size() || c.k > c.g.num_edges())
    GTEST_SKIP() << "k exceeds the admissible range for this board";
  const TupleGame game(c.g, c.k, c.nu);
  const auto result = a_tuple(game, *partition);
  ASSERT_TRUE(result.has_value());

  // Structural: Definition 4.1 + cover conditions.
  EXPECT_TRUE(is_k_matching_configuration(game,
                                          result->k_matching_ne.vp_support,
                                          result->k_matching_ne.tp_support));
  EXPECT_TRUE(satisfies_cover_conditions(game, result->k_matching_ne));

  // Analytic: Claims 4.3/4.9 and Corollary 4.10.
  const std::size_t e_num = result->edge_model_ne.tp_support.size();
  EXPECT_EQ(result->support_size, lifted_support_size(e_num, c.k));
  EXPECT_EQ(result->tuples_per_edge, lifted_tuples_per_edge(e_num, c.k));
  const double hit_pred =
      analytic_hit_probability(game, result->k_matching_ne);
  const auto hit = hit_probabilities(game, result->configuration);
  for (graph::Vertex v : result->k_matching_ne.vp_support)
    EXPECT_NEAR(hit[v], hit_pred, 1e-12);
  EXPECT_NEAR(defender_profit(game, result->configuration),
              analytic_defender_profit(game, result->k_matching_ne), 1e-9);

  // Verification: Theorem 3.4 accepts.
  EXPECT_TRUE(verify_mixed_ne(game, result->configuration,
                              Oracle::kBranchAndBound)
                  .is_ne());

  // Value consistency: the double oracle independently lands on the same
  // unique value (run with single-attacker normalization).
  const TupleGame unit_game(c.g, c.k, 1);
  EXPECT_NEAR(solve_double_oracle(unit_game).value, hit_pred, 1e-6);

  // Serialization round trip preserves the payoff-relevant state.
  const MixedConfiguration restored =
      from_text(game, to_text(game, result->configuration));
  EXPECT_EQ(hit_probabilities(game, restored), hit);

  // Simulation: a short playout lands near the analytic profit.
  util::Rng rng(c.k * 1000 + c.nu);
  const auto stats =
      sim::run_playouts(game, result->configuration, 40000, rng);
  EXPECT_NEAR(stats.defender_profit_mean,
              defender_profit(game, result->configuration),
              0.05 * static_cast<double>(c.nu) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Boards, FamilySweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return name;
    });

}  // namespace
}  // namespace defender::core
