// Integration property suite for Theorem 3.4: the graph-theoretic
// characterization accepts exactly the mixed NE. Equilibria produced by
// three independent routes (Lemma 4.1 constructions, LP zero-sum solutions,
// pure covering tuples) must pass; perturbations must fail.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/characterization.hpp"
#include "core/payoff.hpp"
#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(Theorem34, AcceptsConstructedEquilibriaAcrossBipartiteSweep) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_bipartite(3, 4, 0.45, rng);
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value()) << "seed " << seed;
    const std::size_t kmax =
        std::min<std::size_t>(partition->independent_set.size(), 3);
    for (std::size_t k = 1; k <= kmax; ++k) {
      const TupleGame game(g, k, 2);
      const auto result = a_tuple(game, *partition);
      ASSERT_TRUE(result.has_value()) << "seed " << seed << " k=" << k;
      const auto report = verify_mixed_ne(game, result->configuration,
                                          Oracle::kExhaustive);
      EXPECT_TRUE(report.is_ne()) << "seed " << seed << " k=" << k << "\n"
                                  << report.describe();
    }
  }
}

TEST(Theorem34, AcceptsLpEquilibriaOnSmallBoards) {
  for (const auto& g : {graph::path_graph(5), graph::cycle_graph(6),
                        graph::star_graph(4)}) {
    for (std::size_t k = 1; k <= 2; ++k) {
      const TupleGame game(g, k, 2);
      const auto config = to_configuration(game, solve_zero_sum(game));
      EXPECT_TRUE(
          is_mixed_ne_by_best_response(game, config, Oracle::kExhaustive,
                                       1e-6));
    }
  }
}

TEST(Theorem34, BestResponseAndCharacterizationAgreeOnRandomConfigurations) {
  // Theorem 3.4 states conditions 1-3 are *equivalent* to Nash (mutual best
  // response). Random configurations on random boards must never split the
  // two checks.
  util::Rng rng(303);
  std::size_t checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const graph::Graph g = graph::gnp_graph(6, 0.5, rng);
    const std::size_t k = 1 + rng.below(2);
    if (g.num_edges() < k + 1) continue;
    const TupleGame game(g, k, 2);
    // Random supports and probabilities.
    const std::size_t vp_count = 1 + rng.below(3);
    graph::VertexSet vp;
    for (std::size_t v : util::sample_without_replacement(
             g.num_vertices(), std::min(vp_count, g.num_vertices()), rng))
      vp.push_back(static_cast<graph::Vertex>(v));
    const std::size_t tuples = 1 + rng.below(3);
    std::vector<Tuple> support;
    for (std::size_t t = 0; t < tuples; ++t) {
      Tuple tup;
      for (std::size_t e :
           util::sample_without_replacement(g.num_edges(), k, rng))
        tup.push_back(static_cast<graph::EdgeId>(e));
      std::sort(tup.begin(), tup.end());
      support.push_back(std::move(tup));
    }
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()), support.end());

    const MixedConfiguration config = symmetric_configuration(
        game, VertexDistribution::uniform(std::move(vp)),
        TupleDistribution::uniform(std::move(support)));
    const bool by_char =
        verify_mixed_ne(game, config, Oracle::kExhaustive).is_ne();
    const bool by_br =
        is_mixed_ne_by_best_response(game, config, Oracle::kExhaustive);
    // The sufficient direction of Theorem 3.4 is airtight: a configuration
    // satisfying all clauses is a mutual best response. (The necessary
    // direction of condition 1 has an edge case pinned by the test below.)
    if (by_char) EXPECT_TRUE(by_br) << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 60u);
}

TEST(Theorem34, Claim36EdgeCaseWhenOneTupleCoversEveryAttacker) {
  // Known gap in Claim 3.6's necessity argument (documented in DESIGN.md):
  // on P4 with k = 2 the defender's single tuple {(0,1),(2,3)} covers every
  // vertex, so with attackers pinned on vertex 1 the profile is a mutual
  // best response, yet D(VP) = {1} fails to cover support edge (2,3).
  const TupleGame game(graph::path_graph(4), 2, 2);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({1}),
      TupleDistribution::uniform({{0, 2}}));
  EXPECT_TRUE(is_mixed_ne_by_best_response(game, config, Oracle::kExhaustive));
  const auto report = verify_mixed_ne(game, config, Oracle::kExhaustive);
  EXPECT_FALSE(report.vertex_cover_of_support);
  EXPECT_TRUE(report.edge_cover);
  EXPECT_TRUE(report.hits_uniform_minimum);
  EXPECT_TRUE(report.support_tuples_maximal);
}

TEST(Theorem34, PerturbedEquilibriumProbabilitiesFail) {
  const TupleGame game(graph::cycle_graph(6), 1, 2);
  // Equilibrium support with one probability nudged off-uniform.
  const MixedConfiguration nudged = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution({{0}, {3}, {5}}, {1.0 / 3 + 0.05, 1.0 / 3 - 0.05,
                                          1.0 / 3}));
  EXPECT_FALSE(verify_mixed_ne(game, nudged, Oracle::kExhaustive).is_ne());
}

TEST(Theorem34, SupersetSupportWithUniformProbsFails) {
  // Adding a redundant tuple dilutes the hit probabilities unevenly.
  const TupleGame game(graph::cycle_graph(6), 1, 2);
  const MixedConfiguration diluted = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution::uniform({{0}, {3}, {5}, {1}}));
  EXPECT_FALSE(verify_mixed_ne(game, diluted, Oracle::kExhaustive).is_ne());
}

}  // namespace
}  // namespace defender::core
