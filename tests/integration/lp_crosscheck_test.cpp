// Integration suite E8: the combinatorial equilibrium hit probability
// k/|E(D(tp))| (Claim 4.3) must equal the value of the associated zero-sum
// matrix game, computed independently by the simplex substrate. The value
// of a zero-sum game is unique across all equilibria, so any mismatch
// means one of the two pipelines is wrong.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/k_matching.hpp"
#include "core/zero_sum.hpp"
#include "graph/generators.hpp"
#include "lp/matrix_game.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

void expect_value_agreement(const graph::Graph& g, std::size_t k) {
  const TupleGame game(g, k, 1);
  const auto result = a_tuple_bipartite(game);
  ASSERT_TRUE(result.has_value()) << "k=" << k;
  const double combinatorial =
      analytic_hit_probability(game, result->k_matching_ne);
  const lp::MatrixGameSolution lp_solution = solve_zero_sum(game);
  EXPECT_NEAR(lp_solution.value, combinatorial, 1e-7)
      << "board n=" << g.num_vertices() << " k=" << k;
}

TEST(LpCrosscheck, StructuredFamiliesSmallK) {
  expect_value_agreement(graph::path_graph(6), 1);
  expect_value_agreement(graph::path_graph(6), 2);
  expect_value_agreement(graph::cycle_graph(6), 1);
  expect_value_agreement(graph::cycle_graph(6), 2);
  expect_value_agreement(graph::cycle_graph(6), 3);
  expect_value_agreement(graph::star_graph(6), 1);
  expect_value_agreement(graph::star_graph(6), 3);
  expect_value_agreement(graph::complete_bipartite(2, 5), 2);
  expect_value_agreement(graph::ladder_graph(3), 2);
}

TEST(LpCrosscheck, RandomBipartiteBoards) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::random_bipartite(3, 4, 0.4, rng);
    if (g.num_edges() > 9) continue;  // keep C(m, k) enumerable
    const auto partition = find_partition_bipartite(g);
    ASSERT_TRUE(partition.has_value());
    for (std::size_t k = 1; k <= std::min<std::size_t>(2, partition->independent_set.size()); ++k)
      expect_value_agreement(g, k);
  }
}

TEST(LpCrosscheck, LpDefenderStrategyIsOptimalAgainstTheFormula) {
  // The LP's defender strategy must guarantee at least k/|E(D(tp))| against
  // every vertex (row security level = value).
  const TupleGame game(graph::cycle_graph(6), 2, 1);
  const lp::Matrix payoff = coverage_matrix(game);
  const lp::MatrixGameSolution s = lp::solve_matrix_game(payoff);
  EXPECT_NEAR(lp::row_security_level(payoff, s.row_strategy), s.value, 1e-7);
  EXPECT_NEAR(s.value, 2.0 / 3, 1e-7);
}

}  // namespace
}  // namespace defender::core
