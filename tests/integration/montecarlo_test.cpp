// Integration suite E9: Monte-Carlo playouts agree with the analytic
// expectations (equations (1)-(2)) on equilibrium and non-equilibrium
// configurations alike.
#include <gtest/gtest.h>

#include "core/atuple.hpp"
#include "core/payoff.hpp"
#include "graph/generators.hpp"
#include "sim/playout.hpp"
#include "util/random.hpp"

namespace defender::core {
namespace {

TEST(MonteCarlo, EquilibriumConfigurationsAcrossFamilies) {
  std::uint64_t seed = 1000;
  for (const auto& g : {graph::cycle_graph(8), graph::grid_graph(2, 4),
                        graph::star_graph(6)}) {
    for (std::size_t k : {1, 2}) {
      const TupleGame game(g, k, 4);
      const auto result = a_tuple_bipartite(game);
      ASSERT_TRUE(result.has_value());
      util::Rng rng(seed++);
      const sim::PlayoutStats stats =
          sim::run_playouts(game, result->configuration, 120000, rng);
      EXPECT_LT(sim::max_abs_deviation(game, result->configuration, stats),
                0.012)
          << "n=" << g.num_vertices() << " k=" << k;
    }
  }
}

TEST(MonteCarlo, NonEquilibriumConfigurationStillMatchesExpectations) {
  // Equations (1)-(2) hold for *any* mixed configuration, not just NE.
  const TupleGame game(graph::path_graph(6), 2, 3);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution({0, 2, 5}, {0.6, 0.3, 0.1}),
      TupleDistribution({{0, 3}, {1, 2}, {2, 4}}, {0.5, 0.25, 0.25}));
  util::Rng rng(77);
  const sim::PlayoutStats stats = sim::run_playouts(game, config, 150000, rng);
  EXPECT_LT(sim::max_abs_deviation(game, config, stats), 0.012);
}

TEST(MonteCarlo, HeterogeneousAttackersMatchPerPlayerProfits) {
  const TupleGame game(graph::cycle_graph(6), 1, 2);
  MixedConfiguration config{
      {VertexDistribution({0}, {1.0}),
       VertexDistribution({2, 4}, {0.5, 0.5})},
      TupleDistribution::uniform({{0}, {3}, {5}})};
  util::Rng rng(123);
  const sim::PlayoutStats stats = sim::run_playouts(game, config, 100000, rng);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(stats.attacker_escape_freq[i],
                attacker_profit(game, config, i), 0.01)
        << "attacker " << i;
  EXPECT_NEAR(stats.defender_profit_mean, defender_profit(game, config),
              0.01);
}

TEST(MonteCarlo, StandardErrorShrinksWithRounds) {
  const TupleGame game(graph::cycle_graph(6), 1, 1);
  const MixedConfiguration config = symmetric_configuration(
      game, VertexDistribution::uniform({0, 2, 4}),
      TupleDistribution::uniform({{0}, {3}, {5}}));
  util::Rng rng1(5), rng2(5);
  const auto small = sim::run_playouts(game, config, 500, rng1);
  const auto large = sim::run_playouts(game, config, 200000, rng2);
  const double analytic = defender_profit(game, config);
  EXPECT_LE(std::abs(large.defender_profit_mean - analytic),
            std::abs(small.defender_profit_mean - analytic) + 0.01);
}

}  // namespace
}  // namespace defender::core
