// SolveEngine functional coverage: batch correctness against the direct
// solvers, the retry ladder's resume/enlarge/fallback rungs, watchdog
// kills, job validation, and the RetryPolicy / JobSolver round-trips.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/double_oracle.hpp"
#include "core/game.hpp"
#include "core/zero_sum.hpp"
#include "engine/job.hpp"
#include "engine/retry.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"

namespace defender::engine {
namespace {

core::TupleGame petersen_game() {
  return core::TupleGame(graph::petersen_graph(), 3, 1);
}

SolveJob make_job(JobSolver solver, std::size_t iterations = 400) {
  SolveJob job{petersen_game()};
  job.solver = solver;
  job.tolerance = 1e-9;
  job.budget = SolveBudget::iterations(iterations);
  if (is_weighted(solver))
    job.weights.assign(job.game.graph().num_vertices(), 1.0);
  return job;
}

TEST(SolveEngine, BatchMatchesDirectSolvers) {
  const core::TupleGame game = petersen_game();
  const double lp_value =
      core::solve_zero_sum_budgeted(game, SolveBudget::iterations(20'000))
          .result.value;

  std::vector<SolveJob> jobs;
  for (JobSolver solver : kAllJobSolvers) {
    // The learning dynamics need a looser gap to finish in-budget.
    SolveJob job = make_job(solver, 4000);
    if (solver == JobSolver::kFictitiousPlay ||
        solver == JobSolver::kWeightedFictitiousPlay ||
        solver == JobSolver::kHedge)
      job.tolerance = 5e-2;
    jobs.push_back(std::move(job));
  }

  EngineConfig config;
  config.workers = 3;
  SolveEngine engine(config);
  const BatchReport report = engine.run(jobs);

  ASSERT_EQ(report.results.size(), kJobSolverCount);
  EXPECT_EQ(report.completed, kJobSolverCount);
  EXPECT_EQ(report.degraded, 0u);
  for (const JobResult& r : report.results) {
    EXPECT_EQ(r.status.code, StatusCode::kOk) << r.status.to_string();
    EXPECT_EQ(r.job_index, static_cast<std::size_t>(&r - &report.results[0]));
    // Unweighted solvers bracket the hit probability; the weighted ones
    // bracket the damage value, which for unit weights is its complement.
    const double truth = is_weighted(r.solver) ? 1.0 - lp_value : lp_value;
    EXPECT_LE(r.lower_bound, truth + 1e-9) << to_string(r.solver);
    EXPECT_GE(r.upper_bound, truth - 1e-9) << to_string(r.solver);
    EXPECT_GE(r.value, r.lower_bound);
    EXPECT_LE(r.value, r.upper_bound);
    ASSERT_EQ(r.attempts.size(), 1u);
    EXPECT_EQ(r.attempts[0].action, AttemptAction::kInitial);
    EXPECT_FALSE(r.fallback_used);
    EXPECT_FALSE(r.watchdog_killed);
  }
}

TEST(SolveEngine, RetryResumeReachesTheUninterruptedAnswer) {
  // One iteration per attempt exhausts immediately; the ladder resumes
  // from the checkpoint with a grown budget until the gap closes. The
  // resumed trajectory must match the unconstrained solve bit-for-bit.
  const core::TupleGame game = petersen_game();
  const auto direct = core::solve_double_oracle_budgeted(
      game, 1e-9, SolveBudget::iterations(400));
  ASSERT_EQ(direct.status.code, StatusCode::kOk);

  SolveJob job = make_job(JobSolver::kDoubleOracle, 1);
  EngineConfig config;
  config.retry.max_attempts = 6;
  config.retry.budget_growth = 4.0;
  SolveEngine engine(config);
  const JobResult r = engine.run_serial(job, 0);

  EXPECT_EQ(r.status.code, StatusCode::kOk) << r.status.to_string();
  ASSERT_GE(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].outcome, StatusCode::kIterationLimit);
  for (std::size_t i = 1; i < r.attempts.size(); ++i)
    EXPECT_EQ(r.attempts[i].action, AttemptAction::kResume);
  EXPECT_FALSE(r.fallback_used);
  EXPECT_EQ(r.value, direct.result.value);
  EXPECT_EQ(r.lower_bound, direct.result.lower_bound);
  EXPECT_EQ(r.upper_bound, direct.result.upper_bound);
}

TEST(SolveEngine, UnstableLpFallsBackToDoubleOracle) {
  // lp-force-unstable at rate 1 makes the direct simplex route report
  // kNumericallyUnstable; the ladder's fallback rung hands the job to the
  // double oracle, which tolerates flagged restricted LPs and closes the
  // gap anyway.
  const double lp_value =
      core::solve_zero_sum_budgeted(petersen_game(),
                                    SolveBudget::iterations(20'000))
          .result.value;

  SolveJob job = make_job(JobSolver::kZeroSumLp, 400);
  job.fault_plan.seed = 7;
  job.fault_plan.rate_of(fault::FaultSite::kLpForceUnstable) = 1.0;

  EngineConfig config;
  config.retry.max_attempts = 3;
  SolveEngine engine(config);
  const JobResult r = engine.run_serial(job, 0);

  ASSERT_GE(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].solver, JobSolver::kZeroSumLp);
  EXPECT_EQ(r.attempts[0].outcome, StatusCode::kNumericallyUnstable);
  EXPECT_EQ(r.attempts[1].action, AttemptAction::kFallback);
  EXPECT_EQ(r.attempts[1].solver, JobSolver::kDoubleOracle);
  EXPECT_TRUE(r.fallback_used);
  EXPECT_GT(r.faults_injected, 0u);
  // The envelope stays sound across the faulted attempt.
  EXPECT_LE(r.lower_bound, lp_value + 1e-9);
  EXPECT_GE(r.upper_bound, lp_value - 1e-9);
}

TEST(SolveEngine, WatchdogKillsAStalledJobAndSparesTheRest) {
  // Job 1 stalls (worker-stall at rate 1) for 3x its watchdog deadline;
  // the watchdog cancels it. Jobs 0 and 2 run fault-free next to it and
  // must come out bit-identical to serial solves.
  std::vector<SolveJob> jobs;
  jobs.push_back(make_job(JobSolver::kDoubleOracle));
  SolveJob stalled = make_job(JobSolver::kFictitiousPlay, 100'000);
  stalled.tolerance = 0;  // never converges: only the watchdog ends it
  stalled.fault_plan.seed = 11;
  stalled.fault_plan.rate_of(fault::FaultSite::kWorkerStall) = 1.0;
  stalled.watchdog_seconds = 0.15;
  jobs.push_back(std::move(stalled));
  jobs.push_back(make_job(JobSolver::kHedge, 300));
  jobs[2].tolerance = 1e-3;

  EngineConfig config;
  config.workers = 3;
  config.retry = RetryPolicy::none();
  SolveEngine engine(config);
  const BatchReport report = engine.run(jobs);

  ASSERT_EQ(report.results.size(), 3u);
  const JobResult& killed = report.results[1];
  EXPECT_TRUE(killed.watchdog_killed);
  EXPECT_EQ(killed.status.code, StatusCode::kCancelled)
      << killed.status.to_string();
  EXPECT_GE(report.deadline_kills, 1u);

  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const JobResult serial = engine.run_serial(jobs[i], i);
    EXPECT_EQ(report.results[i].status.code, serial.status.code);
    EXPECT_EQ(report.results[i].value, serial.value);
    EXPECT_EQ(report.results[i].lower_bound, serial.lower_bound);
    EXPECT_EQ(report.results[i].upper_bound, serial.upper_bound);
    EXPECT_EQ(report.results[i].iterations, serial.iterations);
  }
}

TEST(SolveEngine, MalformedJobsDegradeWithoutPoisoningTheBatch) {
  std::vector<SolveJob> jobs;
  jobs.push_back(make_job(JobSolver::kDoubleOracle));
  SolveJob bad_weights = make_job(JobSolver::kWeightedDoubleOracle);
  bad_weights.weights.resize(3);  // wrong vertex count
  jobs.push_back(std::move(bad_weights));
  SolveJob bad_hedge = make_job(JobSolver::kHedge);
  bad_hedge.budget.max_iterations = 0;  // no horizon
  jobs.push_back(std::move(bad_hedge));

  SolveEngine engine(EngineConfig{});
  const BatchReport report = engine.run(jobs);

  EXPECT_EQ(report.results[0].status.code, StatusCode::kOk);
  EXPECT_EQ(report.results[1].status.code, StatusCode::kInvalidInput);
  EXPECT_EQ(report.results[2].status.code, StatusCode::kInvalidInput);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.degraded, 2u);
  // Rejected jobs keep the a-priori bracket, never an invented one.
  EXPECT_EQ(report.results[1].lower_bound, 0.0);
  EXPECT_EQ(report.results[1].upper_bound, 1.0);
}

TEST(SolveEngine, JsonReportIsWellFormedPerLine) {
  std::vector<SolveJob> jobs;
  jobs.push_back(make_job(JobSolver::kDoubleOracle));
  jobs.push_back(make_job(JobSolver::kZeroSumLp));
  SolveEngine engine(EngineConfig{});
  const BatchReport report = engine.run(jobs);
  const std::string jsonl = report.to_jsonl();

  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"solver\":\"double-oracle\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"attempts\":["), std::string::npos);
}

TEST(RetryPolicy, SpecRoundTripsAndRejectsGarbage) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.budget_growth = 2.5;
  policy.tolerance_scale = 100.0;
  policy.allow_fallback = false;
  policy.backoff_ms = 10.0;
  policy.backoff_cap_ms = 250.0;

  const auto parsed = RetryPolicy::try_parse(policy.to_string());
  ASSERT_TRUE(parsed.ok()) << parsed.status.to_string();
  EXPECT_EQ(parsed.result.max_attempts, 5u);
  EXPECT_EQ(parsed.result.budget_growth, 2.5);
  EXPECT_EQ(parsed.result.tolerance_scale, 100.0);
  EXPECT_FALSE(parsed.result.allow_fallback);
  EXPECT_EQ(parsed.result.backoff_ms, 10.0);
  EXPECT_EQ(parsed.result.backoff_cap_ms, 250.0);

  // Partial specs keep defaults for the rest.
  const auto partial = RetryPolicy::try_parse("attempts=7");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.result.max_attempts, 7u);
  EXPECT_EQ(partial.result.budget_growth, RetryPolicy{}.budget_growth);

  for (const char* bad :
       {"attempts=0", "attempts=x", "grow=0.5", "grow=nope", "scale=-1",
        "fallback=maybe", "backoff-ms=-3", "mystery=1", "attempts"}) {
    const auto r = RetryPolicy::try_parse(bad);
    EXPECT_EQ(r.status.code, StatusCode::kInvalidInput) << bad;
    EXPECT_FALSE(r.status.message.empty()) << bad;
  }
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.backoff_ms = 10;
  policy.backoff_cap_ms = 65;
  EXPECT_EQ(policy.backoff_before_attempt_ms(1), 0.0);
  EXPECT_EQ(policy.backoff_before_attempt_ms(2), 10.0);
  EXPECT_EQ(policy.backoff_before_attempt_ms(3), 20.0);
  EXPECT_EQ(policy.backoff_before_attempt_ms(4), 40.0);
  EXPECT_EQ(policy.backoff_before_attempt_ms(5), 65.0);
  EXPECT_EQ(policy.backoff_before_attempt_ms(50), 65.0);
}

TEST(JobSolver, NamesRoundTrip) {
  for (JobSolver solver : kAllJobSolvers) {
    JobSolver parsed{};
    ASSERT_TRUE(try_parse_job_solver(to_string(solver), &parsed));
    EXPECT_EQ(parsed, solver);
  }
  EXPECT_FALSE(try_parse_job_solver("quantum-annealer", nullptr));
}

TEST(DeriveJobSeed, IsIndexSensitive) {
  EXPECT_NE(derive_job_seed(42, 0), derive_job_seed(42, 1));
  EXPECT_NE(derive_job_seed(42, 0), derive_job_seed(43, 0));
  EXPECT_EQ(derive_job_seed(42, 7), derive_job_seed(42, 7));
}

}  // namespace
}  // namespace defender::engine
