// The cache must be INVISIBLE in results: a fixed-seed 200-job batch —
// mixed solvers, mixed boards, a third of the jobs under armed fault
// plans — produces bit-identical JobResults with the cache disabled
// (canonical-form routing only), enabled cold, and pre-warmed, at 1, 4,
// and 16 workers (docs/CACHE.md).
//
// Also pinned here: armed-fault jobs never populate the cache, and
// opt-in warm starts resume from a structural twin's checkpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "core/budget.hpp"
#include "core/game.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace defender::engine {
namespace {

constexpr std::uint64_t kBatchSeed = 0xCAC4Eu;
constexpr std::size_t kJobs = 200;

graph::Graph board_for(std::size_t i) {
  switch (i % 5) {
    case 0: return graph::cycle_graph(6 + i % 5);
    case 1: return graph::path_graph(6 + i % 4);
    case 2: return graph::grid_graph(3, 3);
    case 3: return graph::wheel_graph(5 + i % 4);
    default: return graph::complete_bipartite(3, 3 + i % 3);
  }
}

// Same shape as the engine determinism batch: every solver in rotation,
// weighted jobs with seed-derived weights, a third of the jobs faulted.
// The i % 5 board rotation repeats isomorphic boards, so a cold cache
// gets real intra-batch hits.
std::vector<SolveJob> build_batch() {
  std::vector<SolveJob> jobs;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    const std::uint64_t seed = derive_job_seed(kBatchSeed, i);
    SolveJob job{core::TupleGame(board_for(i), 2, 1)};
    job.solver = kAllJobSolvers[i % kJobSolverCount];
    job.budget = SolveBudget::iterations(60);
    job.tolerance =
        (job.solver == JobSolver::kDoubleOracle ||
         job.solver == JobSolver::kWeightedDoubleOracle ||
         job.solver == JobSolver::kZeroSumLp)
            ? 1e-9
            : 1e-2;
    if (is_weighted(job.solver)) {
      const std::size_t n = job.game.graph().num_vertices();
      for (std::size_t v = 0; v < n; ++v)
        job.weights.push_back(1.0 +
                              static_cast<double>((seed >> (v % 48)) & 7) / 8.0);
    }
    if (i % 3 == 0) {
      job.fault_plan.seed = seed;
      job.fault_plan.set_all(0.05);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_identical(const JobResult& a, const JobResult& b,
                      const char* mode, std::size_t workers) {
  EXPECT_EQ(a.status.code, b.status.code)
      << "job " << a.job_index << " [" << mode << " @" << workers << "]";
  EXPECT_EQ(a.status.message, b.status.message) << "job " << a.job_index;
  EXPECT_EQ(a.status.iterations, b.status.iterations) << "job " << a.job_index;
  EXPECT_EQ(a.status.residual, b.status.residual) << "job " << a.job_index;
  EXPECT_EQ(a.value, b.value)
      << "job " << a.job_index << " [" << mode << " @" << workers << "]";
  EXPECT_EQ(a.lower_bound, b.lower_bound) << "job " << a.job_index;
  EXPECT_EQ(a.upper_bound, b.upper_bound) << "job " << a.job_index;
  EXPECT_EQ(a.iterations, b.iterations) << "job " << a.job_index;
  EXPECT_EQ(a.fallback_used, b.fallback_used) << "job " << a.job_index;
  EXPECT_EQ(a.watchdog_killed, b.watchdog_killed) << "job " << a.job_index;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << "job " << a.job_index;
  EXPECT_EQ(a.convergence_samples, b.convergence_samples)
      << "job " << a.job_index;
}

TEST(EngineCacheDeterminism, CacheOnOffAndPrewarmedAreBitIdentical) {
  const std::vector<SolveJob> jobs = build_batch();

  // Reference: canonical-form routing with NO cache, one worker.
  EngineConfig reference_config;
  reference_config.workers = 1;
  reference_config.canonicalize = true;
  const BatchReport reference = SolveEngine(reference_config).run(jobs);
  ASSERT_EQ(reference.results.size(), kJobs);
  EXPECT_GT(reference.faulted_jobs, 0u);
  EXPECT_GT(reference.completed, kJobs / 2);

  // A warmed cache, populated by one full pass.
  cache::SolveCache warmed;
  {
    EngineConfig warm_config;
    warm_config.workers = 4;
    warm_config.cache = &warmed;
    SolveEngine(warm_config).run(jobs);
    ASSERT_GT(warmed.size(), 0u);
  }

  for (std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    // Cold cache: the batch populates and hits it mid-flight.
    cache::SolveCache cold;
    EngineConfig cold_config;
    cold_config.workers = workers;
    cold_config.cache = &cold;
    const BatchReport with_cold = SolveEngine(cold_config).run(jobs);
    ASSERT_EQ(with_cold.results.size(), kJobs);
    EXPECT_GT(cold.stats().hits, 0u) << "board rotation should dedup";

    // Pre-warmed cache: most eligible jobs are pure hits.
    EngineConfig warm_config;
    warm_config.workers = workers;
    warm_config.cache = &warmed;
    const BatchReport with_warm = SolveEngine(warm_config).run(jobs);
    ASSERT_EQ(with_warm.results.size(), kJobs);

    for (std::size_t i = 0; i < kJobs; ++i) {
      expect_identical(reference.results[i], with_cold.results[i], "cold",
                       workers);
      expect_identical(reference.results[i], with_warm.results[i], "warm",
                       workers);
    }
    EXPECT_EQ(with_cold.completed, reference.completed);
    EXPECT_EQ(with_cold.degraded, reference.degraded);
    EXPECT_EQ(with_warm.completed, reference.completed);
    EXPECT_EQ(with_warm.degraded, reference.degraded);
  }
}

TEST(EngineCacheDeterminism, ArmedFaultJobsNeverPopulateTheCache) {
  cache::SolveCache cache;
  EngineConfig config;
  config.workers = 4;
  config.cache = &cache;
  SolveEngine engine(config);

  std::vector<SolveJob> jobs;
  for (std::size_t i = 0; i < 24; ++i) {
    SolveJob job{core::TupleGame(board_for(i), 2, 1)};
    job.solver = JobSolver::kDoubleOracle;
    job.budget = SolveBudget::iterations(60);
    job.fault_plan.seed = derive_job_seed(kBatchSeed, i);
    job.fault_plan.set_all(0.1);  // armed, whether or not anything fires
    jobs.push_back(std::move(job));
  }
  engine.run(jobs);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stores, 0u);
  // And the keys these jobs would use all miss.
  for (const SolveJob& job : jobs) {
    const CanonicalJobKey key = canonical_key_for_job(job);
    EXPECT_FALSE(cache.lookup(key.key).has_value());
  }
}

TEST(EngineCacheDeterminism, WarmStartResumesFromStructuralTwin) {
  const graph::Graph g = graph::grid_graph(3, 3);

  // Pass 1: a loose-tolerance solve populates the cache (with checkpoint).
  cache::SolveCache cache;
  {
    EngineConfig config;
    config.cache = &cache;
    SolveJob loose{core::TupleGame(g, 2, 1)};
    loose.solver = JobSolver::kDoubleOracle;
    loose.tolerance = 1e-2;
    loose.budget = SolveBudget::iterations(200);
    const BatchReport report = SolveEngine(config).run({loose});
    ASSERT_TRUE(report.results.at(0).ok());
    ASSERT_EQ(cache.stats().stores, 1u);
  }

  // Pass 2: a tight-tolerance solve of the same structure misses the
  // exact key but resumes from the loose solve's checkpoint.
  obs::MetricsRegistry metrics;
  EngineConfig config;
  config.cache = &cache;
  config.cache_warm_start = true;
  config.metrics = &metrics;
  SolveJob tight{core::TupleGame(g, 2, 1)};
  tight.solver = JobSolver::kDoubleOracle;
  tight.tolerance = 1e-9;
  tight.budget = SolveBudget::iterations(200);
  const BatchReport report = SolveEngine(config).run({tight});
  ASSERT_TRUE(report.results.at(0).ok());
  // (cache.stats().warm_hits stays 0 here: the engine resumes from its
  // batch-start warm SNAPSHOT, not from warm_checkpoint() probes.)
  EXPECT_EQ(metrics.counter("cache.warm_starts").value(), 1u);

  // The warm-started answer matches a cold canonical solve to tolerance.
  EngineConfig cold_config;
  cold_config.canonicalize = true;
  const BatchReport cold = SolveEngine(cold_config).run({tight});
  ASSERT_TRUE(cold.results.at(0).ok());
  EXPECT_NEAR(report.results.at(0).value, cold.results.at(0).value, 1e-9);

  // Warm-resumed results are never stored back (they are not
  // cold-trajectory reproducible), so the cache still has one entry.
  EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(EngineCacheDeterminism, ConvergenceCollectionBypassesTheCache) {
  cache::SolveCache cache;
  EngineConfig config;
  config.cache = &cache;
  config.collect_convergence = true;
  SolveJob job{core::TupleGame(graph::cycle_graph(6), 2, 1)};
  job.solver = JobSolver::kDoubleOracle;
  job.budget = SolveBudget::iterations(60);
  const BatchReport report = SolveEngine(config).run({job});
  ASSERT_TRUE(report.results.at(0).ok());
  EXPECT_GT(report.results.at(0).convergence_samples, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace defender::engine
