// The engine's determinism contract: a fixed-seed 200-job batch — mixed
// solvers, mixed boards, a third of the jobs running under armed fault
// plans — produces bit-identical JobResults at 1, 4, and 16 workers.
// Everything except wall-clock elapsed fields must be a pure function of
// the job, never of scheduling order (docs/ENGINE.md).
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/budget.hpp"
#include "core/game.hpp"
#include "engine/job.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace defender::engine {
namespace {

constexpr std::uint64_t kBatchSeed = 0xD5FEu;
constexpr std::size_t kJobs = 200;

graph::Graph board_for(std::size_t i) {
  switch (i % 5) {
    case 0: return graph::cycle_graph(6 + i % 5);
    case 1: return graph::path_graph(6 + i % 4);
    case 2: return graph::grid_graph(3, 3);
    case 3: return graph::wheel_graph(5 + i % 4);
    default: return graph::complete_bipartite(3, 3 + i % 3);
  }
}

std::vector<SolveJob> build_batch() {
  std::vector<SolveJob> jobs;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    const std::uint64_t seed = derive_job_seed(kBatchSeed, i);
    SolveJob job{core::TupleGame(board_for(i), 2, 1)};
    job.solver = kAllJobSolvers[i % kJobSolverCount];
    // Iteration-only budgets: a faulted job can skew the shared obs::Clock,
    // so wall-clock budgets are the one knob that would break determinism.
    job.budget = SolveBudget::iterations(60);
    job.tolerance =
        (job.solver == JobSolver::kDoubleOracle ||
         job.solver == JobSolver::kWeightedDoubleOracle ||
         job.solver == JobSolver::kZeroSumLp)
            ? 1e-9
            : 1e-2;
    if (is_weighted(job.solver)) {
      const std::size_t n = job.game.graph().num_vertices();
      for (std::size_t v = 0; v < n; ++v)
        job.weights.push_back(1.0 +
                              static_cast<double>((seed >> (v % 48)) & 7) / 8.0);
    }
    if (i % 3 == 0) {
      job.fault_plan.seed = seed;
      job.fault_plan.set_all(0.05);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_identical(const JobResult& a, const JobResult& b,
                      std::size_t workers) {
  EXPECT_EQ(a.status.code, b.status.code) << "job " << a.job_index
                                          << " @" << workers << " workers";
  EXPECT_EQ(a.status.message, b.status.message) << "job " << a.job_index;
  EXPECT_EQ(a.status.iterations, b.status.iterations) << "job " << a.job_index;
  EXPECT_EQ(a.status.residual, b.status.residual) << "job " << a.job_index;
  EXPECT_EQ(a.value, b.value) << "job " << a.job_index;
  EXPECT_EQ(a.lower_bound, b.lower_bound) << "job " << a.job_index;
  EXPECT_EQ(a.upper_bound, b.upper_bound) << "job " << a.job_index;
  EXPECT_EQ(a.iterations, b.iterations) << "job " << a.job_index;
  EXPECT_EQ(a.fallback_used, b.fallback_used) << "job " << a.job_index;
  EXPECT_EQ(a.watchdog_killed, b.watchdog_killed) << "job " << a.job_index;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << "job " << a.job_index;
  EXPECT_EQ(a.convergence_samples, b.convergence_samples)
      << "job " << a.job_index;
  ASSERT_EQ(a.attempts.size(), b.attempts.size()) << "job " << a.job_index;
  for (std::size_t r = 0; r < a.attempts.size(); ++r) {
    EXPECT_EQ(a.attempts[r].attempt, b.attempts[r].attempt);
    EXPECT_EQ(a.attempts[r].action, b.attempts[r].action);
    EXPECT_EQ(a.attempts[r].solver, b.attempts[r].solver);
    EXPECT_EQ(a.attempts[r].outcome, b.attempts[r].outcome);
    EXPECT_EQ(a.attempts[r].value, b.attempts[r].value)
        << "job " << a.job_index << " attempt " << r;
    EXPECT_EQ(a.attempts[r].lower, b.attempts[r].lower);
    EXPECT_EQ(a.attempts[r].upper, b.attempts[r].upper);
    EXPECT_EQ(a.attempts[r].iterations, b.attempts[r].iterations);
    // elapsed_seconds deliberately exempt: wall time is not deterministic.
  }
}

TEST(EngineDeterminism, TwoHundredJobBatchIsWorkerCountInvariant) {
  const std::vector<SolveJob> jobs = build_batch();

  BatchReport reference;
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    EngineConfig config;
    config.workers = workers;
    SolveEngine engine(config);
    BatchReport report = engine.run(jobs);
    ASSERT_EQ(report.results.size(), kJobs);

    if (workers == 1) {
      reference = std::move(report);
      // Sanity: the fixed seed arms about a third of the jobs and at least
      // some plans actually fire.
      EXPECT_GT(reference.faulted_jobs, 0u);
      EXPECT_GT(reference.completed, kJobs / 2);
      continue;
    }
    EXPECT_EQ(report.completed, reference.completed);
    EXPECT_EQ(report.degraded, reference.degraded);
    EXPECT_EQ(report.retries, reference.retries);
    EXPECT_EQ(report.faulted_jobs, reference.faulted_jobs);
    EXPECT_EQ(report.deadline_kills, 0u);
    for (std::size_t i = 0; i < kJobs; ++i)
      expect_identical(report.results[i], reference.results[i], workers);
  }
}

TEST(EngineDeterminism, PoolMatchesSerialReferenceJobByJob) {
  // run_serial is the isolation harness's reference; the pool must agree
  // with it on every non-elapsed field even for fault-armed jobs.
  const std::vector<SolveJob> jobs = build_batch();
  EngineConfig config;
  config.workers = 8;
  SolveEngine engine(config);
  const BatchReport report = engine.run(jobs);
  for (std::size_t i = 0; i < jobs.size(); i += 17)
    expect_identical(report.results[i], engine.run_serial(jobs[i], i), 8);
}

}  // namespace
}  // namespace defender::engine
