// Per-job fault isolation: with one job deadline-starved under the
// watchdog and one job fault-garbled at rate 1, every other job in the
// batch must come out bit-equal to a serial solve of the same job, report
// a truthful status, and keep a bracket containing its fault-free LP
// value. A fault or kill degrades exactly one JobResult — never the batch.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/budget.hpp"
#include "core/game.hpp"
#include "core/zero_sum.hpp"
#include "engine/job.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"

namespace defender::engine {
namespace {

constexpr std::size_t kStalledJob = 3;
constexpr std::size_t kGarbledJob = 6;

std::vector<SolveJob> build_batch() {
  std::vector<SolveJob> jobs;
  for (std::size_t i = 0; i < 10; ++i) {
    SolveJob job{i % 2 == 0
                     ? core::TupleGame(graph::petersen_graph(), 2, 1)
                     : core::TupleGame(graph::grid_graph(3, 3), 2, 1)};
    job.solver = kAllJobSolvers[i % kJobSolverCount];
    job.budget = SolveBudget::iterations(80);
    job.tolerance =
        (job.solver == JobSolver::kFictitiousPlay ||
         job.solver == JobSolver::kWeightedFictitiousPlay ||
         job.solver == JobSolver::kHedge)
            ? 1e-2
            : 1e-9;
    if (is_weighted(job.solver))
      job.weights.assign(job.game.graph().num_vertices(), 1.0);
    jobs.push_back(std::move(job));
  }

  // Job 3: deadline-starved. The worker stalls for 3x the watchdog
  // deadline before ever reaching the solver; only the watchdog ends it.
  jobs[kStalledJob].fault_plan.seed = 101;
  jobs[kStalledJob].fault_plan.rate_of(fault::FaultSite::kWorkerStall) = 1.0;
  jobs[kStalledJob].watchdog_seconds = 0.12;
  jobs[kStalledJob].budget = SolveBudget::iterations(1'000'000);
  jobs[kStalledJob].tolerance = 0;

  // Job 6: fault-garbled. Every oracle result perturbed, every LP pivot
  // nudged, every mass vector dented — the solvers' guards must still keep
  // its bracket sound.
  jobs[kGarbledJob].fault_plan.seed = 202;
  jobs[kGarbledJob].fault_plan.rate_of(fault::FaultSite::kOracleGarble) = 1.0;
  jobs[kGarbledJob].fault_plan.rate_of(fault::FaultSite::kMassPerturb) = 1.0;
  jobs[kGarbledJob].fault_plan.rate_of(fault::FaultSite::kLpPivotPerturb) =
      1.0;
  return jobs;
}

TEST(EngineIsolation, OneStarvedAndOneGarbledJobDegradeAlone) {
  const std::vector<SolveJob> jobs = build_batch();
  EngineConfig config;
  config.workers = 4;
  SolveEngine engine(config);
  const BatchReport report = engine.run(jobs);
  ASSERT_EQ(report.results.size(), jobs.size());

  // The starved job: killed by the watchdog, truthfully reported.
  const JobResult& starved = report.results[kStalledJob];
  EXPECT_TRUE(starved.watchdog_killed);
  EXPECT_EQ(starved.status.code, StatusCode::kCancelled)
      << starved.status.to_string();
  EXPECT_GE(report.deadline_kills, 1u);

  // The garbled job: whatever its status, its bracket must still contain
  // the fault-free LP value — the guards never let a fault fabricate a
  // certificate.
  const JobResult& garbled = report.results[kGarbledJob];
  EXPECT_GT(garbled.faults_injected, 0u);
  const double garbled_truth =
      core::solve_zero_sum_budgeted(jobs[kGarbledJob].game,
                                    SolveBudget::iterations(20'000))
          .result.value;
  EXPECT_LE(garbled.lower_bound, garbled_truth + 1e-9)
      << garbled.status.to_string();
  EXPECT_GE(garbled.upper_bound, garbled_truth - 1e-9)
      << garbled.status.to_string();

  // Everyone else: bit-equal to a serial solve, truthful status, bracket
  // containing the fault-free LP value.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == kStalledJob || i == kGarbledJob) continue;
    const JobResult& r = report.results[i];
    const JobResult serial = engine.run_serial(jobs[i], i);
    EXPECT_EQ(r.status.code, serial.status.code) << "job " << i;
    EXPECT_EQ(r.status.message, serial.status.message) << "job " << i;
    EXPECT_EQ(r.value, serial.value) << "job " << i;
    EXPECT_EQ(r.lower_bound, serial.lower_bound) << "job " << i;
    EXPECT_EQ(r.upper_bound, serial.upper_bound) << "job " << i;
    EXPECT_EQ(r.iterations, serial.iterations) << "job " << i;
    EXPECT_EQ(r.faults_injected, 0u) << "job " << i;
    EXPECT_FALSE(r.watchdog_killed) << "job " << i;

    const double lp =
        core::solve_zero_sum_budgeted(jobs[i].game,
                                      SolveBudget::iterations(20'000))
            .result.value;
    // Weighted solvers bracket the damage value — for unit weights, the
    // complement of the hit probability the LP computes.
    const double truth = is_weighted(jobs[i].solver) ? 1.0 - lp : lp;
    EXPECT_LE(r.lower_bound, truth + 1e-9) << "job " << i;
    EXPECT_GE(r.upper_bound, truth - 1e-9) << "job " << i;
  }
}

TEST(EngineIsolation, RepeatedBatchesAreStableAcrossRuns) {
  // Running the same batch twice through the same engine must agree on
  // every non-elapsed field — pool state never leaks between runs.
  const std::vector<SolveJob> jobs = build_batch();
  EngineConfig config;
  config.workers = 4;
  SolveEngine engine(config);
  const BatchReport first = engine.run(jobs);
  const BatchReport second = engine.run(jobs);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == kStalledJob) continue;  // watchdog kill timing is wall-clock
    EXPECT_EQ(first.results[i].status.code, second.results[i].status.code);
    EXPECT_EQ(first.results[i].value, second.results[i].value);
    EXPECT_EQ(first.results[i].lower_bound, second.results[i].lower_bound);
    EXPECT_EQ(first.results[i].upper_bound, second.results[i].upper_bound);
  }
}

}  // namespace
}  // namespace defender::engine
